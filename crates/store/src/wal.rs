//! Session write-ahead log: append-only, checksummed, torn-tail-tolerant.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! ------  ----  -----
//!      0     4  magic "QBEW"
//!      4     4  format version (currently 1)
//!      8     8  fnv1a64 of the preceding 8 bytes
//!  then, repeated record frames:
//!      +0     4  body length (type byte + payload)
//!      +4   len  body: type u8 | payload
//!  +4+len     8  fnv1a64(body)
//! ```
//!
//! Because learners are seed-deterministic, the log needs only lifecycle events, not learner
//! state: a `Start` record carries everything `build_learner` needs, each `Answer` carries one
//! oracle label, and replaying `propose → answer` per label reconstructs byte-identical state.
//!
//! ## Crash semantics
//!
//! Appends go through a buffered `write` immediately and an `fsync` every
//! [`WalWriter::DEFAULT_SYNC_EVERY`] records (and on drop). A `kill -9` of the process loses nothing
//! already `write`ten (the page cache survives the process); only a machine crash can lose
//! the unsynced tail. Recovery tolerates exactly the failure shape appends can produce — a
//! torn final frame — by truncating it; a bad checksum *before* the end of the file is real
//! corruption and is reported, not silently dropped.

use crate::codec::{fnv1a64, Dec, Enc};
use crate::StoreError;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8; 4] = b"QBEW";

/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;

const HEADER_LEN: u64 = 16;

/// Frames larger than this are treated as corruption (no legitimate record comes close;
/// a garbage length would otherwise trigger a huge allocation).
const MAX_FRAME: u32 = 1 << 20;

/// One session lifecycle event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A session opened: everything needed to rebuild its learner.
    Start {
        /// Session id assigned by the registry.
        session: u64,
        /// Corpus name the session runs against.
        corpus: String,
        /// Model kind (`twig`, `path`, `join`, `graph`).
        model: String,
        /// Raw `START` parameters, in protocol order (key, value).
        params: Vec<(String, String)>,
    },
    /// The oracle answered one membership question.
    Answer {
        /// Session id.
        session: u64,
        /// The label given.
        positive: bool,
    },
    /// The session closed (QUIT or disconnect) — not replayed as live.
    Close {
        /// Session id.
        session: u64,
    },
}

const TYPE_START: u8 = 1;
const TYPE_ANSWER: u8 = 2;
const TYPE_CLOSE: u8 = 3;

impl WalRecord {
    fn encode_body(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            WalRecord::Start {
                session,
                corpus,
                model,
                params,
            } => {
                e.u8(TYPE_START);
                e.u64(*session);
                e.str(corpus);
                e.str(model);
                e.u32(params.len() as u32);
                for (k, v) in params {
                    e.str(k);
                    e.str(v);
                }
            }
            WalRecord::Answer { session, positive } => {
                e.u8(TYPE_ANSWER);
                e.u64(*session);
                e.bool(*positive);
            }
            WalRecord::Close { session } => {
                e.u8(TYPE_CLOSE);
                e.u64(*session);
            }
        }
        e.into_bytes()
    }

    fn decode_body(body: &[u8]) -> Result<WalRecord, StoreError> {
        let mut d = Dec::new(body);
        let record = match d.u8()? {
            TYPE_START => {
                let session = d.u64()?;
                let corpus = d.str()?;
                let model = d.str()?;
                let n = d.u32()? as usize;
                let mut params = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = d.str()?;
                    let v = d.str()?;
                    params.push((k, v));
                }
                WalRecord::Start {
                    session,
                    corpus,
                    model,
                    params,
                }
            }
            TYPE_ANSWER => WalRecord::Answer {
                session: d.u64()?,
                positive: d.bool()?,
            },
            TYPE_CLOSE => WalRecord::Close { session: d.u64()? },
            other => {
                return Err(StoreError::Corrupt(format!(
                    "unknown WAL record type {other}"
                )))
            }
        };
        d.finish()?;
        Ok(record)
    }
}

fn header_bytes() -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[0..4].copy_from_slice(WAL_MAGIC);
    h[4..8].copy_from_slice(&WAL_VERSION.to_le_bytes());
    let sum = fnv1a64(&h[0..8]);
    h[8..16].copy_from_slice(&sum.to_le_bytes());
    h
}

/// Append handle over an open WAL file, with batched fsync.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    since_sync: u32,
    sync_every: u32,
    syncs: u64,
    faults: Option<std::sync::Arc<qbe_faults::FaultRegistry>>,
    poisoned: bool,
}

impl WalWriter {
    /// Records between fsyncs (`write` still happens per append).
    pub const DEFAULT_SYNC_EVERY: u32 = 32;

    /// Fault site: the whole append fails before anything is written.
    pub const SITE_WRITE: &'static str = "wal.write";
    /// Fault site: only a prefix of the frame reaches the file (a torn
    /// write), after which the writer refuses further appends — the
    /// in-process analogue of dying mid-`write`, recoverable by
    /// [`recover`]'s torn-tail truncation.
    pub const SITE_TORN_WRITE: &'static str = "wal.torn_write";
    /// Fault site: `fsync` fails; the batch stays pending and is retried by
    /// the next [`sync`](Self::sync) (explicit or batch-triggered).
    pub const SITE_FSYNC: &'static str = "wal.fsync";

    /// Attach a fault registry; subsequent appends/syncs consult its
    /// `wal.write` / `wal.torn_write` / `wal.fsync` sites.
    pub fn set_faults(&mut self, faults: std::sync::Arc<qbe_faults::FaultRegistry>) {
        self.faults = Some(faults);
    }

    /// Append one record; fsyncs when the batch counter fills.
    pub fn append(&mut self, record: &WalRecord) -> std::io::Result<()> {
        if self.poisoned {
            return Err(std::io::Error::other(
                "WAL poisoned by an injected torn write; reopen via recover()",
            ));
        }
        let body = record.encode_body();
        let mut frame = Vec::with_capacity(4 + body.len() + 8);
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&body);
        frame.extend_from_slice(&fnv1a64(&body).to_le_bytes());
        if let Some(faults) = self.faults.clone() {
            faults.io_error(Self::SITE_WRITE)?;
            if faults.fire(Self::SITE_TORN_WRITE) {
                // Land a strict prefix — long enough to tear inside the body,
                // short enough that the checksum can never validate.
                self.file.write_all(&frame[..frame.len() / 2])?;
                self.poisoned = true;
                return Err(qbe_faults::injected_io_error(Self::SITE_TORN_WRITE));
            }
        }
        self.file.write_all(&frame)?;
        self.since_sync += 1;
        if self.since_sync >= self.sync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Force an fsync of everything appended so far. On failure (real or
    /// injected) the pending count is preserved so the batch is retried —
    /// records are never silently counted as durable.
    pub fn sync(&mut self) -> std::io::Result<()> {
        if let Some(faults) = &self.faults {
            faults.io_error(Self::SITE_FSYNC)?;
        }
        self.file.sync_data()?;
        self.since_sync = 0;
        self.syncs += 1;
        Ok(())
    }

    /// Records appended since the last *successful* fsync (what a crash right
    /// now could lose). Graceful shutdown must drive this to 0.
    pub fn pending(&self) -> u32 {
        self.since_sync
    }

    /// Successful fsyncs performed by this handle.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        if self.since_sync > 0 {
            let _ = self.file.sync_data();
        }
    }
}

/// Parse every record frame in `bytes` (which excludes the file header).
///
/// Returns the records plus the byte length of the *valid prefix* — when the final frame is
/// torn (extends past the end, or fails its checksum exactly at the end of the buffer), it is
/// excluded and `valid_len` points at its start so the caller can truncate. A checksum
/// mismatch with more data after it is corruption, not a torn tail, and errors out.
pub fn parse_records(bytes: &[u8]) -> Result<(Vec<WalRecord>, usize), StoreError> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < 4 {
            return Ok((records, pos)); // torn length prefix
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
        if len == 0 || len > MAX_FRAME {
            return Err(StoreError::Corrupt(format!(
                "WAL frame at offset {pos} declares implausible body length {len}"
            )));
        }
        let frame_len = 4 + len as usize + 8;
        if rest.len() < frame_len {
            return Ok((records, pos)); // torn body/checksum
        }
        let body = &rest[4..4 + len as usize];
        let stored = u64::from_le_bytes(
            rest[4 + len as usize..frame_len]
                .try_into()
                .expect("8 bytes"),
        );
        if fnv1a64(body) != stored {
            if rest.len() == frame_len {
                return Ok((records, pos)); // torn final frame: checksum half-written
            }
            return Err(StoreError::ChecksumMismatch {
                what: format!("WAL record at offset {pos}"),
            });
        }
        records.push(WalRecord::decode_body(body)?);
        pos += frame_len;
    }
    Ok((records, pos))
}

/// Open (or create) the WAL at `path`: validate the header, parse all records, truncate any
/// torn tail, and return the records alongside an append handle positioned at the end.
pub fn recover(path: &Path) -> Result<(Vec<WalRecord>, WalWriter), StoreError> {
    recover_with_sync_every(path, WalWriter::DEFAULT_SYNC_EVERY)
}

/// [`recover`] with an explicit fsync batch size (tests use 1 for strict durability).
pub fn recover_with_sync_every(
    path: &Path,
    sync_every: u32,
) -> Result<(Vec<WalRecord>, WalWriter), StoreError> {
    let existing = match std::fs::read(path) {
        Ok(bytes) => Some(bytes),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(StoreError::Io(e)),
    };
    let (records, keep_len) = match existing {
        None => (Vec::new(), None),
        Some(bytes) if bytes.is_empty() => (Vec::new(), None),
        Some(bytes) => {
            if bytes.len() < HEADER_LEN as usize {
                return Err(StoreError::ShortHeader {
                    needed: HEADER_LEN as usize,
                    got: bytes.len(),
                });
            }
            if &bytes[0..4] != WAL_MAGIC {
                return Err(StoreError::BadMagic {
                    expected: WAL_MAGIC,
                    found: [bytes[0], bytes[1], bytes[2], bytes[3]],
                });
            }
            let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
            if version > WAL_VERSION {
                return Err(StoreError::FutureVersion {
                    found: version,
                    supported: WAL_VERSION,
                });
            }
            let stored = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
            if fnv1a64(&bytes[0..8]) != stored {
                return Err(StoreError::ChecksumMismatch {
                    what: "WAL header".to_string(),
                });
            }
            let (records, valid) = parse_records(&bytes[HEADER_LEN as usize..])?;
            (records, Some(HEADER_LEN + valid as u64))
        }
    };
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(path)
        .map_err(StoreError::Io)?;
    match keep_len {
        Some(keep) => {
            // Drop the torn tail (no-op when the log was clean) and append after it.
            file.set_len(keep).map_err(StoreError::Io)?;
            use std::io::Seek;
            file.seek(std::io::SeekFrom::End(0))
                .map_err(StoreError::Io)?;
        }
        None => {
            file.write_all(&header_bytes()).map_err(StoreError::Io)?;
            file.sync_data().map_err(StoreError::Io)?;
        }
    }
    Ok((
        records,
        WalWriter {
            file,
            since_sync: 0,
            sync_every: sync_every.max(1),
            syncs: 0,
            faults: None,
            poisoned: false,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_wal(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "qbe-store-wal-{tag}-{}-{}.qbew",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Start {
                session: 1,
                corpus: "tiny".to_string(),
                model: "twig".to_string(),
                params: vec![
                    ("seed".to_string(), "7".to_string()),
                    ("strategy".to_string(), "greedy".to_string()),
                ],
            },
            WalRecord::Answer {
                session: 1,
                positive: true,
            },
            WalRecord::Answer {
                session: 1,
                positive: false,
            },
            WalRecord::Close { session: 1 },
        ]
    }

    #[test]
    fn records_round_trip_through_a_fresh_log() {
        let path = temp_wal("roundtrip");
        let (initial, mut w) = recover(&path).unwrap();
        assert!(initial.is_empty());
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let (replayed, _w) = recover(&path).unwrap();
        assert_eq!(replayed, sample_records());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recovery_appends_continue_the_same_log() {
        let path = temp_wal("continue");
        {
            let (_, mut w) = recover(&path).unwrap();
            w.append(&sample_records()[0]).unwrap();
        }
        {
            let (records, mut w) = recover(&path).unwrap();
            assert_eq!(records.len(), 1);
            w.append(&sample_records()[1]).unwrap();
        }
        let (records, _w) = recover(&path).unwrap();
        assert_eq!(records, sample_records()[0..2].to_vec());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_log_stays_appendable() {
        let path = temp_wal("torn");
        {
            let (_, mut w) = recover(&path).unwrap();
            for r in sample_records() {
                w.append(&r).unwrap();
            }
        }
        let full = std::fs::read(&path).unwrap();
        // Tear the last frame: chop 3 bytes off its checksum.
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let (records, mut w) = recover(&path).unwrap();
        assert_eq!(records, sample_records()[0..3].to_vec());
        // The torn bytes are gone from disk and appends land cleanly after the valid prefix.
        w.append(&sample_records()[3]).unwrap();
        drop(w);
        let (records, _w) = recover(&path).unwrap();
        assert_eq!(records, sample_records());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_final_checksum_at_exact_eof_is_truncated() {
        let path = temp_wal("torncheck");
        {
            let (_, mut w) = recover(&path).unwrap();
            for r in &sample_records()[0..2] {
                w.append(r).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Corrupt the final frame's checksum (frame length stays intact).
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (records, _w) = recover(&path).unwrap();
        assert_eq!(records, sample_records()[0..1].to_vec());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_log_checksum_mismatch_is_corruption_not_a_torn_tail() {
        let path = temp_wal("midflip");
        {
            let (_, mut w) = recover(&path).unwrap();
            for r in sample_records() {
                w.append(&r).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the FIRST record's body — well before the end of the log.
        bytes[HEADER_LEN as usize + 6] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        match recover(&path) {
            Err(StoreError::ChecksumMismatch { what }) => {
                assert!(what.contains("WAL record"), "got {what:?}")
            }
            other => panic!("expected mid-log ChecksumMismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_short_header_and_future_version_are_rejected() {
        let path = temp_wal("badheader");

        std::fs::write(&path, b"NOPE0000????????").unwrap();
        assert!(matches!(recover(&path), Err(StoreError::BadMagic { .. })));

        std::fs::write(&path, b"QBEW").unwrap();
        assert!(matches!(
            recover(&path),
            Err(StoreError::ShortHeader { .. })
        ));

        let mut h = header_bytes().to_vec();
        h[4..8].copy_from_slice(&(WAL_VERSION + 3).to_le_bytes());
        let sum = fnv1a64(&h[0..8]);
        h[8..16].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &h).unwrap();
        match recover(&path) {
            Err(StoreError::FutureVersion { found, supported }) => {
                assert_eq!(found, WAL_VERSION + 3);
                assert_eq!(supported, WAL_VERSION);
            }
            other => panic!("expected FutureVersion, got {other:?}"),
        }

        // Valid magic/version but a flipped header checksum byte.
        let mut h = header_bytes().to_vec();
        h[12] ^= 0x10;
        std::fs::write(&path, &h).unwrap();
        assert!(matches!(
            recover(&path),
            Err(StoreError::ChecksumMismatch { .. })
        ));

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn implausible_frame_length_is_corruption() {
        let path = temp_wal("hugelen");
        let mut bytes = header_bytes().to_vec();
        bytes.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 32]);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(recover(&path), Err(StoreError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_record_type_is_corruption() {
        let body = vec![99u8, 0, 0];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&body);
        bytes.extend_from_slice(&fnv1a64(&body).to_le_bytes());
        // Append one more valid-looking frame so the bad one is not "the torn tail".
        bytes.extend_from_slice(&[0u8; 16]);
        assert!(matches!(parse_records(&bytes), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn batched_fsync_counters_expose_pending_and_flush() {
        let path = temp_wal("counters");
        let (_, mut writer) = recover_with_sync_every(&path, 8).unwrap();
        for record in &sample_records()[..3] {
            writer.append(record).unwrap();
        }
        assert_eq!(writer.pending(), 3, "3 records ride on the OS cache");
        assert_eq!(writer.syncs(), 0);
        writer.sync().unwrap();
        assert_eq!(writer.pending(), 0);
        assert_eq!(writer.syncs(), 1);
        // The 8-record batch boundary still syncs on its own.
        for _ in 0..8 {
            writer
                .append(&WalRecord::Answer {
                    session: 1,
                    positive: true,
                })
                .unwrap();
        }
        assert_eq!(writer.pending(), 0);
        assert_eq!(writer.syncs(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_fsync_errors_keep_the_batch_pending_until_retried() {
        use qbe_faults::{FaultProfile, FaultRegistry, SiteConfig};
        let path = temp_wal("fsyncfault");
        let (_, mut writer) = recover_with_sync_every(&path, 8).unwrap();
        let faults = FaultRegistry::shared(FaultProfile::new(11).site(
            WalWriter::SITE_FSYNC,
            SiteConfig::with_probability(1.0).max_fires(1),
        ));
        writer.set_faults(faults.clone());
        for record in &sample_records()[..2] {
            writer.append(record).unwrap();
        }
        let err = writer.sync().unwrap_err();
        assert!(err.to_string().contains(qbe_faults::INJECTED_MARKER));
        assert_eq!(
            writer.pending(),
            2,
            "a failed fsync must not clear the batch"
        );
        assert_eq!(writer.syncs(), 0);
        writer.sync().unwrap(); // the fault was single-shot; the retry lands
        assert_eq!(writer.pending(), 0);
        assert_eq!(writer.syncs(), 1);
        assert_eq!(faults.fires(WalWriter::SITE_FSYNC), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_torn_write_poisons_the_writer_and_recovery_truncates() {
        use qbe_faults::{FaultProfile, FaultRegistry, SiteConfig};
        let path = temp_wal("tornfault");
        let records = sample_records();
        let (_, mut writer) = recover_with_sync_every(&path, 1).unwrap();
        writer.append(&records[0]).unwrap();
        writer.append(&records[1]).unwrap();
        let faults = FaultRegistry::shared(FaultProfile::new(0).site(
            WalWriter::SITE_TORN_WRITE,
            SiteConfig::with_probability(1.0),
        ));
        writer.set_faults(faults);
        let err = writer.append(&records[2]).unwrap_err();
        assert!(err.to_string().contains(WalWriter::SITE_TORN_WRITE));
        // The writer is poisoned: nothing more lands, so the torn frame stays final.
        assert!(writer.append(&records[3]).is_err());
        drop(writer);
        let (recovered, _) = recover(&path).unwrap();
        assert_eq!(recovered, records[..2].to_vec(), "torn tail truncated");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_write_errors_leave_no_trace_in_the_log() {
        use qbe_faults::{FaultProfile, FaultRegistry, SiteConfig};
        let path = temp_wal("writefault");
        let records = sample_records();
        let (_, mut writer) = recover_with_sync_every(&path, 1).unwrap();
        let faults = FaultRegistry::shared(
            FaultProfile::new(0).site(WalWriter::SITE_WRITE, SiteConfig::with_every(2)),
        );
        writer.set_faults(faults);
        writer.append(&records[0]).unwrap();
        assert!(writer.append(&records[1]).is_err(), "check 2 fires");
        writer.append(&records[2]).unwrap();
        drop(writer);
        let (recovered, _) = recover(&path).unwrap();
        assert_eq!(
            recovered,
            vec![records[0].clone(), records[2].clone()],
            "the failed append wrote nothing; the log stays parseable"
        );
        std::fs::remove_file(&path).ok();
    }
}
