//! Little-endian byte codec shared by the snapshot and WAL formats.
//!
//! [`Enc`] appends fixed-width little-endian scalars and length-prefixed strings to a byte
//! buffer; [`Dec`] reads them back, returning [`StoreError::Corrupt`] instead of panicking
//! when the payload ends mid-value. [`fnv1a64`] is the checksum both formats use: FNV-1a is
//! not cryptographic, but it catches the failure modes a local store actually sees (torn
//! writes, bit rot, truncated copies) with no dependency and a few instructions per byte.

use crate::StoreError;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// FNV-1a folded over 64-bit little-endian lanes: the length is mixed in as the first lane,
/// then each 8-byte chunk (tail zero-padded) feeds one xor-multiply round.
///
/// Byte-serial FNV runs one multiply per *byte*, which is the single largest cost of opening
/// a multi-hundred-kilobyte snapshot section; folding whole words cuts that by 8x while
/// keeping the same torn-write/bit-rot detection a local store needs. Mixing the length in
/// up front keeps zero-padded tails from colliding with explicit trailing zeros.
pub fn fnv1a64_words(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    hash ^= bytes.len() as u64;
    hash = hash.wrapping_mul(FNV_PRIME);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        hash ^= u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut last = [0u8; 8];
        last[..tail.len()].copy_from_slice(tail);
        hash ^= u64::from_le_bytes(last);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Consume the encoder, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i64`, little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `f64` as its IEEE-754 bit pattern (exact round trip, no text formatting).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Write a string as a `u32` byte length followed by UTF-8 bytes.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write raw bytes verbatim (caller owns the framing).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Position-tracked little-endian decoder over a byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decode from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Dec<'a> {
        Dec { bytes, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Corrupt(format!(
                "payload ends mid-value: need {n} bytes at offset {}, {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read a single byte.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, StoreError> {
        Ok(self.u64()? as i64)
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a bool; any byte other than 0 or 1 is corrupt.
    pub fn bool(&mut self) -> Result<bool, StoreError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StoreError::Corrupt(format!(
                "invalid bool byte {other} at offset {}",
                self.pos - 1
            ))),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, StoreError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::Corrupt(format!("invalid UTF-8 in string of {len} bytes")))
    }

    /// Read `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        self.take(n)
    }

    /// Assert the whole payload was consumed — trailing garbage is corruption, not padding.
    pub fn finish(self) -> Result<(), StoreError> {
        if self.remaining() != 0 {
            return Err(StoreError::Corrupt(format!(
                "{} trailing bytes after the last value",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xdead_beef);
        e.u64(u64::MAX - 1);
        e.i64(-42);
        e.f64(3.5);
        e.bool(true);
        e.bool(false);
        e.str("héllo");
        let bytes = e.into_bytes();

        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xdead_beef);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.f64().unwrap(), 3.5);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.str().unwrap(), "héllo");
        d.finish().unwrap();
    }

    #[test]
    fn truncated_values_decode_to_corrupt_not_panic() {
        let mut e = Enc::new();
        e.u64(1);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes[..5]);
        assert!(matches!(d.u64(), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn trailing_bytes_fail_finish() {
        let mut e = Enc::new();
        e.u32(9);
        e.u8(0xff);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u32().unwrap(), 9);
        assert!(matches!(d.finish(), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn invalid_bool_byte_is_rejected() {
        let mut d = Dec::new(&[2]);
        assert!(matches!(d.bool(), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn fnv_matches_known_vectors() {
        // Reference values for the standard FNV-1a 64 parameters.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn word_fnv_detects_flips_padding_and_length() {
        let base = vec![0xabu8; 100];
        let sum = fnv1a64_words(&base);
        assert_eq!(fnv1a64_words(&base), sum, "deterministic");
        for ix in [0usize, 7, 8, 63, 96, 99] {
            let mut flipped = base.clone();
            flipped[ix] ^= 0x01;
            assert_ne!(fnv1a64_words(&flipped), sum, "flip at {ix} undetected");
        }
        // A zero-padded tail must not collide with explicit trailing zeros.
        assert_ne!(fnv1a64_words(b"abc"), fnv1a64_words(b"abc\0"));
        assert_ne!(fnv1a64_words(b""), fnv1a64_words(b"\0"));
    }
}
