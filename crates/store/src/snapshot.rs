//! Flat snapshot container: a versioned, checksummed header plus independently
//! checksummed sections, read lazily through a [`Backend`].
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! ------  ----  -----
//!      0     4  magic "QBES"
//!      4     4  format version (currently 1)
//!      8     4  section count
//!     12     4  reserved (zero)
//!     16  32*n  section table: per section
//!                 kind u32 | pad u32 | offset u64 | len u64 | fnv1a64_words(payload) u64
//! 16+32n     8  fnv1a64 of all preceding header bytes
//!  after   ...  section payloads, in table order
//! ```
//!
//! The header (including the table) is read and verified once on open; each section's
//! payload is read and verified only when asked for, so opening a snapshot costs one small
//! read regardless of corpus size, and a reader that only needs one substrate never touches
//! the others.

use crate::backend::Backend;
use crate::codec::{fnv1a64, fnv1a64_words};
use crate::StoreError;
use std::fs;
use std::io::Write;
use std::path::Path;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 4] = b"QBES";

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

const FIXED_HEADER: usize = 16;
const SECTION_ENTRY: usize = 32;

#[derive(Debug, Clone, Copy)]
struct SectionEntry {
    kind: u32,
    offset: u64,
    len: u64,
    checksum: u64,
}

/// Accumulates sections, then emits the complete snapshot byte stream.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapshotWriter {
    /// Empty writer.
    pub fn new() -> SnapshotWriter {
        SnapshotWriter::default()
    }

    /// Append a section. Kinds must be unique within one snapshot.
    pub fn section(&mut self, kind: u32, payload: Vec<u8>) {
        assert!(
            self.sections.iter().all(|(k, _)| *k != kind),
            "duplicate section kind {kind}"
        );
        self.sections.push((kind, payload));
    }

    /// Serialise header + table + payloads into one buffer.
    pub fn finish(self) -> Vec<u8> {
        let header_len = FIXED_HEADER + SECTION_ENTRY * self.sections.len() + 8;
        let mut out = Vec::with_capacity(
            header_len + self.sections.iter().map(|(_, p)| p.len()).sum::<usize>(),
        );
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        let mut offset = header_len as u64;
        for (kind, payload) in &self.sections {
            out.extend_from_slice(&kind.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&fnv1a64_words(payload).to_le_bytes());
            offset += payload.len() as u64;
        }
        let header_checksum = fnv1a64(&out);
        out.extend_from_slice(&header_checksum.to_le_bytes());
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        out
    }
}

/// Write `bytes` to `path` atomically: write a sibling temp file, fsync it, rename over the
/// target. A crash mid-write leaves either the old file or nothing — never a torn snapshot.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Lazy, validating reader over a snapshot [`Backend`].
#[derive(Debug)]
pub struct SnapshotReader<B: Backend> {
    backend: B,
    entries: Vec<SectionEntry>,
}

impl<B: Backend> SnapshotReader<B> {
    /// Open and validate the header: magic, version, length, header checksum, table sanity.
    /// Section payloads are not touched yet.
    pub fn open(backend: B) -> Result<SnapshotReader<B>, StoreError> {
        let total = backend.len();
        if total < FIXED_HEADER as u64 {
            return Err(StoreError::ShortHeader {
                needed: FIXED_HEADER,
                got: total as usize,
            });
        }
        let mut fixed = [0u8; FIXED_HEADER];
        backend.read_at(0, &mut fixed)?;
        if &fixed[0..4] != SNAPSHOT_MAGIC {
            return Err(StoreError::BadMagic {
                expected: SNAPSHOT_MAGIC,
                found: [fixed[0], fixed[1], fixed[2], fixed[3]],
            });
        }
        let version = u32::from_le_bytes([fixed[4], fixed[5], fixed[6], fixed[7]]);
        if version > SNAPSHOT_VERSION {
            return Err(StoreError::FutureVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let count = u32::from_le_bytes([fixed[8], fixed[9], fixed[10], fixed[11]]) as usize;
        // 64Ki sections is far beyond any real snapshot; treat more as corruption rather
        // than attempting a multi-megabyte "header" read.
        if count > 65_536 {
            return Err(StoreError::Corrupt(format!(
                "implausible section count {count}"
            )));
        }
        let header_len = FIXED_HEADER + SECTION_ENTRY * count + 8;
        if total < header_len as u64 {
            return Err(StoreError::ShortHeader {
                needed: header_len,
                got: total as usize,
            });
        }
        let mut header = vec![0u8; header_len];
        backend.read_at(0, &mut header)?;
        let body = &header[..header_len - 8];
        let stored = u64::from_le_bytes(header[header_len - 8..].try_into().expect("8 bytes"));
        if fnv1a64(body) != stored {
            return Err(StoreError::ChecksumMismatch {
                what: "snapshot header".to_string(),
            });
        }
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let at = FIXED_HEADER + SECTION_ENTRY * i;
            let e = &header[at..at + SECTION_ENTRY];
            let entry = SectionEntry {
                kind: u32::from_le_bytes(e[0..4].try_into().expect("4 bytes")),
                offset: u64::from_le_bytes(e[8..16].try_into().expect("8 bytes")),
                len: u64::from_le_bytes(e[16..24].try_into().expect("8 bytes")),
                checksum: u64::from_le_bytes(e[24..32].try_into().expect("8 bytes")),
            };
            let end = entry.offset.checked_add(entry.len);
            if entry.offset < header_len as u64 || end.is_none() || end.unwrap() > total {
                return Err(StoreError::Corrupt(format!(
                    "section kind {} spans {}..{:?}, outside file of {total} bytes",
                    entry.kind, entry.offset, end
                )));
            }
            entries.push(entry);
        }
        Ok(SnapshotReader { backend, entries })
    }

    /// Section kinds present, in file order.
    pub fn kinds(&self) -> impl Iterator<Item = u32> + '_ {
        self.entries.iter().map(|e| e.kind)
    }

    /// Read and checksum-verify one section's payload.
    pub fn read_section(&self, kind: u32) -> Result<Vec<u8>, StoreError> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.kind == kind)
            .ok_or_else(|| StoreError::Corrupt(format!("missing section kind {kind}")))?;
        let mut payload = vec![0u8; entry.len as usize];
        self.backend.read_at(entry.offset, &mut payload)?;
        if fnv1a64_words(&payload) != entry.checksum {
            return Err(StoreError::ChecksumMismatch {
                what: format!("section kind {}", entry.kind),
            });
        }
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn sample_bytes() -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.section(1, b"alpha payload".to_vec());
        w.section(7, vec![0u8; 100]);
        w.finish()
    }

    #[test]
    fn sections_round_trip_through_the_container() {
        let r = SnapshotReader::open(MemBackend::new(sample_bytes())).unwrap();
        assert_eq!(r.kinds().collect::<Vec<_>>(), vec![1, 7]);
        assert_eq!(r.read_section(1).unwrap(), b"alpha payload");
        assert_eq!(r.read_section(7).unwrap(), vec![0u8; 100]);
        assert!(matches!(r.read_section(99), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            SnapshotReader::open(MemBackend::new(bytes)),
            Err(StoreError::BadMagic { .. })
        ));
    }

    #[test]
    fn short_header_is_rejected() {
        let bytes = sample_bytes();
        assert!(matches!(
            SnapshotReader::open(MemBackend::new(bytes[..10].to_vec())),
            Err(StoreError::ShortHeader { .. })
        ));
        // Long enough for the fixed header but not the section table.
        assert!(matches!(
            SnapshotReader::open(MemBackend::new(bytes[..20].to_vec())),
            Err(StoreError::ShortHeader { .. })
        ));
    }

    #[test]
    fn future_version_is_rejected_with_both_versions() {
        let mut bytes = sample_bytes();
        bytes[4..8].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
        match SnapshotReader::open(MemBackend::new(bytes)) {
            Err(StoreError::FutureVersion { found, supported }) => {
                assert_eq!(found, SNAPSHOT_VERSION + 1);
                assert_eq!(supported, SNAPSHOT_VERSION);
            }
            other => panic!("expected FutureVersion, got {other:?}"),
        }
    }

    #[test]
    fn header_byte_flip_fails_the_header_checksum() {
        let mut bytes = sample_bytes();
        // Flip a bit inside the section table (a section length byte).
        bytes[FIXED_HEADER + 16] ^= 0x01;
        assert!(matches!(
            SnapshotReader::open(MemBackend::new(bytes)),
            Err(StoreError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn payload_byte_flip_fails_that_section_only() {
        let mut bytes = sample_bytes();
        let last = bytes.len() - 1; // inside section 7's payload
        bytes[last] ^= 0x80;
        let r = SnapshotReader::open(MemBackend::new(bytes)).unwrap();
        assert_eq!(r.read_section(1).unwrap(), b"alpha payload");
        assert!(matches!(
            r.read_section(7),
            Err(StoreError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncated_payload_region_is_rejected_at_open() {
        let bytes = sample_bytes();
        let cut = bytes.len() - 40; // lops off part of section 7
        assert!(matches!(
            SnapshotReader::open(MemBackend::new(bytes[..cut].to_vec())),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn write_atomic_replaces_the_target() {
        let path = std::env::temp_dir().join(format!(
            "qbe-store-snapshot-test-{}.qbes",
            std::process::id()
        ));
        write_atomic(&path, b"one").unwrap();
        write_atomic(&path, b"two").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        std::fs::remove_file(&path).ok();
    }
}
