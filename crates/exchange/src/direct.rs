//! Direct relational↔graph exchange — the pair of heterogeneous models the paper points at
//! beyond Figure 1 ("Other pairs of heterogeneous data models are worth investigating (i.e.,
//! relational-to-graph), also due to the appearance of interoperability scenarios in the
//! Semantic Web").
//!
//! As in [`crate::scenarios`], each direction has an expert entry point taking an explicit
//! source query and a `learned_*` variant where the source query is inferred from a simulated
//! non-expert user.

use std::collections::BTreeMap;

use crate::mapping::{ExchangeReport, Scenario};
use qbe_graph::{PathConstraint, PropertyGraph};
use qbe_relational::{equi_join, JoinPredicate, Relation, RelationSchema, Tuple, Value};

/// Publish the result of a relational join directly into a property graph.
///
/// Every left tuple and every right tuple participating in the join becomes a node labelled with
/// its relation's name and carrying one property per attribute; every joined pair becomes an
/// edge labelled `joins` from the left node to the right node.
pub fn publish_relational_to_graph(
    left: &Relation,
    right: &Relation,
    predicate: &JoinPredicate,
) -> (PropertyGraph, ExchangeReport) {
    let joined = equi_join(left, right, predicate);
    let mut graph = PropertyGraph::new();
    let mut left_nodes: BTreeMap<usize, qbe_graph::GNodeId> = BTreeMap::new();
    let mut right_nodes: BTreeMap<usize, qbe_graph::GNodeId> = BTreeMap::new();
    let mut edges = 0usize;
    for (l_ix, l) in left.tuples().iter().enumerate() {
        for (r_ix, r) in right.tuples().iter().enumerate() {
            if !predicate.satisfied_by(l, r) {
                continue;
            }
            let l_node = *left_nodes.entry(l_ix).or_insert_with(|| {
                let node = graph.add_node(left.schema().name());
                for (attribute, value) in left.schema().attributes().iter().zip(l.values()) {
                    graph.set_node_property(node, attribute.as_str(), value.to_string().as_str());
                }
                node
            });
            let r_node = *right_nodes.entry(r_ix).or_insert_with(|| {
                let node = graph.add_node(right.schema().name());
                for (attribute, value) in right.schema().attributes().iter().zip(r.values()) {
                    graph.set_node_property(node, attribute.as_str(), value.to_string().as_str());
                }
                node
            });
            graph.add_edge(l_node, r_node, "joins");
            edges += 1;
        }
    }
    let report = ExchangeReport {
        scenario: Scenario::RelationalToGraph,
        source_query: predicate.describe(left.schema(), right.schema()),
        extracted_items: joined.len(),
        produced_items: graph.node_count() + edges,
    };
    (graph, report)
}

/// Learned variant of [`publish_relational_to_graph`]: the join predicate is learned
/// interactively from a simulated user who has the `goal` join in mind.
pub fn learned_publish_relational_to_graph(
    left: &Relation,
    right: &Relation,
    goal: &JoinPredicate,
    seed: u64,
) -> (PropertyGraph, ExchangeReport) {
    let outcome = qbe_relational::interactive_learn(
        left,
        right,
        goal,
        qbe_relational::Strategy::MostSpecificFirst,
        seed,
    );
    publish_relational_to_graph(left, right, &outcome.predicate)
}

/// Shred the paths accepted by a (learned) path constraint into a relational table of steps.
///
/// The produced relation has one row per edge of every accepted path:
/// `(path, step, from, to, road, distance)`.
pub fn shred_graph_to_relational(
    graph: &PropertyGraph,
    paths: &[qbe_graph::Path],
    constraint: &PathConstraint,
    relation_name: &str,
) -> (Relation, ExchangeReport) {
    let schema = RelationSchema::new(
        relation_name,
        &["path", "step", "from", "to", "road", "distance"],
    );
    let mut relation = Relation::new(schema);
    for (path_ix, path) in paths.iter().enumerate() {
        for (step_ix, &edge) in path.edges.iter().enumerate() {
            let road = graph
                .edge_property(edge, "type")
                .and_then(|p| p.as_text().map(str::to_string))
                .map(Value::Text)
                .unwrap_or(Value::Null);
            let distance = graph
                .edge_property(edge, "distance")
                .and_then(|p| p.as_number())
                .map(|d| Value::Int(d.round() as i64))
                .unwrap_or(Value::Null);
            relation.insert(Tuple::new(vec![
                Value::Int(path_ix as i64),
                Value::Int(step_ix as i64),
                Value::text(graph.display_name(graph.source(edge))),
                Value::text(graph.display_name(graph.target(edge))),
                road,
                distance,
            ]));
        }
    }
    let report = ExchangeReport {
        scenario: Scenario::GraphToRelational,
        source_query: constraint.describe(graph),
        extracted_items: paths.len(),
        produced_items: relation.len(),
    };
    (relation, report)
}

/// Learned variant of [`shred_graph_to_relational`]: the path constraint is learned
/// interactively between the two endpoints, then its accepted paths are shredded.
pub fn learned_shred_graph_to_relational(
    graph: &PropertyGraph,
    from: qbe_graph::GNodeId,
    to: qbe_graph::GNodeId,
    goal: &PathConstraint,
    relation_name: &str,
    seed: u64,
) -> (Relation, ExchangeReport) {
    let outcome = qbe_graph::interactive_path_learn(
        graph,
        from,
        to,
        goal,
        qbe_graph::PathStrategy::Halving,
        Vec::new(),
        seed,
    );
    shred_graph_to_relational(
        graph,
        &outcome.accepted_paths,
        &outcome.learned,
        relation_name,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbe_graph::{generate_geo_graph, GeoConfig, PathStrategy};
    use qbe_relational::customers_orders_database;

    fn customers_and_orders() -> (Relation, Relation, JoinPredicate) {
        let db = customers_orders_database(4, 2, 3);
        let customers = db.relation("customers").unwrap().clone();
        let orders = db.relation("orders").unwrap().clone();
        let predicate =
            JoinPredicate::from_names(customers.schema(), orders.schema(), &[("cid", "cid")])
                .unwrap();
        (customers, orders, predicate)
    }

    #[test]
    fn relational_to_graph_builds_one_edge_per_join_pair() {
        let (customers, orders, predicate) = customers_and_orders();
        let (graph, report) = publish_relational_to_graph(&customers, &orders, &predicate);
        assert_eq!(report.scenario, Scenario::RelationalToGraph);
        assert_eq!(report.extracted_items, 8, "4 customers × 2 orders each");
        assert_eq!(graph.edge_count(), 8);
        // Each participating tuple becomes exactly one node.
        assert_eq!(graph.node_count(), 4 + 8);
        // Node properties carry the attribute values.
        let customer_nodes = graph.nodes_with_label("customers");
        assert_eq!(customer_nodes.len(), 4);
        assert!(graph.node_property(customer_nodes[0], "name").is_some());
    }

    #[test]
    fn learned_relational_to_graph_matches_expert_result() {
        let (customers, orders, goal) = customers_and_orders();
        let (expert, _) = publish_relational_to_graph(&customers, &orders, &goal);
        let (learned, report) = learned_publish_relational_to_graph(&customers, &orders, &goal, 17);
        assert_eq!(expert.edge_count(), learned.edge_count());
        assert_eq!(expert.node_count(), learned.node_count());
        assert!(report.source_query.contains("cid"));
    }

    #[test]
    fn graph_to_relational_produces_one_row_per_step() {
        let graph = generate_geo_graph(&GeoConfig {
            cities: 12,
            ..Default::default()
        });
        let from = graph.find_node_by_property("name", "city0").unwrap();
        let to = graph.find_node_by_property("name", "city5").unwrap();
        let goal = PathConstraint::any();
        let outcome = qbe_graph::interactive_path_learn(
            &graph,
            from,
            to,
            &goal,
            PathStrategy::ShortestFirst,
            vec![],
            5,
        );
        let (relation, report) = shred_graph_to_relational(
            &graph,
            &outcome.accepted_paths,
            &outcome.learned,
            "itinerary_steps",
        );
        let steps: usize = outcome.accepted_paths.iter().map(|p| p.edges.len()).sum();
        assert_eq!(relation.len(), steps);
        assert_eq!(report.produced_items, steps);
        assert_eq!(relation.schema().arity(), 6);
    }

    #[test]
    fn learned_graph_to_relational_only_keeps_goal_paths() {
        let graph = generate_geo_graph(&GeoConfig {
            cities: 12,
            ..Default::default()
        });
        let from = graph.find_node_by_property("name", "city0").unwrap();
        let to = graph.find_node_by_property("name", "city5").unwrap();
        let goal = PathConstraint {
            road_type: Some("highway".to_string()),
            max_distance: None,
            via: None,
        };
        let (relation, report) =
            learned_shred_graph_to_relational(&graph, from, to, &goal, "highway_steps", 5);
        assert_eq!(report.scenario, Scenario::GraphToRelational);
        // Every produced step is a highway step (the learned constraint filters the paths).
        for t in relation.tuples() {
            assert_eq!(relation.value(t, "road"), Some(&Value::text("highway")));
        }
    }

    #[test]
    fn empty_join_produces_empty_graph() {
        let (customers, _, _) = customers_and_orders();
        let empty_orders = Relation::new(RelationSchema::new("orders", &["oid", "cid"]));
        let predicate =
            JoinPredicate::from_names(customers.schema(), empty_orders.schema(), &[("cid", "cid")])
                .unwrap();
        let (graph, report) = publish_relational_to_graph(&customers, &empty_orders, &predicate);
        assert_eq!(graph.node_count(), 0);
        assert_eq!(report.extracted_items, 0);
    }
}
