//! # qbe-exchange — cross-model data exchange driven by learned queries
//!
//! The application that motivates the whole thesis (Figure 1 of the paper): exchanging data
//! between relational, XML and graph databases, where the *source query* of each mapping is not
//! written by an expert but learned from examples given by a non-expert user.
//!
//! * [`mapping`] — scenarios, data models, and exchange reports;
//! * [`scenarios`] — the four concrete pipelines of Figure 1: relational→XML publishing,
//!   XML→relational shredding, XML→graph (RDF) shredding, and graph→XML publishing, each with an
//!   expert-query and a learned-query variant;
//! * [`direct`] — the relational↔graph pair the paper mentions beyond the figure
//!   ("relational-to-graph" interoperability), in both directions.

#![warn(missing_docs)]

pub mod direct;
pub mod mapping;
pub mod scenarios;

pub use direct::{
    learned_publish_relational_to_graph, learned_shred_graph_to_relational,
    publish_relational_to_graph, shred_graph_to_relational,
};
pub use mapping::{DataModel, ExchangeReport, Scenario};
pub use scenarios::{
    learned_publish_relational_to_xml, learned_shred_xml_to_relational, publish_graph_to_xml,
    publish_relational_to_xml, shred_xml_to_graph, shred_xml_to_relational,
};
