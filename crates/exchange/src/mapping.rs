//! Cross-model mappings: a learned *source query* paired with a *target constructor*.
//!
//! The paper frames cross-model data exchange in two phases: (1) a query over the source
//! database extracts the data to exchange — this is the query the learning algorithms infer from
//! the non-expert user's examples — and (2) a constructor incorporates the extracted data into
//! the target database. This module defines the mapping envelope shared by the four scenarios of
//! Figure 1 and a small report type describing an executed exchange.

use std::fmt;

/// The data models involved in an exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataModel {
    /// Relational tables.
    Relational,
    /// Semi-structured (XML) documents.
    Xml,
    /// Graph (RDF-style) data.
    Graph,
}

impl fmt::Display for DataModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataModel::Relational => write!(f, "relational"),
            DataModel::Xml => write!(f, "XML"),
            DataModel::Graph => write!(f, "graph"),
        }
    }
}

/// The four scenarios of Figure 1, plus the direct relational↔graph exchanges the paper singles
/// out as "worth investigating (i.e., relational-to-graph)" without drawing them in the figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// 1 — publishing relational data as XML.
    RelationalToXml,
    /// 2 — shredding XML into a relational database.
    XmlToRelational,
    /// 3 — shredding XML into a graph (RDF) database.
    XmlToGraph,
    /// 4 — publishing graph data as XML.
    GraphToXml,
    /// Beyond Figure 1: publishing relational data directly into a graph database.
    RelationalToGraph,
    /// Beyond Figure 1: shredding graph data directly into a relational database.
    GraphToRelational,
}

impl Scenario {
    /// Source data model.
    pub fn source(self) -> DataModel {
        match self {
            Scenario::RelationalToXml | Scenario::RelationalToGraph => DataModel::Relational,
            Scenario::XmlToRelational | Scenario::XmlToGraph => DataModel::Xml,
            Scenario::GraphToXml | Scenario::GraphToRelational => DataModel::Graph,
        }
    }

    /// Target data model.
    pub fn target(self) -> DataModel {
        match self {
            Scenario::RelationalToXml | Scenario::GraphToXml => DataModel::Xml,
            Scenario::XmlToRelational | Scenario::GraphToRelational => DataModel::Relational,
            Scenario::XmlToGraph | Scenario::RelationalToGraph => DataModel::Graph,
        }
    }

    /// The paper's name for the exchange direction.
    pub fn kind(self) -> &'static str {
        match self {
            Scenario::RelationalToXml | Scenario::GraphToXml | Scenario::RelationalToGraph => {
                "publishing"
            }
            Scenario::XmlToRelational | Scenario::XmlToGraph | Scenario::GraphToRelational => {
                "shredding"
            }
        }
    }

    /// The four scenarios of Figure 1, in the figure's order.
    pub fn all() -> [Scenario; 4] {
        [
            Scenario::RelationalToXml,
            Scenario::XmlToRelational,
            Scenario::XmlToGraph,
            Scenario::GraphToXml,
        ]
    }

    /// Every implemented scenario: Figure 1 plus the direct relational↔graph pair.
    pub fn extended() -> [Scenario; 6] {
        [
            Scenario::RelationalToXml,
            Scenario::XmlToRelational,
            Scenario::XmlToGraph,
            Scenario::GraphToXml,
            Scenario::RelationalToGraph,
            Scenario::GraphToRelational,
        ]
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} → {}", self.kind(), self.source(), self.target())
    }
}

/// Report of one executed exchange.
#[derive(Debug, Clone)]
pub struct ExchangeReport {
    /// Which scenario ran.
    pub scenario: Scenario,
    /// Textual form of the learned source query.
    pub source_query: String,
    /// How many source items the query extracted.
    pub extracted_items: usize,
    /// How many target objects (elements, tuples, triples) were produced.
    pub produced_items: usize,
}

impl fmt::Display for ExchangeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] query `{}` extracted {} items, produced {} target objects",
            self.scenario, self.source_query, self.extracted_items, self.produced_items
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_match_figure_one() {
        assert_eq!(Scenario::RelationalToXml.kind(), "publishing");
        assert_eq!(Scenario::XmlToRelational.kind(), "shredding");
        assert_eq!(Scenario::XmlToGraph.kind(), "shredding");
        assert_eq!(Scenario::GraphToXml.kind(), "publishing");
        assert_eq!(Scenario::all().len(), 4);
    }

    #[test]
    fn sources_and_targets_are_correct() {
        assert_eq!(Scenario::RelationalToXml.source(), DataModel::Relational);
        assert_eq!(Scenario::RelationalToXml.target(), DataModel::Xml);
        assert_eq!(Scenario::XmlToGraph.target(), DataModel::Graph);
        assert_eq!(Scenario::GraphToXml.source(), DataModel::Graph);
    }

    #[test]
    fn display_is_informative() {
        let report = ExchangeReport {
            scenario: Scenario::XmlToRelational,
            source_query: "//person/name".to_string(),
            extracted_items: 10,
            produced_items: 10,
        };
        let text = report.to_string();
        assert!(text.contains("shredding XML → relational"));
        assert!(text.contains("//person/name"));
    }
}
