//! The four cross-model data-exchange scenarios of Figure 1, driven by learned source queries.
//!
//! Each scenario has two entry points: a `*_with_query` function taking an explicit source query
//! (what an expert user would write) and a `learned_*` variant where the source query is first
//! inferred from user examples by the corresponding learner — the paper's point being that the
//! expert can be replaced by a learning algorithm trained by a non-expert.

use crate::mapping::{ExchangeReport, Scenario};
use qbe_graph::{PathConstraint, PropertyGraph};
use qbe_relational::{equi_join, JoinPredicate, Relation, RelationSchema, Tuple, Value};
use qbe_twig::{select, TwigQuery};
use qbe_xml::{NodeId, XmlTree};

/// Scenario 1 — publish the result of a relational join as an XML document.
///
/// The join result is nested under a root element; each result tuple becomes a `row` element
/// whose children are named after the joined schema's attributes (dots become dashes so the
/// names stay XML-friendly).
pub fn publish_relational_to_xml(
    left: &Relation,
    right: &Relation,
    predicate: &JoinPredicate,
    root_label: &str,
) -> (XmlTree, ExchangeReport) {
    let joined = equi_join(left, right, predicate);
    let mut doc = XmlTree::new(root_label);
    for tuple in joined.tuples() {
        let row = doc.add_child(XmlTree::ROOT, "row");
        for (attribute, value) in joined.schema().attributes().iter().zip(tuple.values()) {
            let field = doc.add_child(row, attribute.replace('.', "-"));
            doc.set_text(field, value.to_string());
        }
    }
    let report = ExchangeReport {
        scenario: Scenario::RelationalToXml,
        source_query: predicate.describe(left.schema(), right.schema()),
        extracted_items: joined.len(),
        produced_items: doc.nodes_with_label("row").len(),
    };
    (doc, report)
}

/// Scenario 1, learned variant: the join predicate is learned interactively from a simulated
/// user who has the `goal` join in mind.
pub fn learned_publish_relational_to_xml(
    left: &Relation,
    right: &Relation,
    goal: &JoinPredicate,
    root_label: &str,
    seed: u64,
) -> (XmlTree, ExchangeReport) {
    let outcome = qbe_relational::interactive_learn(
        left,
        right,
        goal,
        qbe_relational::Strategy::MostSpecificFirst,
        seed,
    );
    publish_relational_to_xml(left, right, &outcome.predicate, root_label)
}

/// Scenario 2 — shred the nodes selected by a twig query into a single-column relation
/// (node text content, or the concatenated text of the subtree when the node itself has none).
pub fn shred_xml_to_relational(
    doc: &XmlTree,
    query: &TwigQuery,
    relation_name: &str,
) -> (Relation, ExchangeReport) {
    let selected = select(query, doc);
    let schema = RelationSchema::new(relation_name, &["node", "path", "value"]);
    let mut relation = Relation::new(schema);
    for node in &selected {
        relation.insert(Tuple::new(vec![
            Value::Int(node.index() as i64),
            Value::text(doc.label_path(*node).join("/")),
            Value::text(node_value(doc, *node)),
        ]));
    }
    let report = ExchangeReport {
        scenario: Scenario::XmlToRelational,
        source_query: query.to_xpath(),
        extracted_items: selected.len(),
        produced_items: relation.len(),
    };
    (relation, report)
}

/// Scenario 2, learned variant: the twig query is learned from annotated example nodes.
pub fn learned_shred_xml_to_relational(
    doc: &XmlTree,
    annotated: &[NodeId],
    relation_name: &str,
) -> Result<(Relation, ExchangeReport), qbe_twig::TwigLearnError> {
    let examples: Vec<(&XmlTree, NodeId)> = annotated.iter().map(|&n| (doc, n)).collect();
    let query = qbe_twig::learn_from_positives(&examples)?;
    Ok(shred_xml_to_relational(doc, &query, relation_name))
}

/// Scenario 3 — shred the nodes selected by a twig query into an RDF-style graph: each selected
/// node becomes a resource linked to its parent resource by a `child_of` edge and annotated with
/// its label and text value.
pub fn shred_xml_to_graph(doc: &XmlTree, query: &TwigQuery) -> (PropertyGraph, ExchangeReport) {
    let selected = select(query, doc);
    let mut graph = PropertyGraph::new();
    let mut node_of = std::collections::BTreeMap::new();
    for &xml_node in &selected {
        let g = graph.add_node(doc.label(xml_node));
        graph.set_node_property(
            g,
            "name",
            format!("{}#{}", doc.label(xml_node), xml_node.index()).as_str(),
        );
        graph.set_node_property(g, "value", node_value(doc, xml_node).as_str());
        node_of.insert(xml_node, g);
    }
    // Link each selected node to its closest selected ancestor, mirroring the document shape.
    for &xml_node in &selected {
        let mut ancestor = doc.parent(xml_node);
        while let Some(a) = ancestor {
            if let Some(&target) = node_of.get(&a) {
                graph.add_edge(node_of[&xml_node], target, "child_of");
                break;
            }
            ancestor = doc.parent(a);
        }
    }
    let report = ExchangeReport {
        scenario: Scenario::XmlToGraph,
        source_query: query.to_xpath(),
        extracted_items: selected.len(),
        produced_items: graph.node_count() + graph.edge_count(),
    };
    (graph, report)
}

/// Scenario 4 — publish the paths accepted by a learned path constraint as an XML itinerary
/// document: one `path` element per accepted path, with `step` children carrying the road type
/// and distance, ready to be inserted into an XML store.
pub fn publish_graph_to_xml(
    graph: &PropertyGraph,
    paths: &[qbe_graph::Path],
    constraint: &PathConstraint,
) -> (XmlTree, ExchangeReport) {
    let mut doc = XmlTree::new("itineraries");
    for path in paths {
        let path_el = doc.add_child(XmlTree::ROOT, "path");
        if let Some((from, to)) = path.endpoints(graph) {
            doc.set_attribute(path_el, "from", graph.display_name(from));
            doc.set_attribute(path_el, "to", graph.display_name(to));
        }
        doc.set_attribute(
            path_el,
            "distance",
            format!("{:.1}", path.total_distance(graph)),
        );
        for &edge in &path.edges {
            let step = doc.add_child(path_el, "step");
            doc.set_attribute(step, "to", graph.display_name(graph.target(edge)));
            if let Some(kind) = graph.edge_property(edge, "type") {
                doc.set_attribute(step, "road", kind.to_string());
            }
            if let Some(d) = graph.edge_property(edge, "distance") {
                doc.set_attribute(step, "distance", d.to_string());
            }
        }
    }
    let report = ExchangeReport {
        scenario: Scenario::GraphToXml,
        source_query: constraint.describe(graph),
        extracted_items: paths.len(),
        produced_items: doc.nodes_with_label("path").len(),
    };
    (doc, report)
}

/// Text value of a node: its own text, or the concatenated text of its subtree.
fn node_value(doc: &XmlTree, node: NodeId) -> String {
    if let Some(t) = doc.text(node) {
        if !t.is_empty() {
            return t.to_string();
        }
    }
    let mut parts = Vec::new();
    for d in doc.descendants(node) {
        if let Some(t) = doc.text(d) {
            if !t.is_empty() {
                parts.push(t.to_string());
            }
        }
    }
    parts.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbe_graph::{generate_geo_graph, interactive_path_learn, GeoConfig, PathStrategy};
    use qbe_relational::{customers_orders_database, Instance};
    use qbe_twig::parse_xpath;
    use qbe_xml::xmark::{generate, XmarkConfig};

    fn db() -> Instance {
        customers_orders_database(4, 2, 7)
    }

    #[test]
    fn scenario1_publishes_join_result_as_xml() {
        let db = db();
        let customers = db.relation("customers").unwrap();
        let orders = db.relation("orders").unwrap();
        let predicate =
            JoinPredicate::from_names(customers.schema(), orders.schema(), &[("cid", "cid")])
                .unwrap();
        let (doc, report) = publish_relational_to_xml(customers, orders, &predicate, "sales");
        assert_eq!(doc.label(XmlTree::ROOT), "sales");
        assert_eq!(report.extracted_items, 8);
        assert_eq!(doc.nodes_with_label("row").len(), 8);
        assert!(!doc.nodes_with_label("customers-name").is_empty());
    }

    #[test]
    fn scenario1_learned_variant_matches_expert_variant() {
        let db = db();
        let customers = db.relation("customers").unwrap();
        let orders = db.relation("orders").unwrap();
        let goal =
            JoinPredicate::from_names(customers.schema(), orders.schema(), &[("cid", "cid")])
                .unwrap();
        let (expert_doc, _) = publish_relational_to_xml(customers, orders, &goal, "sales");
        let (learned_doc, report) =
            learned_publish_relational_to_xml(customers, orders, &goal, "sales", 11);
        assert_eq!(
            expert_doc.nodes_with_label("row").len(),
            learned_doc.nodes_with_label("row").len()
        );
        assert_eq!(report.scenario, Scenario::RelationalToXml);
    }

    #[test]
    fn scenario2_shreds_selected_nodes_into_tuples() {
        let doc = generate(&XmarkConfig::new(0.02, 3));
        let query = parse_xpath("/site/people/person/name").unwrap();
        let (relation, report) = shred_xml_to_relational(&doc, &query, "person_names");
        assert_eq!(relation.len(), report.extracted_items);
        assert!(!relation.is_empty());
        // Every produced tuple carries the full label path of its source node.
        for t in relation.tuples() {
            assert_eq!(t.get(1), &Value::text("site/people/person/name"));
        }
    }

    #[test]
    fn scenario2_learned_variant_from_annotations() {
        let doc = generate(&XmarkConfig::new(0.02, 5));
        let names = doc.nodes_with_label("name");
        // Annotate two person names (the goal the simulated user has in mind).
        let persons = doc.nodes_with_label("person");
        let person_names: Vec<NodeId> = names
            .iter()
            .copied()
            .filter(|n| persons.contains(&doc.parent(*n).unwrap()))
            .take(2)
            .collect();
        let (relation, report) =
            learned_shred_xml_to_relational(&doc, &person_names, "person_names").unwrap();
        assert!(report.source_query.contains("person"));
        assert!(relation.len() >= person_names.len());
    }

    #[test]
    fn scenario3_builds_graph_with_parent_links() {
        let doc = generate(&XmarkConfig::new(0.02, 9));
        let query = parse_xpath("//person").unwrap();
        let (graph, report) = shred_xml_to_graph(&doc, &query);
        assert_eq!(graph.node_count(), report.extracted_items);
        assert!(graph.node_count() > 0);
        // Persons are siblings, so no child_of edges among them.
        assert_eq!(graph.edge_count(), 0);
        // A nested query produces edges.
        let nested = parse_xpath("//person/name").unwrap();
        let both = {
            // Select persons and their names by learning a union-ish approach: just run both.
            let mut sel = select(&query, &doc);
            sel.extend(select(&nested, &doc));
            sel
        };
        let _ = both;
        let (graph2, _) = shred_xml_to_graph(&doc, &parse_xpath("//people//name").unwrap());
        assert!(graph2.node_count() > 0);
    }

    #[test]
    fn scenario4_publishes_learned_paths_as_itineraries() {
        let graph = generate_geo_graph(&GeoConfig {
            cities: 12,
            ..Default::default()
        });
        let from = graph.find_node_by_property("name", "city0").unwrap();
        let to = graph.find_node_by_property("name", "city5").unwrap();
        let goal = PathConstraint {
            road_type: Some("highway".into()),
            max_distance: None,
            via: None,
        };
        let outcome =
            interactive_path_learn(&graph, from, to, &goal, PathStrategy::Halving, vec![], 3);
        let (doc, report) = publish_graph_to_xml(&graph, &outcome.accepted_paths, &outcome.learned);
        assert_eq!(doc.label(XmlTree::ROOT), "itineraries");
        assert_eq!(doc.nodes_with_label("path").len(), report.produced_items);
        // Every step on every path is a highway (the learned constraint).
        for step in doc.nodes_with_label("step") {
            assert_eq!(doc.attribute(step, "road"), Some("highway"));
        }
    }

    #[test]
    fn node_value_concatenates_subtree_text() {
        let doc = qbe_xml::TreeBuilder::new("person")
            .leaf_text("first", "Ada")
            .leaf_text("last", "Lovelace")
            .build();
        assert_eq!(node_value(&doc, XmlTree::ROOT), "Ada Lovelace");
    }
}
