//! Multiplicities — the `{0, 1, ?, *, +}` symbols of the paper's multiplicity schemas, with
//! their interval semantics and the lattice operations the schema algorithms need.

use std::fmt;

/// A multiplicity symbol constraining how many times something may occur.
///
/// Semantics (as a set of admissible counts):
/// `0 ↦ {0}`, `1 ↦ {1}`, `? ↦ {0,1}`, `+ ↦ {1,2,…}`, `* ↦ {0,1,2,…}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Multiplicity {
    /// Exactly zero occurrences.
    Zero,
    /// Exactly one occurrence.
    One,
    /// Zero or one occurrence (`?`).
    Optional,
    /// One or more occurrences (`+`).
    Plus,
    /// Any number of occurrences (`*`).
    Star,
}

impl Multiplicity {
    /// Lower bound of the admissible interval.
    pub fn min(self) -> usize {
        match self {
            Multiplicity::Zero | Multiplicity::Optional | Multiplicity::Star => 0,
            Multiplicity::One | Multiplicity::Plus => 1,
        }
    }

    /// Upper bound of the admissible interval (`None` = unbounded).
    pub fn max(self) -> Option<usize> {
        match self {
            Multiplicity::Zero => Some(0),
            Multiplicity::One | Multiplicity::Optional => Some(1),
            Multiplicity::Plus | Multiplicity::Star => None,
        }
    }

    /// Whether `count` is admissible.
    pub fn admits(self, count: usize) -> bool {
        count >= self.min() && self.max().is_none_or(|m| count <= m)
    }

    /// Whether zero occurrences are admissible (the symbol is "nullable").
    pub fn admits_zero(self) -> bool {
        self.min() == 0
    }

    /// Whether more than one occurrence is admissible.
    pub fn admits_many(self) -> bool {
        self.max().is_none()
    }

    /// Subsumption: `self ⊑ other` iff every count admitted by `self` is admitted by `other`.
    pub fn subsumed_by(self, other: Multiplicity) -> bool {
        other.min() <= self.min()
            && match (self.max(), other.max()) {
                (_, None) => true,
                (None, Some(_)) => false,
                (Some(a), Some(b)) => a <= b,
            }
    }

    /// Least upper bound in the subsumption order (smallest multiplicity admitting both).
    pub fn join(self, other: Multiplicity) -> Multiplicity {
        let min = self.min().min(other.min());
        let unbounded = self.max().is_none() || other.max().is_none();
        let max = if unbounded {
            None
        } else {
            Some(self.max().unwrap().max(other.max().unwrap()))
        };
        Multiplicity::from_bounds(min, max)
    }

    /// The tightest multiplicity admitting every count in `[min, max]` (`max = None` means the
    /// counts are unbounded above).
    pub fn from_bounds(min: usize, max: Option<usize>) -> Multiplicity {
        match (min, max) {
            (_, Some(0)) => Multiplicity::Zero,
            (0, Some(1)) => Multiplicity::Optional,
            (0, None) => Multiplicity::Star,
            (0, Some(_)) => Multiplicity::Star,
            (_, Some(1)) => Multiplicity::One,
            (_, None) => Multiplicity::Plus,
            (_, Some(_)) => Multiplicity::Plus,
        }
    }

    /// The tightest multiplicity admitting every count observed in `counts`.
    ///
    /// Returns [`Multiplicity::Zero`] for an empty observation set.
    pub fn generalising(counts: impl IntoIterator<Item = usize>) -> Multiplicity {
        let mut seen_any = false;
        let mut min = usize::MAX;
        let mut max = 0usize;
        for c in counts {
            seen_any = true;
            min = min.min(c);
            max = max.max(c);
        }
        if !seen_any {
            return Multiplicity::Zero;
        }
        let upper = if max <= 1 { Some(max) } else { None };
        Multiplicity::from_bounds(min, upper)
    }

    /// All five multiplicity symbols.
    pub fn all() -> [Multiplicity; 5] {
        [
            Multiplicity::Zero,
            Multiplicity::One,
            Multiplicity::Optional,
            Multiplicity::Plus,
            Multiplicity::Star,
        ]
    }

    /// Parse the textual form used by [`fmt::Display`].
    pub fn parse(s: &str) -> Option<Multiplicity> {
        match s {
            "0" => Some(Multiplicity::Zero),
            "1" | "" => Some(Multiplicity::One),
            "?" => Some(Multiplicity::Optional),
            "+" => Some(Multiplicity::Plus),
            "*" => Some(Multiplicity::Star),
            _ => None,
        }
    }
}

impl fmt::Display for Multiplicity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Multiplicity::Zero => "0",
            Multiplicity::One => "1",
            Multiplicity::Optional => "?",
            Multiplicity::Plus => "+",
            Multiplicity::Star => "*",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Multiplicity::*;

    #[test]
    fn admits_matches_interval_semantics() {
        assert!(Zero.admits(0) && !Zero.admits(1));
        assert!(One.admits(1) && !One.admits(0) && !One.admits(2));
        assert!(Optional.admits(0) && Optional.admits(1) && !Optional.admits(2));
        assert!(!Plus.admits(0) && Plus.admits(1) && Plus.admits(100));
        assert!(Star.admits(0) && Star.admits(7));
    }

    #[test]
    fn subsumption_order_is_correct() {
        // Star admits everything, so every multiplicity is subsumed by it.
        for m in Multiplicity::all() {
            assert!(m.subsumed_by(Star));
        }
        assert!(One.subsumed_by(Optional));
        assert!(One.subsumed_by(Plus));
        assert!(!Optional.subsumed_by(One));
        assert!(!Plus.subsumed_by(Optional));
        assert!(Zero.subsumed_by(Optional));
        assert!(!Star.subsumed_by(Plus));
    }

    #[test]
    fn subsumption_is_reflexive() {
        for m in Multiplicity::all() {
            assert!(m.subsumed_by(m));
        }
    }

    #[test]
    fn join_is_least_upper_bound() {
        assert_eq!(One.join(Zero), Optional);
        assert_eq!(One.join(Plus), Plus);
        assert_eq!(Optional.join(Plus), Star);
        assert_eq!(Zero.join(Zero), Zero);
        assert_eq!(One.join(One), One);
        for a in Multiplicity::all() {
            for b in Multiplicity::all() {
                let j = a.join(b);
                assert!(a.subsumed_by(j) && b.subsumed_by(j), "{a} join {b} = {j}");
            }
        }
    }

    #[test]
    fn generalising_picks_tightest_symbol() {
        assert_eq!(Multiplicity::generalising([1, 1, 1]), One);
        assert_eq!(Multiplicity::generalising([0, 1]), Optional);
        assert_eq!(Multiplicity::generalising([1, 3]), Plus);
        assert_eq!(Multiplicity::generalising([0, 2]), Star);
        assert_eq!(Multiplicity::generalising([0, 0]), Zero);
        assert_eq!(Multiplicity::generalising([]), Zero);
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for m in Multiplicity::all() {
            assert_eq!(Multiplicity::parse(&m.to_string()), Some(m));
        }
        assert_eq!(Multiplicity::parse("x"), None);
    }

    #[test]
    fn from_bounds_covers_all_shapes() {
        assert_eq!(Multiplicity::from_bounds(0, Some(0)), Zero);
        assert_eq!(Multiplicity::from_bounds(1, Some(1)), One);
        assert_eq!(Multiplicity::from_bounds(0, Some(1)), Optional);
        assert_eq!(Multiplicity::from_bounds(1, None), Plus);
        assert_eq!(Multiplicity::from_bounds(0, None), Star);
        // Finite upper bounds above 1 are widened to the unbounded symbol.
        assert_eq!(Multiplicity::from_bounds(2, Some(5)), Plus);
        assert_eq!(Multiplicity::from_bounds(0, Some(3)), Star);
    }
}
