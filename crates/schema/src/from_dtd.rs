//! Conversion of DTD-lite content models into disjunctive multiplicity schemas.
//!
//! The paper claims that "the disjunctive multiplicity schema can express the DTD from XMark"
//! and many real-world DTDs. This module makes the claim operational: it converts a [`Dtd`]
//! into a [`Dms`] whenever every content model has the *multiplicity shape* — an ordered
//! sequence of items, each of which constrains one label (or one disjunction of labels) with a
//! multiplicity — and reports precisely which rules prevent conversion otherwise.
//!
//! Since DMS ignores sibling order, the conversion widens the language: a document may reorder
//! the children. For the schema-aware learning use case this is exactly right, because twig
//! queries cannot observe order either.

use crate::dms::{Clause, Dms, Rule};
use crate::multiplicity::Multiplicity;
use qbe_xml::dtd::{Dtd, Particle};
use std::collections::BTreeSet;
use std::fmt;

/// Why a DTD rule could not be converted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConversionError {
    /// Element whose content model is not DMS-expressible.
    pub element: String,
    /// Explanation.
    pub reason: String,
}

impl fmt::Display for ConversionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "content model of <{}> is not DMS-expressible: {}",
            self.element, self.reason
        )
    }
}

impl std::error::Error for ConversionError {}

/// Convert a whole DTD into a DMS, or report the first offending rule.
pub fn dms_from_dtd(dtd: &Dtd) -> Result<Dms, ConversionError> {
    let mut schema = Dms::new(dtd.root());
    for element in dtd.declared_elements() {
        let model = dtd
            .content_model(element)
            .expect("declared element has a model");
        let rule = rule_from_particle(model).map_err(|reason| ConversionError {
            element: element.to_string(),
            reason,
        })?;
        schema.set_rule(element, rule);
    }
    Ok(schema)
}

/// Convert a single content model into a rule, if it has the multiplicity shape.
pub fn rule_from_particle(particle: &Particle) -> Result<Rule, String> {
    let items = flatten_sequence(particle);
    let mut clauses = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for item in items {
        let clause = clause_from_item(&item)?;
        for label in clause.labels() {
            if !seen.insert(label.to_string()) {
                return Err(format!(
                    "label `{label}` occurs more than once in the content model"
                ));
            }
        }
        clauses.push(clause);
    }
    Ok(Rule::new(clauses))
}

/// Flatten nested sequences into a list of top-level items; `EMPTY` and `(#PCDATA)` flatten to
/// nothing.
fn flatten_sequence(particle: &Particle) -> Vec<Particle> {
    match particle {
        Particle::Empty | Particle::Text => vec![],
        Particle::Seq(ps) => ps.iter().flat_map(flatten_sequence).collect(),
        other => vec![other.clone()],
    }
}

fn clause_from_item(item: &Particle) -> Result<Clause, String> {
    match item {
        Particle::Element(name) => Ok(Clause::single(name.clone(), Multiplicity::One)),
        Particle::Optional(inner) => wrap(inner, Multiplicity::Optional),
        Particle::Star(inner) => wrap(inner, Multiplicity::Star),
        Particle::Plus(inner) => wrap(inner, Multiplicity::Plus),
        Particle::Choice(_) => {
            let labels = choice_labels(item)?;
            Ok(Clause::new(labels, Multiplicity::One))
        }
        other => Err(format!("unsupported item `{other}`")),
    }
}

fn wrap(inner: &Particle, multiplicity: Multiplicity) -> Result<Clause, String> {
    match inner {
        Particle::Element(name) => Ok(Clause::single(name.clone(), multiplicity)),
        Particle::Choice(_) => {
            let labels = choice_labels(inner)?;
            Ok(Clause::new(labels, multiplicity))
        }
        other => Err(format!("unsupported item under a multiplicity: `{other}`")),
    }
}

fn choice_labels(particle: &Particle) -> Result<Vec<String>, String> {
    match particle {
        Particle::Choice(ps) => {
            let mut labels = Vec::new();
            for p in ps {
                match p {
                    Particle::Element(name) => labels.push(name.clone()),
                    other => {
                        return Err(format!("choice branch `{other}` is not a plain element"));
                    }
                }
            }
            Ok(labels)
        }
        other => Err(format!("expected a choice, found `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbe_xml::dtd::Particle as P;
    use qbe_xml::xmark::{generate, xmark_dtd, XmarkConfig};

    #[test]
    fn simple_sequence_converts() {
        let p = P::Seq(vec![
            P::elem("title"),
            P::plus(P::elem("author")),
            P::opt(P::elem("year")),
        ]);
        let rule = rule_from_particle(&p).unwrap();
        assert_eq!(
            rule.clause_for("title").unwrap().multiplicity(),
            Multiplicity::One
        );
        assert_eq!(
            rule.clause_for("author").unwrap().multiplicity(),
            Multiplicity::Plus
        );
        assert_eq!(
            rule.clause_for("year").unwrap().multiplicity(),
            Multiplicity::Optional
        );
    }

    #[test]
    fn choice_of_elements_converts_to_disjunctive_clause() {
        let p = P::plus(P::Choice(vec![P::elem("email"), P::elem("phone")]));
        let rule = rule_from_particle(&p).unwrap();
        let clause = rule.clause_for("email").unwrap();
        assert!(!clause.is_single());
        assert_eq!(clause.multiplicity(), Multiplicity::Plus);
    }

    #[test]
    fn pcdata_and_empty_convert_to_empty_rule() {
        assert_eq!(rule_from_particle(&P::Text).unwrap().clauses().len(), 0);
        assert_eq!(rule_from_particle(&P::Empty).unwrap().clauses().len(), 0);
    }

    #[test]
    fn repeated_label_is_rejected() {
        let p = P::Seq(vec![P::elem("a"), P::star(P::elem("a"))]);
        assert!(rule_from_particle(&p).is_err());
    }

    #[test]
    fn nested_group_repetition_is_rejected() {
        // (a, (b, c)*) constrains order/pairing in a way DMS cannot express.
        let p = P::Seq(vec![
            P::elem("a"),
            P::star(P::Seq(vec![P::elem("b"), P::elem("c")])),
        ]);
        assert!(rule_from_particle(&p).is_err());
    }

    #[test]
    fn xmark_dtd_is_dms_expressible() {
        let schema = dms_from_dtd(&xmark_dtd()).expect("the paper's claim: XMark DTD fits DMS");
        assert_eq!(schema.root(), "site");
        assert!(schema.declares("person"));
        assert!(schema.declares("open_auction"));
    }

    #[test]
    fn converted_xmark_schema_accepts_generated_documents() {
        let schema = dms_from_dtd(&xmark_dtd()).unwrap();
        let doc = generate(&XmarkConfig::new(0.02, 5));
        let violations = schema.validate(&doc);
        assert!(
            violations.is_empty(),
            "violations: {:?}",
            &violations[..violations.len().min(3)]
        );
    }

    #[test]
    fn conversion_widens_to_unordered_language() {
        // DTD requires (title, author); DMS accepts the reordering too.
        let dtd = Dtd::new("book")
            .rule("book", P::Seq(vec![P::elem("title"), P::elem("author")]))
            .rule("title", P::Text)
            .rule("author", P::Text);
        let schema = dms_from_dtd(&dtd).unwrap();
        let reordered = qbe_xml::TreeBuilder::new("book")
            .leaf("author")
            .leaf("title")
            .build();
        assert!(!dtd.is_valid(&reordered));
        assert!(schema.accepts(&reordered));
    }

    #[test]
    fn error_reports_offending_element() {
        let dtd = Dtd::new("r").rule("r", P::Seq(vec![P::elem("a"), P::elem("a")]));
        let err = dms_from_dtd(&dtd).unwrap_err();
        assert_eq!(err.element, "r");
        assert!(err.to_string().contains("not DMS-expressible"));
    }
}
