//! Dependency graphs of multiplicity schemas.
//!
//! The paper reduces query satisfiability and query implication in the presence of a
//! disjunction-free multiplicity schema to *testing embedding of the query into a dependency
//! graph*, which makes both problems decidable in PTIME. The dependency graph has one vertex per
//! element label and an edge `a → b` whenever the rule of `a` allows a `b` child; the edge is
//! *required* when every valid `a` element must have at least one `b` child.
//!
//! The twig crate performs the actual query-side embedding; this module exposes the graph and
//! the reachability/implication primitives it needs.

use crate::dms::Dms;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// An edge of the dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Minimum number of children with this label every valid parent must have.
    pub min: usize,
    /// Maximum number of such children (`None` = unbounded).
    pub max: Option<usize>,
}

impl DepEdge {
    /// Whether the child label can occur at all.
    pub fn possible(&self) -> bool {
        self.max != Some(0)
    }

    /// Whether at least one such child is present in every valid parent element.
    pub fn required(&self) -> bool {
        self.min >= 1
    }
}

/// Dependency graph of a schema.
#[derive(Debug, Clone)]
pub struct DependencyGraph {
    root: String,
    edges: BTreeMap<String, BTreeMap<String, DepEdge>>,
}

impl DependencyGraph {
    /// Build the dependency graph of a schema.
    ///
    /// For disjunction-free schemas the construction is exact. For disjunctive clauses
    /// `(a | b | …)^m` the per-label bounds are relaxed soundly: each label individually gets
    /// `min = m.min()` only when it is the sole member of its clause, otherwise `min = 0`
    /// (because the requirement could be satisfied by a sibling alternative), and
    /// `max = m.max()`.
    pub fn from_schema(schema: &Dms) -> DependencyGraph {
        let mut edges: BTreeMap<String, BTreeMap<String, DepEdge>> = BTreeMap::new();
        for label in schema.alphabet() {
            let rule = schema.rule_for(&label);
            let mut out = BTreeMap::new();
            for clause in rule.clauses() {
                let m = clause.multiplicity();
                let members: Vec<&str> = clause.labels().collect();
                for child in &members {
                    let min = if members.len() == 1 { m.min() } else { 0 };
                    out.insert(child.to_string(), DepEdge { min, max: m.max() });
                }
            }
            edges.insert(label, out);
        }
        DependencyGraph {
            root: schema.root().to_string(),
            edges,
        }
    }

    /// Root label of the underlying schema.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// All vertices (element labels).
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.edges.keys().map(String::as_str)
    }

    /// The edge from `parent` to `child`, if the child label is allowed at all.
    pub fn edge(&self, parent: &str, child: &str) -> Option<DepEdge> {
        self.edges
            .get(parent)
            .and_then(|m| m.get(child))
            .copied()
            .filter(DepEdge::possible)
    }

    /// Child labels that may occur under `parent`.
    pub fn possible_children(&self, parent: &str) -> Vec<&str> {
        self.edges
            .get(parent)
            .map(|m| {
                m.iter()
                    .filter(|(_, e)| e.possible())
                    .map(|(l, _)| l.as_str())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Child labels required under every valid `parent` element.
    pub fn required_children(&self, parent: &str) -> Vec<&str> {
        self.edges
            .get(parent)
            .map(|m| {
                m.iter()
                    .filter(|(_, e)| e.required())
                    .map(|(l, _)| l.as_str())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Whether a `child`-labelled element may occur directly under a `parent`-labelled one.
    pub fn allows_child(&self, parent: &str, child: &str) -> bool {
        self.edge(parent, child).is_some()
    }

    /// Whether every valid `parent` element has at least one `child`-labelled child.
    pub fn requires_child(&self, parent: &str, child: &str) -> bool {
        self.edge(parent, child).is_some_and(|e| e.required())
    }

    /// Labels reachable from `start` by following possible edges (excluding `start` unless it is
    /// reachable through a cycle).
    pub fn reachable_from(&self, start: &str) -> BTreeSet<String> {
        let mut seen = BTreeSet::new();
        let mut queue: VecDeque<String> = VecDeque::from([start.to_string()]);
        let mut out = BTreeSet::new();
        seen.insert(start.to_string());
        while let Some(label) = queue.pop_front() {
            for child in self.possible_children(&label) {
                out.insert(child.to_string());
                if seen.insert(child.to_string()) {
                    queue.push_back(child.to_string());
                }
            }
        }
        out
    }

    /// Whether some valid document can contain a `descendant`-labelled element strictly below an
    /// `ancestor`-labelled one.
    pub fn has_descendant_path(&self, ancestor: &str, descendant: &str) -> bool {
        self.reachable_from(ancestor).contains(descendant)
    }

    /// Labels guaranteed to occur strictly below every `ancestor`-labelled element of every
    /// valid document — the transitive closure of *required* edges.
    ///
    /// This is exactly the information needed to detect schema-implied query filters: a filter
    /// `[.//b]` under a query node labelled `a` is redundant when `b` is in this set.
    pub fn implied_descendants(&self, ancestor: &str) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        let mut queue: VecDeque<String> = VecDeque::from([ancestor.to_string()]);
        let mut seen = BTreeSet::from([ancestor.to_string()]);
        while let Some(label) = queue.pop_front() {
            for child in self.required_children(&label) {
                out.insert(child.to_string());
                if seen.insert(child.to_string()) {
                    queue.push_back(child.to_string());
                }
            }
        }
        out
    }

    /// Labels guaranteed to occur as a *direct child* of every `parent`-labelled element.
    pub fn implied_children(&self, parent: &str) -> BTreeSet<String> {
        self.required_children(parent)
            .into_iter()
            .map(str::to_string)
            .collect()
    }

    /// Shortest chain of possible edges from `from` to `to` (inclusive of both endpoints),
    /// if one exists. Used to materialise descendant edges when expanding queries.
    pub fn shortest_label_path(&self, from: &str, to: &str) -> Option<Vec<String>> {
        if from == to {
            return Some(vec![from.to_string()]);
        }
        let mut prev: BTreeMap<String, String> = BTreeMap::new();
        let mut queue: VecDeque<String> = VecDeque::from([from.to_string()]);
        let mut seen: BTreeSet<String> = BTreeSet::from([from.to_string()]);
        while let Some(label) = queue.pop_front() {
            for child in self.possible_children(&label) {
                if seen.insert(child.to_string()) {
                    prev.insert(child.to_string(), label.clone());
                    if child == to {
                        let mut path = vec![to.to_string()];
                        let mut cur = to.to_string();
                        while let Some(p) = prev.get(&cur) {
                            path.push(p.clone());
                            cur = p.clone();
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(child.to_string());
                }
            }
        }
        None
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dms::{Clause, Rule};
    use crate::multiplicity::Multiplicity::*;

    /// library -> book+ ; book -> title^1 || author+ || year?
    fn library_schema() -> Dms {
        Dms::new("library")
            .rule("library", Rule::new(vec![Clause::single("book", Plus)]))
            .rule(
                "book",
                Rule::new(vec![
                    Clause::single("title", One),
                    Clause::single("author", Plus),
                    Clause::single("year", Optional),
                ]),
            )
    }

    #[test]
    fn edges_reflect_rules() {
        let g = DependencyGraph::from_schema(&library_schema());
        assert!(g.allows_child("library", "book"));
        assert!(g.allows_child("book", "year"));
        assert!(!g.allows_child("book", "book"));
        assert!(!g.allows_child("title", "author"));
    }

    #[test]
    fn required_edges_have_positive_minimum() {
        let g = DependencyGraph::from_schema(&library_schema());
        assert!(g.requires_child("library", "book"));
        assert!(g.requires_child("book", "title"));
        assert!(g.requires_child("book", "author"));
        assert!(!g.requires_child("book", "year"));
    }

    #[test]
    fn reachability_is_transitive() {
        let g = DependencyGraph::from_schema(&library_schema());
        assert!(g.has_descendant_path("library", "title"));
        assert!(g.has_descendant_path("library", "year"));
        assert!(!g.has_descendant_path("book", "library"));
    }

    #[test]
    fn implied_descendants_follow_required_edges_only() {
        let g = DependencyGraph::from_schema(&library_schema());
        let implied = g.implied_descendants("library");
        assert!(implied.contains("book"));
        assert!(implied.contains("title"));
        assert!(implied.contains("author"));
        assert!(
            !implied.contains("year"),
            "optional children are not implied"
        );
    }

    #[test]
    fn disjunctive_clause_members_are_possible_but_not_required() {
        let schema = Dms::new("person").rule(
            "person",
            Rule::new(vec![
                Clause::single("name", One),
                Clause::new(["email", "phone"], Plus),
            ]),
        );
        let g = DependencyGraph::from_schema(&schema);
        assert!(g.allows_child("person", "email"));
        assert!(g.allows_child("person", "phone"));
        assert!(!g.requires_child("person", "email"));
        assert!(!g.requires_child("person", "phone"));
        assert!(g.requires_child("person", "name"));
    }

    #[test]
    fn zero_multiplicity_children_are_impossible() {
        let schema = Dms::new("r").rule("r", Rule::new(vec![Clause::single("banned", Zero)]));
        let g = DependencyGraph::from_schema(&schema);
        assert!(!g.allows_child("r", "banned"));
        assert!(g.possible_children("r").is_empty());
    }

    #[test]
    fn shortest_label_path_finds_chain() {
        let g = DependencyGraph::from_schema(&library_schema());
        assert_eq!(
            g.shortest_label_path("library", "title"),
            Some(vec![
                "library".to_string(),
                "book".to_string(),
                "title".to_string()
            ])
        );
        assert_eq!(g.shortest_label_path("title", "library"), None);
        assert_eq!(
            g.shortest_label_path("book", "book"),
            Some(vec!["book".to_string()])
        );
    }

    #[test]
    fn implied_children_are_direct_only() {
        let g = DependencyGraph::from_schema(&library_schema());
        let implied = g.implied_children("library");
        assert!(implied.contains("book"));
        assert!(!implied.contains("title"));
    }

    #[test]
    fn cyclic_schemas_terminate() {
        let schema = Dms::new("a")
            .rule("a", Rule::new(vec![Clause::single("b", Star)]))
            .rule("b", Rule::new(vec![Clause::single("a", Star)]));
        let g = DependencyGraph::from_schema(&schema);
        assert!(g.has_descendant_path("a", "a"));
        assert!(g.has_descendant_path("b", "b"));
        assert!(g.implied_descendants("a").is_empty());
    }
}
