//! Schema containment for disjunctive multiplicity schemas.
//!
//! The paper highlights a polynomial-time containment algorithm for DMS as a technical
//! contribution (contrast: DTD containment is PSPACE-complete for general regular expressions
//! and coNP-hard already for disjunction-free DTDs). The implementation below follows the
//! interval-reasoning idea: under the single-occurrence restriction each rule is a conjunction
//! of interval constraints on label-group totals, so rule containment reduces to comparing the
//! achievable interval of every clause of the right-hand schema with its bound, plus an
//! alphabet check — all per-label and polynomial.

use crate::dms::{clause_interval, clause_labels, Dms, Rule};
use std::collections::BTreeSet;

/// Whether `left ⊑ right`: every document accepted by `left` is accepted by `right`.
pub fn schema_contained_in(left: &Dms, right: &Dms) -> bool {
    if !left.is_satisfiable() {
        return true; // the empty language is contained in anything
    }
    if left.root() != right.root() {
        return false;
    }
    // Only labels that can actually appear as elements of some document of `left` matter.
    let relevant: BTreeSet<String> = usable_labels(left);
    for label in &relevant {
        if !rule_contained_in(&left.rule_for(label), &right.rule_for(label)) {
            return false;
        }
    }
    true
}

/// Whether the two schemas accept exactly the same set of documents.
pub fn schema_equivalent(a: &Dms, b: &Dms) -> bool {
    schema_contained_in(a, b) && schema_contained_in(b, a)
}

/// Labels that occur in at least one document accepted by the schema: reachable from the root
/// through clauses that admit a positive count, intersected with the productive labels.
pub fn usable_labels(schema: &Dms) -> BTreeSet<String> {
    let productive = schema.productive_labels();
    let mut reachable: BTreeSet<String> = BTreeSet::new();
    if !productive.contains(schema.root()) {
        return reachable;
    }
    let mut frontier = vec![schema.root().to_string()];
    reachable.insert(schema.root().to_string());
    while let Some(label) = frontier.pop() {
        let rule = schema.rule_for(&label);
        for clause in rule.clauses() {
            let (_, max) = clause_interval(clause);
            if max == Some(0) {
                continue;
            }
            for child in clause.labels() {
                if productive.contains(child) && reachable.insert(child.to_string()) {
                    frontier.push(child.to_string());
                }
            }
        }
    }
    reachable
}

/// Containment between two rules for the same label: every child-label multiset admitted by
/// `left` is admitted by `right`.
pub fn rule_contained_in(left: &Rule, right: &Rule) -> bool {
    let right_allowed = right.allowed_labels();
    // 1. Every label that `left` allows to occur positively must be allowed by `right`.
    for clause in left.clauses() {
        let (_, max) = clause_interval(clause);
        if max != Some(0) && clause.labels().any(|l| !right_allowed.contains(l)) {
            return false;
        }
    }
    // 2. Every clause of `right` must be satisfied by every multiset `left` admits. The set of
    //    achievable totals over the clause's label group is a contiguous interval, computed from
    //    `left`'s clauses.
    for r_clause in right.clauses() {
        let group = clause_labels(r_clause);
        let (lo_r, hi_r) = clause_interval(r_clause);
        let mut min_total: usize = 0;
        let mut max_total: Option<usize> = Some(0);
        for l_clause in left.clauses() {
            let l_labels = clause_labels(l_clause);
            let (lo_l, hi_l) = clause_interval(l_clause);
            let overlaps = l_labels.iter().any(|l| group.contains(l));
            if !overlaps {
                continue;
            }
            let fully_inside = l_labels.iter().all(|l| group.contains(l));
            if fully_inside {
                min_total += lo_l;
            }
            max_total = match (max_total, hi_l) {
                (Some(acc), Some(h)) => Some(acc + h),
                _ => None,
            };
        }
        if min_total < lo_r {
            return false;
        }
        match (hi_r, max_total) {
            (None, _) => {}
            (Some(_), None) => return false,
            (Some(h_r), Some(h_l)) => {
                if h_l > h_r {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dms::{Clause, Rule};
    use crate::multiplicity::Multiplicity::*;

    fn ms(root: &str, rules: Vec<(&str, Rule)>) -> Dms {
        let mut s = Dms::new(root);
        for (l, r) in rules {
            s.set_rule(l, r);
        }
        s
    }

    #[test]
    fn identical_schemas_are_equivalent() {
        let s = ms("r", vec![("r", Rule::new(vec![Clause::single("a", Plus)]))]);
        assert!(schema_equivalent(&s, &s.clone()));
    }

    #[test]
    fn tighter_multiplicity_is_contained_in_looser() {
        let tight = ms("r", vec![("r", Rule::new(vec![Clause::single("a", One)]))]);
        let loose = ms("r", vec![("r", Rule::new(vec![Clause::single("a", Plus)]))]);
        assert!(schema_contained_in(&tight, &loose));
        assert!(!schema_contained_in(&loose, &tight));
    }

    #[test]
    fn optional_vs_star() {
        let opt = ms(
            "r",
            vec![("r", Rule::new(vec![Clause::single("a", Optional)]))],
        );
        let star = ms("r", vec![("r", Rule::new(vec![Clause::single("a", Star)]))]);
        assert!(schema_contained_in(&opt, &star));
        assert!(!schema_contained_in(&star, &opt));
    }

    #[test]
    fn extra_forbidden_label_breaks_containment() {
        let with_b = ms(
            "r",
            vec![(
                "r",
                Rule::new(vec![
                    Clause::single("a", One),
                    Clause::single("b", Optional),
                ]),
            )],
        );
        let only_a = ms("r", vec![("r", Rule::new(vec![Clause::single("a", One)]))]);
        // Documents of `with_b` may contain a `b` child, which `only_a` forbids.
        assert!(!schema_contained_in(&with_b, &only_a));
        assert!(schema_contained_in(&only_a, &with_b));
    }

    #[test]
    fn different_roots_are_incomparable() {
        let a = ms("a", vec![]);
        let b = ms("b", vec![]);
        assert!(!schema_contained_in(&a, &b));
    }

    #[test]
    fn unsatisfiable_schema_is_contained_in_everything() {
        let unsat = ms(
            "a",
            vec![
                ("a", Rule::new(vec![Clause::single("b", Plus)])),
                ("b", Rule::new(vec![Clause::single("a", One)])),
            ],
        );
        let other = ms("z", vec![]);
        assert!(schema_contained_in(&unsat, &other));
    }

    #[test]
    fn disjunctive_clause_contains_its_singletons() {
        // r -> a^1  is contained in  r -> (a|b)^1 (exactly one child, either label)
        let single = ms("r", vec![("r", Rule::new(vec![Clause::single("a", One)]))]);
        let disj = ms(
            "r",
            vec![("r", Rule::new(vec![Clause::new(["a", "b"], One)]))],
        );
        assert!(schema_contained_in(&single, &disj));
        assert!(!schema_contained_in(&disj, &single));
    }

    #[test]
    fn split_clauses_are_not_contained_in_joint_bound() {
        // left: a? || b?  admits {a,b} (total 2); right: (a|b)? bounds the total to 1.
        let left = ms(
            "r",
            vec![(
                "r",
                Rule::new(vec![
                    Clause::single("a", Optional),
                    Clause::single("b", Optional),
                ]),
            )],
        );
        let right = ms(
            "r",
            vec![("r", Rule::new(vec![Clause::new(["a", "b"], Optional)]))],
        );
        assert!(!schema_contained_in(&left, &right));
        assert!(schema_contained_in(&right, &left));
    }

    #[test]
    fn containment_considers_nested_rules() {
        let deep_tight = ms(
            "r",
            vec![
                ("r", Rule::new(vec![Clause::single("a", One)])),
                ("a", Rule::new(vec![Clause::single("b", One)])),
            ],
        );
        let deep_loose = ms(
            "r",
            vec![
                ("r", Rule::new(vec![Clause::single("a", One)])),
                ("a", Rule::new(vec![Clause::single("b", Star)])),
            ],
        );
        assert!(schema_contained_in(&deep_tight, &deep_loose));
        assert!(!schema_contained_in(&deep_loose, &deep_tight));
    }

    #[test]
    fn unreachable_rules_do_not_affect_containment() {
        // `ghost` never appears in a document of `left`, so its looser rule is irrelevant.
        let left = ms(
            "r",
            vec![
                ("r", Rule::new(vec![Clause::single("a", One)])),
                ("ghost", Rule::new(vec![Clause::single("x", Star)])),
            ],
        );
        let right = ms(
            "r",
            vec![
                ("r", Rule::new(vec![Clause::single("a", One)])),
                ("ghost", Rule::new(vec![Clause::single("x", One)])),
            ],
        );
        assert!(schema_contained_in(&left, &right));
    }

    #[test]
    fn required_child_cannot_be_dropped() {
        let requires = ms("r", vec![("r", Rule::new(vec![Clause::single("a", Plus)]))]);
        let forbids_zero_a_missing = ms("r", vec![("r", Rule::empty())]);
        assert!(!schema_contained_in(&requires, &forbids_zero_a_missing));
        // And the empty-content schema *is* contained in the one that merely allows `a`.
        let allows = ms("r", vec![("r", Rule::new(vec![Clause::single("a", Star)]))]);
        assert!(schema_contained_in(&forbids_zero_a_missing, &allows));
    }

    #[test]
    fn usable_labels_excludes_unreachable_and_unproductive() {
        let schema = ms(
            "r",
            vec![
                (
                    "r",
                    Rule::new(vec![Clause::single("a", One), Clause::single("dead", Zero)]),
                ),
                ("a", Rule::empty()),
                ("orphan", Rule::empty()),
            ],
        );
        let usable = usable_labels(&schema);
        assert!(usable.contains("r") && usable.contains("a"));
        assert!(!usable.contains("dead"));
        assert!(!usable.contains("orphan"));
    }
}
