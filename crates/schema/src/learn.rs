//! Learning multiplicity schemas from positive examples.
//!
//! The paper reports (as preliminary research) that disjunctive multiplicity schemas are
//! *identifiable in the limit* from positive examples only — i.e. there is a learner that, fed
//! any sequence of documents eventually containing a characteristic sample of the goal schema,
//! converges to an equivalent schema and never changes its mind afterwards.
//!
//! The learner implemented here is the natural one:
//!
//! 1. **Disjunction-free pass** — for every label observed as an element, and every child label
//!    observed under it, record the per-parent occurrence counts (including the zero counts of
//!    parents lacking the child) and generalise them to the tightest [`Multiplicity`].
//! 2. **Disjunction detection** (optional, [`learn_dms`]) — child labels of a parent that never
//!    co-occur are grouped into a disjunctive clause when the multiplicity of their *total*
//!    count is strictly tighter than what the separate singleton clauses would say; otherwise the
//!    disjunction-free clauses are kept.
//!
//! Both passes are linear in the total size of the examples (times alphabet factors), and the
//! first is exactly the minimal-generalisation operator that yields identification in the limit
//! for the MS class.

use crate::dms::{Clause, Dms, Rule};
use crate::multiplicity::Multiplicity;
use qbe_xml::XmlTree;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Error returned when the examples cannot come from any single schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LearnError {
    /// The example set is empty.
    NoExamples,
    /// Two example documents have different root labels.
    InconsistentRoots(String, String),
}

impl fmt::Display for LearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LearnError::NoExamples => write!(f, "cannot learn a schema from zero examples"),
            LearnError::InconsistentRoots(a, b) => {
                write!(
                    f,
                    "example documents have different root labels: `{a}` vs `{b}`"
                )
            }
        }
    }
}

impl std::error::Error for LearnError {}

/// Per-parent-label observation table: for every child label, one count per occurrence of the
/// parent label across all example documents.
type Observations = BTreeMap<String, BTreeMap<String, Vec<usize>>>;

fn observe(docs: &[XmlTree]) -> Observations {
    // First find, per parent label, the set of child labels ever observed.
    let mut child_alphabet: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for doc in docs {
        for node in doc.node_ids() {
            let entry = child_alphabet
                .entry(doc.label(node).to_string())
                .or_default();
            for (child_label, _) in doc.child_label_counts(node) {
                entry.insert(child_label);
            }
        }
    }
    // Then record, for every occurrence of the parent label, the count of each such child label
    // (zero when absent) — the zeros are what make `1` vs `?` and `+` vs `*` distinguishable.
    let mut observations: Observations = BTreeMap::new();
    for doc in docs {
        for node in doc.node_ids() {
            let parent_label = doc.label(node).to_string();
            let counts = doc.child_label_counts(node);
            let alphabet = child_alphabet
                .get(&parent_label)
                .cloned()
                .unwrap_or_default();
            let entry = observations.entry(parent_label).or_default();
            for child_label in alphabet {
                let count = counts.get(&child_label).copied().unwrap_or(0);
                entry.entry(child_label).or_default().push(count);
            }
        }
    }
    observations
}

/// Learn a **disjunction-free** multiplicity schema (MS) from positive example documents.
pub fn learn_ms(docs: &[XmlTree]) -> Result<Dms, LearnError> {
    let root = common_root(docs)?;
    let observations = observe(docs);
    let mut schema = Dms::new(root);
    for (parent, children) in &observations {
        let clauses: Vec<Clause> = children
            .iter()
            .map(|(child, counts)| {
                Clause::single(
                    child.clone(),
                    Multiplicity::generalising(counts.iter().copied()),
                )
            })
            .filter(|c| c.multiplicity() != Multiplicity::Zero)
            .collect();
        schema.set_rule(parent.clone(), Rule::new(clauses));
    }
    Ok(schema)
}

/// Learn a **disjunctive** multiplicity schema from positive example documents.
///
/// Produces the same rules as [`learn_ms`] except that groups of mutually exclusive child labels
/// whose joint count generalises to a strictly tighter multiplicity are merged into a
/// disjunctive clause.
pub fn learn_dms(docs: &[XmlTree]) -> Result<Dms, LearnError> {
    let root = common_root(docs)?;
    let observations = observe(docs);
    let mut schema = Dms::new(root);
    for (parent, children) in &observations {
        let labels: Vec<&String> = children.keys().collect();
        // Partition child labels into groups of pairwise mutually-exclusive labels (greedy).
        let mut groups: Vec<Vec<String>> = Vec::new();
        for label in &labels {
            let counts = &children[*label];
            if counts.iter().all(|&c| c == 0) {
                continue; // never actually observed: skip entirely
            }
            let mut placed = false;
            for group in groups.iter_mut() {
                let exclusive = group.iter().all(|other| {
                    let other_counts = &children[other];
                    counts
                        .iter()
                        .zip(other_counts)
                        .all(|(&a, &b)| a == 0 || b == 0)
                });
                if exclusive {
                    group.push((*label).clone());
                    placed = true;
                    break;
                }
            }
            if !placed {
                groups.push(vec![(*label).clone()]);
            }
        }
        let mut clauses: Vec<Clause> = Vec::new();
        for group in groups {
            if group.len() == 1 {
                let label = &group[0];
                let m = Multiplicity::generalising(children[label].iter().copied());
                clauses.push(Clause::single(label.clone(), m));
                continue;
            }
            // Joint counts per parent occurrence.
            let n_occurrences = children[&group[0]].len();
            let joint: Vec<usize> = (0..n_occurrences)
                .map(|i| group.iter().map(|l| children[l][i]).sum())
                .collect();
            let joint_m = Multiplicity::generalising(joint.iter().copied());
            // Individual multiplicities if kept separate.
            let separate: Vec<Multiplicity> = group
                .iter()
                .map(|l| Multiplicity::generalising(children[l].iter().copied()))
                .collect();
            // The disjunction is worthwhile when the joint bound is strictly tighter than the
            // weakest information the separate clauses provide about the total, i.e. when every
            // separate clause admits zero (so separately nothing forces presence) but the joint
            // count is always positive, or when the joint count is bounded while separately it
            // would not be.
            let separately_forces_presence = separate.iter().any(|m| !m.admits_zero());
            let separately_bounded = separate.iter().all(|m| Multiplicity::max(*m).is_some());
            let joint_tighter = (!separately_forces_presence && !joint_m.admits_zero())
                || (!separately_bounded && joint_m.max().is_some())
                || (joint_m.max() == Some(1) && group.len() > 1);
            if joint_tighter {
                clauses.push(Clause::new(group, joint_m));
            } else {
                for (label, m) in group.iter().zip(separate) {
                    clauses.push(Clause::single(label.clone(), m));
                }
            }
        }
        schema.set_rule(parent.clone(), Rule::new(clauses));
    }
    Ok(schema)
}

fn common_root(docs: &[XmlTree]) -> Result<String, LearnError> {
    let first = docs.first().ok_or(LearnError::NoExamples)?;
    let root = first.label(XmlTree::ROOT).to_string();
    for doc in docs {
        let r = doc.label(XmlTree::ROOT);
        if r != root {
            return Err(LearnError::InconsistentRoots(root, r.to_string()));
        }
    }
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::{schema_contained_in, schema_equivalent};
    use qbe_xml::TreeBuilder;

    fn person(with_phone: bool, with_email: bool, with_address: bool) -> XmlTree {
        let mut b = TreeBuilder::new("person").leaf("name");
        if with_email {
            b = b.leaf("email");
        }
        if with_phone {
            b = b.leaf("phone");
        }
        if with_address {
            b = b.leaf("address");
        }
        b.build()
    }

    #[test]
    fn no_examples_is_an_error() {
        assert_eq!(learn_ms(&[]).unwrap_err(), LearnError::NoExamples);
    }

    #[test]
    fn inconsistent_roots_are_rejected() {
        let a = TreeBuilder::new("a").build();
        let b = TreeBuilder::new("b").build();
        assert!(matches!(
            learn_ms(&[a, b]).unwrap_err(),
            LearnError::InconsistentRoots(..)
        ));
    }

    #[test]
    fn learned_ms_accepts_all_examples() {
        let docs = vec![
            person(true, false, false),
            person(false, true, true),
            person(true, true, false),
        ];
        let schema = learn_ms(&docs).unwrap();
        for d in &docs {
            assert!(
                schema.accepts(d),
                "learned schema rejects a positive example"
            );
        }
    }

    #[test]
    fn learned_ms_infers_tight_multiplicities() {
        let docs = vec![person(true, false, false), person(false, true, true)];
        let schema = learn_ms(&docs).unwrap();
        let rule = schema.rule_for("person");
        // `name` occurs exactly once in every example.
        assert_eq!(
            rule.clause_for("name").unwrap().multiplicity(),
            Multiplicity::One
        );
        // `address` occurs in some but not all examples.
        assert_eq!(
            rule.clause_for("address").unwrap().multiplicity(),
            Multiplicity::Optional
        );
    }

    #[test]
    fn learned_ms_generalises_repeated_children_to_plus_or_star() {
        let two_books = TreeBuilder::new("library")
            .open("book")
            .leaf("title")
            .close()
            .open("book")
            .leaf("title")
            .close()
            .build();
        let one_book = TreeBuilder::new("library")
            .open("book")
            .leaf("title")
            .close()
            .build();
        let schema = learn_ms(&[two_books, one_book]).unwrap();
        assert_eq!(
            schema
                .rule_for("library")
                .clause_for("book")
                .unwrap()
                .multiplicity(),
            Multiplicity::Plus
        );
    }

    #[test]
    fn dms_learner_detects_mutually_exclusive_labels() {
        // Every person has exactly one of email / phone, never both; `address` co-occurs with
        // each of them in some example, so only the email/phone pair is mutually exclusive.
        let docs = vec![
            person(true, false, true),
            person(false, true, true),
            person(true, false, false),
        ];
        let schema = learn_dms(&docs).unwrap();
        let rule = schema.rule_for("person");
        let disjunctive = rule.clauses().iter().find(|c| !c.is_single());
        let clause = disjunctive.expect("expected a disjunctive clause for email|phone");
        let labels: Vec<&str> = clause.labels().collect();
        assert_eq!(labels, vec!["email", "phone"]);
        assert_eq!(clause.multiplicity(), Multiplicity::One);
        for d in &docs {
            assert!(schema.accepts(d));
        }
    }

    #[test]
    fn dms_learner_keeps_cooccurring_labels_separate() {
        let docs = vec![person(true, true, false), person(true, true, true)];
        let schema = learn_dms(&docs).unwrap();
        let rule = schema.rule_for("person");
        assert!(rule.clauses().iter().all(Clause::is_single));
    }

    #[test]
    fn learned_schema_is_minimal_among_consistent_ms() {
        // The learned MS must be contained in any other MS accepting the examples; we check one
        // particular looser schema.
        let docs = vec![person(true, false, false), person(false, true, false)];
        let learned = learn_ms(&docs).unwrap();
        let looser = Dms::new("person").rule(
            "person",
            Rule::new(vec![
                Clause::single("name", Multiplicity::Star),
                Clause::single("email", Multiplicity::Star),
                Clause::single("phone", Multiplicity::Star),
            ]),
        );
        assert!(schema_contained_in(&learned, &looser));
    }

    #[test]
    fn identification_in_the_limit_on_generated_documents() {
        // Generate documents from a goal MS; with enough samples the learner converges to an
        // equivalent schema and stays there.
        use crate::multiplicity::Multiplicity::*;
        let goal = Dms::new("library")
            .rule("library", Rule::new(vec![Clause::single("book", Plus)]))
            .rule(
                "book",
                Rule::new(vec![
                    Clause::single("title", One),
                    Clause::single("year", Optional),
                ]),
            );
        // A characteristic sample: exercises min and max of every multiplicity.
        let docs = vec![
            TreeBuilder::new("library")
                .open("book")
                .leaf("title")
                .close()
                .build(),
            TreeBuilder::new("library")
                .open("book")
                .leaf("title")
                .leaf("year")
                .close()
                .open("book")
                .leaf("title")
                .close()
                .build(),
        ];
        let learned = learn_ms(&docs).unwrap();
        assert!(
            schema_equivalent(&learned, &goal),
            "learned:\n{learned}\ngoal:\n{goal}"
        );
        // Adding more documents drawn from the goal schema does not change the learned language.
        let more = TreeBuilder::new("library")
            .open("book")
            .leaf("title")
            .leaf("year")
            .close()
            .open("book")
            .leaf("title")
            .close()
            .open("book")
            .leaf("title")
            .close()
            .build();
        let mut extended = docs.clone();
        extended.push(more);
        let relearned = learn_ms(&extended).unwrap();
        assert!(schema_equivalent(&relearned, &goal));
    }

    #[test]
    fn learner_handles_nested_structure() {
        let doc = TreeBuilder::new("site")
            .open("people")
            .open("person")
            .leaf("name")
            .close()
            .open("person")
            .leaf("name")
            .leaf("age")
            .close()
            .close()
            .build();
        let schema = learn_ms(std::slice::from_ref(&doc)).unwrap();
        assert!(schema.accepts(&doc));
        assert_eq!(
            schema
                .rule_for("people")
                .clause_for("person")
                .unwrap()
                .multiplicity(),
            Multiplicity::Plus
        );
    }
}
