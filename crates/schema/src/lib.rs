//! # qbe-schema — unordered-XML schema formalisms and their static analysis
//!
//! Implementation of the schema language the paper introduces to make schema-aware twig-query
//! learning tractable: **disjunctive multiplicity schemas** (DMS) and their disjunction-free
//! restriction (MS). Both ignore sibling order, matching what twig queries can observe.
//!
//! Provided analyses (with the complexities the paper reports):
//!
//! | problem | module | complexity |
//! |---|---|---|
//! | membership / validation | [`dms`] | linear |
//! | satisfiability (finite witness) | [`dms`] | PTIME (fixed point) |
//! | schema containment / equivalence | [`containment`] | PTIME |
//! | dependency graph, implied children/descendants | [`depgraph`] | PTIME |
//! | schema learning from positive documents | [`learn`] | PTIME, identification in the limit |
//! | conversion from DTD-lite content models | [`from_dtd`] | linear, partial |
//!
//! Query-side problems (query satisfiability / implication / containment in the presence of a
//! schema) live in `qbe-twig`, which combines these primitives with twig embeddings.

#![warn(missing_docs)]

pub mod containment;
pub mod depgraph;
pub mod dms;
pub mod dtd_analysis;
pub mod from_dtd;
pub mod learn;
pub mod multiplicity;

pub use containment::{schema_contained_in, schema_equivalent};
pub use depgraph::{DepEdge, DependencyGraph};
pub use dms::{Clause, DisjunctiveMultiplicitySchema, Dms, Rule, SchemaViolation};
pub use dtd_analysis::{
    deterministic_fraction, dtd_contained_in, is_one_unambiguous, particle_contained_in,
    particle_equivalent, GlushkovAutomaton,
};
pub use from_dtd::{dms_from_dtd, ConversionError};
pub use learn::{learn_dms, learn_ms, LearnError};
pub use multiplicity::Multiplicity;

#[cfg(test)]
mod proptests {
    use crate::containment::schema_contained_in;
    use crate::learn::{learn_dms, learn_ms};
    use crate::Multiplicity;
    use proptest::prelude::*;
    use qbe_xml::random::{RandomTreeConfig, RandomTreeGenerator};
    use qbe_xml::XmlTree;

    fn trees(seed: u64, n: usize) -> Vec<XmlTree> {
        let cfg = RandomTreeConfig {
            alphabet: ('a'..='d').map(|c| c.to_string()).collect(),
            max_depth: 4,
            max_children: 3,
            ..Default::default()
        };
        let mut gen = RandomTreeGenerator::new(cfg, seed);
        let mut out = gen.generate_many(n);
        for t in &mut out {
            t.set_label(XmlTree::ROOT, "root");
        }
        out
    }

    proptest! {
        /// The learned MS accepts every document it was learned from.
        #[test]
        fn learned_ms_is_consistent(seed in 0u64..300, n in 1usize..5) {
            let docs = trees(seed, n);
            let schema = learn_ms(&docs).unwrap();
            for doc in &docs {
                prop_assert!(schema.accepts(doc));
            }
        }

        /// The learned DMS accepts every document it was learned from.
        #[test]
        fn learned_dms_is_consistent(seed in 0u64..300, n in 1usize..5) {
            let docs = trees(seed, n);
            let schema = learn_dms(&docs).unwrap();
            for doc in &docs {
                prop_assert!(schema.accepts(doc));
            }
        }

        /// Learning is monotone in generalisation: the schema learned from a subset of the
        /// documents is contained in the schema learned from the whole set.
        #[test]
        fn learning_is_monotone(seed in 0u64..200) {
            let docs = trees(seed, 4);
            let small = learn_ms(&docs[..2]).unwrap();
            let big = learn_ms(&docs).unwrap();
            prop_assert!(schema_contained_in(&small, &big));
        }

        /// Multiplicity join is commutative, associative and idempotent (semilattice laws).
        #[test]
        fn multiplicity_join_is_a_semilattice(a in 0usize..5, b in 0usize..5, c in 0usize..5) {
            let all = Multiplicity::all();
            let (x, y, z) = (all[a], all[b], all[c]);
            prop_assert_eq!(x.join(y), y.join(x));
            prop_assert_eq!(x.join(x), x);
            prop_assert_eq!(x.join(y).join(z), x.join(y.join(z)));
        }

        /// `generalising` produces a multiplicity admitting every observed count.
        #[test]
        fn generalising_admits_observations(counts in proptest::collection::vec(0usize..6, 1..8)) {
            let m = Multiplicity::generalising(counts.iter().copied());
            for c in counts {
                prop_assert!(m.admits(c));
            }
        }
    }
}
