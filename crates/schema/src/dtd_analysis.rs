//! Static analysis of classical DTD content models — the baseline the multiplicity schemas are
//! measured against.
//!
//! The paper recalls the known complexity landscape: DTD containment is PTIME when content
//! models are 1-unambiguous (deterministic) regular expressions, PSPACE-complete in general, and
//! coNP-hard for disjunction-free DTDs. This module provides the machinery behind the tractable
//! case:
//!
//! * [`GlushkovAutomaton`] — the position automaton of a content particle;
//! * [`is_one_unambiguous`] — the determinism test that characterises the XML-legal content
//!   models (the W3C "deterministic content model" rule);
//! * [`particle_contained_in`] / [`dtd_contained_in`] — language containment of content models
//!   and of whole DTDs, by product construction against the determinised right-hand automaton.
//!
//! Containment is polynomial when the right-hand content model is 1-unambiguous (its Glushkov
//! automaton is already deterministic, so the subset construction does not blow up) — exactly
//! the claim reported in the paper; for arbitrary content models the same code still decides
//! containment but may take exponential time, which the benchmarks make visible.

use qbe_xml::dtd::{Dtd, Particle};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The Glushkov (position) automaton of a content particle.
///
/// States are `0` (the start state) and `1..=n` for the `n` occurrences of element names in the
/// particle, numbered left to right. The automaton accepts exactly the label sequences the
/// particle accepts.
#[derive(Debug, Clone)]
pub struct GlushkovAutomaton {
    /// Label of each position (1-based; index 0 is unused).
    labels: Vec<String>,
    /// Positions reachable as the first symbol.
    first: BTreeSet<usize>,
    /// Positions that can end a word.
    last: BTreeSet<usize>,
    /// `follow[p]` = positions that may come immediately after position `p`.
    follow: BTreeMap<usize, BTreeSet<usize>>,
    /// Whether the empty word is accepted.
    nullable: bool,
}

/// Intermediate result of the recursive Glushkov construction for a sub-particle.
struct Linearised {
    first: BTreeSet<usize>,
    last: BTreeSet<usize>,
    nullable: bool,
}

impl GlushkovAutomaton {
    /// Build the position automaton of a particle.
    pub fn from_particle(particle: &Particle) -> GlushkovAutomaton {
        let mut automaton = GlushkovAutomaton {
            labels: vec![String::new()], // position 0 = start, carries no label
            first: BTreeSet::new(),
            last: BTreeSet::new(),
            follow: BTreeMap::new(),
            nullable: false,
        };
        let lin = automaton.build(particle);
        automaton.first = lin.first;
        automaton.last = lin.last;
        automaton.nullable = lin.nullable;
        automaton
    }

    fn build(&mut self, particle: &Particle) -> Linearised {
        match particle {
            Particle::Empty | Particle::Text => Linearised {
                first: BTreeSet::new(),
                last: BTreeSet::new(),
                nullable: true,
            },
            Particle::Element(name) => {
                self.labels.push(name.clone());
                let p = self.labels.len() - 1;
                Linearised {
                    first: BTreeSet::from([p]),
                    last: BTreeSet::from([p]),
                    nullable: false,
                }
            }
            Particle::Seq(parts) => {
                let mut acc = Linearised {
                    first: BTreeSet::new(),
                    last: BTreeSet::new(),
                    nullable: true,
                };
                for part in parts {
                    let lin = self.build(part);
                    // follow(last(acc)) ∪= first(lin)
                    for &p in &acc.last {
                        self.follow
                            .entry(p)
                            .or_default()
                            .extend(lin.first.iter().copied());
                    }
                    if acc.nullable {
                        acc.first.extend(lin.first.iter().copied());
                    }
                    if lin.nullable {
                        acc.last.extend(lin.last.iter().copied());
                    } else {
                        acc.last = lin.last;
                    }
                    acc.nullable = acc.nullable && lin.nullable;
                }
                acc
            }
            Particle::Choice(parts) => {
                let mut acc = Linearised {
                    first: BTreeSet::new(),
                    last: BTreeSet::new(),
                    nullable: false,
                };
                for part in parts {
                    let lin = self.build(part);
                    acc.first.extend(lin.first);
                    acc.last.extend(lin.last);
                    acc.nullable = acc.nullable || lin.nullable;
                }
                acc
            }
            Particle::Optional(inner) => {
                let mut lin = self.build(inner);
                lin.nullable = true;
                lin
            }
            Particle::Star(inner) | Particle::Plus(inner) => {
                let lin = self.build(inner);
                // follow(last) ∪= first, to allow repetition.
                for &p in &lin.last {
                    self.follow
                        .entry(p)
                        .or_default()
                        .extend(lin.first.iter().copied());
                }
                Linearised {
                    first: lin.first,
                    last: lin.last,
                    nullable: lin.nullable || matches!(particle, Particle::Star(_)),
                }
            }
        }
    }

    /// Number of positions (excluding the start state).
    pub fn positions(&self) -> usize {
        self.labels.len() - 1
    }

    /// Whether the automaton accepts the empty word.
    pub fn accepts_empty(&self) -> bool {
        self.nullable
    }

    /// Successor positions of a state (0 = start) together with their labels.
    fn successors(&self, state: usize) -> impl Iterator<Item = (usize, &str)> {
        let set = if state == 0 {
            Some(&self.first)
        } else {
            self.follow.get(&state)
        };
        set.into_iter()
            .flatten()
            .map(|&p| (p, self.labels[p].as_str()))
    }

    /// Whether a state is accepting.
    fn accepting(&self, state: usize) -> bool {
        if state == 0 {
            self.nullable
        } else {
            self.last.contains(&state)
        }
    }

    /// Whether the automaton (equivalently, the content model) is deterministic: no state has
    /// two distinct successor positions carrying the same label. This is the classical
    /// 1-unambiguity test.
    pub fn is_deterministic(&self) -> bool {
        for state in 0..self.labels.len() {
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            for (_, label) in self.successors(state) {
                if !seen.insert(label) {
                    return false;
                }
            }
        }
        true
    }

    /// Whether the automaton accepts a word.
    pub fn accepts(&self, word: &[&str]) -> bool {
        let mut states: BTreeSet<usize> = BTreeSet::from([0]);
        for &symbol in word {
            let mut next = BTreeSet::new();
            for &s in &states {
                for (p, label) in self.successors(s) {
                    if label == symbol {
                        next.insert(p);
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            states = next;
        }
        states.iter().any(|&s| self.accepting(s))
    }
}

/// Whether a content model is 1-unambiguous (deterministic), i.e. XML-legal.
pub fn is_one_unambiguous(particle: &Particle) -> bool {
    GlushkovAutomaton::from_particle(particle).is_deterministic()
}

/// Language containment `L(left) ⊆ L(right)` of two content models.
///
/// The left Glushkov automaton is run in product with the subset-determinisation of the right
/// one; containment fails iff some reachable product state is accepting on the left and
/// non-accepting on the right. Polynomial when `right` is 1-unambiguous (its determinisation is
/// itself), exponential in the worst case otherwise.
pub fn particle_contained_in(left: &Particle, right: &Particle) -> bool {
    let a = GlushkovAutomaton::from_particle(left);
    let b = GlushkovAutomaton::from_particle(right);

    // Product state: (state of A, set of states of B). Start: (0, {0}).
    let start = (0usize, BTreeSet::from([0usize]));
    let mut seen: BTreeSet<(usize, BTreeSet<usize>)> = BTreeSet::from([start.clone()]);
    let mut queue: VecDeque<(usize, BTreeSet<usize>)> = VecDeque::from([start]);
    while let Some((sa, sb)) = queue.pop_front() {
        if a.accepting(sa) && !sb.iter().any(|&s| b.accepting(s)) {
            return false;
        }
        // Group A-successors by label, and advance B's subset on that label.
        let mut by_label: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (p, label) in a.successors(sa) {
            by_label.entry(label).or_default().push(p);
        }
        for (label, a_targets) in by_label {
            let mut b_next = BTreeSet::new();
            for &s in &sb {
                for (p, l) in b.successors(s) {
                    if l == label {
                        b_next.insert(p);
                    }
                }
            }
            for &a_next in &a_targets {
                let state = (a_next, b_next.clone());
                if seen.insert(state.clone()) {
                    queue.push_back(state);
                }
            }
        }
    }
    true
}

/// Language equivalence of two content models.
pub fn particle_equivalent(a: &Particle, b: &Particle) -> bool {
    particle_contained_in(a, b) && particle_contained_in(b, a)
}

/// Containment of two DTDs: same root, and for every element declared in both, the left content
/// model is contained in the right one. Elements declared only on the left are unconstrained on
/// the right (hence contained); elements declared only on the right are unconstrained on the
/// left and therefore only contained if the right rule accepts every child sequence over its
/// alphabet, which we conservatively reject.
pub fn dtd_contained_in(left: &Dtd, right: &Dtd) -> bool {
    if left.root() != right.root() {
        return false;
    }
    for element in right.declared_elements() {
        let Some(right_model) = right.content_model(element) else {
            continue;
        };
        match left.content_model(element) {
            Some(left_model) => {
                if !particle_contained_in(left_model, right_model) {
                    return false;
                }
            }
            None => return false,
        }
    }
    true
}

/// Fraction of a DTD's content models that are 1-unambiguous — the paper's tractability
/// precondition for PTIME DTD containment.
pub fn deterministic_fraction(dtd: &Dtd) -> f64 {
    let mut total = 0usize;
    let mut deterministic = 0usize;
    for element in dtd.declared_elements() {
        if let Some(model) = dtd.content_model(element) {
            total += 1;
            if is_one_unambiguous(model) {
                deterministic += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        deterministic as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbe_xml::xmark::xmark_dtd;
    use Particle as P;

    fn seq(parts: Vec<Particle>) -> Particle {
        P::Seq(parts)
    }

    #[test]
    fn glushkov_accepts_the_same_words_as_the_particle() {
        let particle = seq(vec![
            P::elem("a"),
            P::star(P::Choice(vec![P::elem("b"), P::elem("c")])),
            P::opt(P::elem("d")),
        ]);
        let automaton = GlushkovAutomaton::from_particle(&particle);
        for word in [
            vec!["a"],
            vec!["a", "b"],
            vec!["a", "b", "c", "b"],
            vec!["a", "d"],
            vec!["a", "c", "d"],
            vec![],
            vec!["b"],
            vec!["a", "d", "d"],
            vec!["d", "a"],
        ] {
            assert_eq!(
                automaton.accepts(&word),
                particle.accepts(&word),
                "automaton and particle disagree on {word:?}"
            );
        }
    }

    #[test]
    fn determinism_detects_one_unambiguity() {
        // (a, b) | (a, c) is the textbook ambiguous content model; a, (b | c) is its
        // deterministic equivalent.
        let ambiguous = P::Choice(vec![
            seq(vec![P::elem("a"), P::elem("b")]),
            seq(vec![P::elem("a"), P::elem("c")]),
        ]);
        let deterministic = seq(vec![
            P::elem("a"),
            P::Choice(vec![P::elem("b"), P::elem("c")]),
        ]);
        assert!(!is_one_unambiguous(&ambiguous));
        assert!(is_one_unambiguous(&deterministic));
        assert!(particle_equivalent(&ambiguous, &deterministic));
    }

    #[test]
    fn containment_on_simple_patterns() {
        let a = P::elem("a");
        let a_opt = P::opt(P::elem("a"));
        let a_star = P::star(P::elem("a"));
        let a_plus = P::plus(P::elem("a"));
        assert!(particle_contained_in(&a, &a_star));
        assert!(particle_contained_in(&a_opt, &a_star));
        assert!(particle_contained_in(&a_plus, &a_star));
        assert!(
            !particle_contained_in(&a_star, &a_plus),
            "ε distinguishes * from +"
        );
        assert!(!particle_contained_in(&a_star, &a_opt));
        assert!(particle_contained_in(&a, &a));
    }

    #[test]
    fn containment_respects_sequence_order() {
        let ab = seq(vec![P::elem("a"), P::elem("b")]);
        let ba = seq(vec![P::elem("b"), P::elem("a")]);
        let any = P::star(P::Choice(vec![P::elem("a"), P::elem("b")]));
        assert!(!particle_contained_in(&ab, &ba));
        assert!(particle_contained_in(&ab, &any));
        assert!(particle_contained_in(&ba, &any));
        assert!(!particle_contained_in(&any, &ab));
    }

    #[test]
    fn choice_containment_is_monotone() {
        let ab = P::Choice(vec![P::elem("a"), P::elem("b")]);
        let abc = P::Choice(vec![P::elem("a"), P::elem("b"), P::elem("c")]);
        assert!(particle_contained_in(&ab, &abc));
        assert!(!particle_contained_in(&abc, &ab));
        assert!(particle_equivalent(&ab, &ab));
    }

    #[test]
    fn xmark_content_models_are_deterministic() {
        let dtd = xmark_dtd();
        assert!(
            deterministic_fraction(&dtd) >= 0.99,
            "XMark content models are XML-legal"
        );
        assert!(dtd_contained_in(&dtd, &dtd), "containment is reflexive");
    }

    #[test]
    fn dtd_containment_detects_loosened_rules() {
        let strict = Dtd::new("root")
            .rule("root", seq(vec![P::elem("a"), P::elem("b")]))
            .rule("a", P::Empty)
            .rule("b", P::Empty);
        let loose = Dtd::new("root")
            .rule(
                "root",
                seq(vec![P::star(P::elem("a")), P::opt(P::elem("b"))]),
            )
            .rule("a", P::Empty)
            .rule("b", P::Empty);
        assert!(dtd_contained_in(&strict, &loose));
        assert!(!dtd_contained_in(&loose, &strict));
        let other_root = Dtd::new("other").rule("other", P::Empty);
        assert!(!dtd_contained_in(&strict, &other_root));
    }

    #[test]
    fn empty_and_text_models_accept_only_the_empty_sequence() {
        let automaton = GlushkovAutomaton::from_particle(&P::Text);
        assert!(automaton.accepts_empty());
        assert!(automaton.accepts(&[]));
        assert!(!automaton.accepts(&["a"]));
        assert_eq!(automaton.positions(), 0);
        assert!(particle_contained_in(&P::Text, &P::Empty));
        assert!(particle_contained_in(&P::Empty, &P::star(P::elem("a"))));
    }
}
