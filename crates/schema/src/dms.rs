//! Disjunctive multiplicity schemas (DMS) and their disjunction-free restriction (MS).
//!
//! These are the unordered-XML schema formalisms the paper introduces (with Boneva and Staworko)
//! to make schema-aware query learning tractable: they ignore sibling order — which twig queries
//! cannot observe anyway — and constrain, for every element label, *how many* children of each
//! label (or of each group of alternative labels) an element may have.
//!
//! ## Formalism as implemented
//!
//! A **rule** for a label `a` is a set of **clauses**; each clause is a non-empty set of child
//! labels together with a [`Multiplicity`]:
//!
//! * a singleton clause `b^m` constrains the number of `b` children to lie in `⟦m⟧`;
//! * a disjunctive clause `(b | c | …)^m` constrains the **total** number of children carrying
//!   any of the listed labels to lie in `⟦m⟧`;
//! * labels not mentioned in any clause of the rule are forbidden as children;
//! * every label occurs in at most one clause of a rule (the *single occurrence* restriction of
//!   the original formalism), which is what keeps all static analyses polynomial.
//!
//! A schema is **disjunction-free** (an MS) when every clause is a singleton. This is the
//! restriction for which the paper obtains PTIME query implication/satisfiability via dependency
//! graphs ([`crate::depgraph`]).

use crate::multiplicity::Multiplicity;
use qbe_xml::{NodeId, XmlTree};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One clause of a rule: a set of alternative child labels and a multiplicity on their total
/// count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clause {
    labels: BTreeSet<String>,
    multiplicity: Multiplicity,
}

impl Clause {
    /// Build a clause; panics if the label set is empty.
    pub fn new(
        labels: impl IntoIterator<Item = impl Into<String>>,
        multiplicity: Multiplicity,
    ) -> Clause {
        let labels: BTreeSet<String> = labels.into_iter().map(Into::into).collect();
        assert!(
            !labels.is_empty(),
            "a clause must mention at least one label"
        );
        Clause {
            labels,
            multiplicity,
        }
    }

    /// Singleton clause `label^m`.
    pub fn single(label: impl Into<String>, multiplicity: Multiplicity) -> Clause {
        Clause::new([label.into()], multiplicity)
    }

    /// The alternative labels of the clause.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.labels.iter().map(String::as_str)
    }

    /// The multiplicity bounding the total count of the clause's labels.
    pub fn multiplicity(&self) -> Multiplicity {
        self.multiplicity
    }

    /// Whether the clause is a singleton (disjunction-free).
    pub fn is_single(&self) -> bool {
        self.labels.len() == 1
    }

    /// Whether the clause mentions the given label.
    pub fn mentions(&self, label: &str) -> bool {
        self.labels.contains(label)
    }

    fn label_set(&self) -> &BTreeSet<String> {
        &self.labels
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_single() {
            write!(
                f,
                "{}{}",
                self.labels.iter().next().unwrap(),
                self.multiplicity
            )
        } else {
            let inner: Vec<&str> = self.labels.iter().map(String::as_str).collect();
            write!(f, "({}){}", inner.join(" | "), self.multiplicity)
        }
    }
}

/// The rule (unordered content model) associated with one element label.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Rule {
    clauses: Vec<Clause>,
}

impl Rule {
    /// The empty rule: no children allowed.
    pub fn empty() -> Rule {
        Rule {
            clauses: Vec::new(),
        }
    }

    /// Build a rule from clauses.
    ///
    /// # Panics
    /// Panics if a label occurs in more than one clause (single-occurrence restriction).
    pub fn new(clauses: Vec<Clause>) -> Rule {
        let mut seen = BTreeSet::new();
        for clause in &clauses {
            for label in clause.labels() {
                assert!(
                    seen.insert(label.to_string()),
                    "label `{label}` occurs in more than one clause of the rule"
                );
            }
        }
        Rule { clauses }
    }

    /// The clauses of the rule.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Labels allowed as children by this rule.
    pub fn allowed_labels(&self) -> BTreeSet<String> {
        self.clauses
            .iter()
            .flat_map(|c| c.labels().map(str::to_string))
            .collect()
    }

    /// The clause mentioning a given label, if any.
    pub fn clause_for(&self, label: &str) -> Option<&Clause> {
        self.clauses.iter().find(|c| c.mentions(label))
    }

    /// Whether every clause is a singleton.
    pub fn is_disjunction_free(&self) -> bool {
        self.clauses.iter().all(Clause::is_single)
    }

    /// Check a multiset of child-label counts against the rule; returns the violated clause
    /// description (or the offending label) on failure.
    pub fn check(&self, counts: &BTreeMap<String, usize>) -> Result<(), String> {
        let allowed = self.allowed_labels();
        for (label, count) in counts {
            if *count > 0 && !allowed.contains(label) {
                return Err(format!("child label `{label}` is not allowed"));
            }
        }
        for clause in &self.clauses {
            let total: usize = clause
                .labels()
                .map(|l| counts.get(l).copied().unwrap_or(0))
                .sum();
            if !clause.multiplicity().admits(total) {
                return Err(format!("clause {clause} violated: observed total {total}"));
            }
        }
        Ok(())
    }

    /// Minimum number of children any element satisfying the rule must have.
    pub fn min_children(&self) -> usize {
        self.clauses.iter().map(|c| c.multiplicity().min()).sum()
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "ε");
        }
        let parts: Vec<String> = self.clauses.iter().map(|c| c.to_string()).collect();
        write!(f, "{}", parts.join(" || "))
    }
}

/// A violation reported by [`DisjunctiveMultiplicitySchema::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaViolation {
    /// The offending node.
    pub node: NodeId,
    /// Its label.
    pub label: String,
    /// Description of the failed constraint.
    pub reason: String,
}

impl fmt::Display for SchemaViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node {} <{}>: {}", self.node, self.label, self.reason)
    }
}

/// A disjunctive multiplicity schema: a root label plus one [`Rule`] per element label.
///
/// Labels without a rule are treated as having the empty rule (no children allowed), which keeps
/// validation total.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisjunctiveMultiplicitySchema {
    root: String,
    rules: BTreeMap<String, Rule>,
}

/// Short alias used throughout the workspace.
pub type Dms = DisjunctiveMultiplicitySchema;

impl DisjunctiveMultiplicitySchema {
    /// Create a schema with the given root label and no rules.
    pub fn new(root: impl Into<String>) -> Dms {
        Dms {
            root: root.into(),
            rules: BTreeMap::new(),
        }
    }

    /// Root label.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// Add (or replace) the rule for a label (builder style).
    pub fn rule(mut self, label: impl Into<String>, rule: Rule) -> Dms {
        self.rules.insert(label.into(), rule);
        self
    }

    /// Add (or replace) the rule for a label (mutating style).
    pub fn set_rule(&mut self, label: impl Into<String>, rule: Rule) {
        self.rules.insert(label.into(), rule);
    }

    /// The rule for a label (the empty rule if none was declared).
    pub fn rule_for(&self, label: &str) -> Rule {
        self.rules.get(label).cloned().unwrap_or_else(Rule::empty)
    }

    /// Whether a rule was explicitly declared for the label.
    pub fn declares(&self, label: &str) -> bool {
        self.rules.contains_key(label)
    }

    /// Labels with a declared rule.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.rules.keys().map(String::as_str)
    }

    /// Number of declared rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether no rules are declared.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Whether the schema is disjunction-free (an MS).
    pub fn is_disjunction_free(&self) -> bool {
        self.rules.values().all(Rule::is_disjunction_free)
    }

    /// The alphabet: every label mentioned anywhere (as a rule subject or inside a clause).
    pub fn alphabet(&self) -> BTreeSet<String> {
        let mut out: BTreeSet<String> = self.rules.keys().cloned().collect();
        out.insert(self.root.clone());
        for rule in self.rules.values() {
            out.extend(rule.allowed_labels());
        }
        out
    }

    /// Validate a document, returning every violation.
    pub fn validate(&self, doc: &XmlTree) -> Vec<SchemaViolation> {
        let mut out = Vec::new();
        if doc.label(XmlTree::ROOT) != self.root {
            out.push(SchemaViolation {
                node: XmlTree::ROOT,
                label: doc.label(XmlTree::ROOT).to_string(),
                reason: format!("root label must be `{}`", self.root),
            });
        }
        for node in doc.node_ids() {
            let label = doc.label(node);
            let rule = self.rule_for(label);
            let counts = doc.child_label_counts(node);
            if let Err(reason) = rule.check(&counts) {
                out.push(SchemaViolation {
                    node,
                    label: label.to_string(),
                    reason,
                });
            }
        }
        out
    }

    /// Whether the document satisfies the schema.
    pub fn accepts(&self, doc: &XmlTree) -> bool {
        self.validate(doc).is_empty()
    }

    /// Labels that can derive a **finite** document fragment.
    ///
    /// A label is *productive* when the required children of its rule (clauses with a non-zero
    /// minimum) can all be chosen productive. Computed as a least fixed point.
    pub fn productive_labels(&self) -> BTreeSet<String> {
        let alphabet = self.alphabet();
        let mut productive: BTreeSet<String> = alphabet
            .iter()
            .filter(|l| self.rule_for(l).min_children() == 0)
            .cloned()
            .collect();
        loop {
            let mut changed = false;
            for label in &alphabet {
                if productive.contains(label) {
                    continue;
                }
                let rule = self.rule_for(label);
                // Every clause with a positive minimum must contain at least one productive label.
                let ok = rule.clauses().iter().all(|clause| {
                    clause.multiplicity().min() == 0
                        || clause.labels().any(|l| productive.contains(l))
                });
                if ok {
                    productive.insert(label.clone());
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        productive
    }

    /// Whether at least one finite document satisfies the schema.
    pub fn is_satisfiable(&self) -> bool {
        self.productive_labels().contains(&self.root)
    }

    /// Generate a small witness document satisfying the schema, if one exists.
    ///
    /// Required clauses are satisfied with their minimum count using productive labels;
    /// optional content is omitted.
    pub fn witness(&self) -> Option<XmlTree> {
        let productive = self.productive_labels();
        if !productive.contains(&self.root) {
            return None;
        }
        let mut doc = XmlTree::new(&self.root);
        self.expand_witness(&mut doc, XmlTree::ROOT, &productive, 0);
        Some(doc)
    }

    fn expand_witness(
        &self,
        doc: &mut XmlTree,
        node: NodeId,
        productive: &BTreeSet<String>,
        depth: usize,
    ) {
        if depth > 64 {
            return; // the productive check makes this unreachable, but guard anyway
        }
        let label = doc.label(node).to_string();
        let rule = self.rule_for(&label);
        for clause in rule.clauses() {
            let need = clause.multiplicity().min();
            if need == 0 {
                continue;
            }
            let child_label = clause
                .labels()
                .find(|l| productive.contains(*l))
                .expect("productive parent has a productive choice in every required clause");
            for _ in 0..need {
                let child = doc.add_child(node, child_label);
                self.expand_witness(doc, child, productive, depth + 1);
            }
        }
    }

    /// Sizes used in reports: total number of clauses across all rules.
    pub fn clause_count(&self) -> usize {
        self.rules.values().map(|r| r.clauses().len()).sum()
    }

    /// Iterate over `(label, rule)` pairs.
    pub fn rules(&self) -> impl Iterator<Item = (&str, &Rule)> {
        self.rules.iter().map(|(l, r)| (l.as_str(), r))
    }
}

impl fmt::Display for DisjunctiveMultiplicitySchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "root: {}", self.root)?;
        for (label, rule) in &self.rules {
            writeln!(f, "{label} -> {rule}")?;
        }
        Ok(())
    }
}

/// Internal helper shared with [`crate::containment`]: interval view of a clause total.
pub(crate) fn clause_interval(clause: &Clause) -> (usize, Option<usize>) {
    (clause.multiplicity().min(), clause.multiplicity().max())
}

/// Internal helper shared with [`crate::containment`]: the label set of a clause.
pub(crate) fn clause_labels(clause: &Clause) -> &BTreeSet<String> {
    clause.label_set()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbe_xml::TreeBuilder;
    use Multiplicity::*;

    /// `person -> name^1 || (email | phone)^+ || address^?`
    fn person_schema() -> Dms {
        Dms::new("person").rule(
            "person",
            Rule::new(vec![
                Clause::single("name", One),
                Clause::new(["email", "phone"], Plus),
                Clause::single("address", Optional),
            ]),
        )
    }

    #[test]
    fn accepts_document_matching_all_clauses() {
        let doc = TreeBuilder::new("person")
            .leaf("name")
            .leaf("email")
            .leaf("phone")
            .build();
        assert!(person_schema().accepts(&doc));
    }

    #[test]
    fn rejects_missing_required_child() {
        let doc = TreeBuilder::new("person").leaf("email").build();
        let violations = person_schema().validate(&doc);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].reason.contains("name"));
    }

    #[test]
    fn rejects_forbidden_child_label() {
        let doc = TreeBuilder::new("person")
            .leaf("name")
            .leaf("email")
            .leaf("creditcard")
            .build();
        assert!(!person_schema().accepts(&doc));
    }

    #[test]
    fn disjunctive_clause_counts_total_over_alternatives() {
        // zero emails+phones violates the `+` clause
        let doc = TreeBuilder::new("person").leaf("name").build();
        assert!(!person_schema().accepts(&doc));
        // several of either satisfies it
        let doc = TreeBuilder::new("person")
            .leaf("name")
            .leaf("phone")
            .leaf("phone")
            .build();
        assert!(person_schema().accepts(&doc));
    }

    #[test]
    fn optional_clause_bounds_count_to_one() {
        let doc = TreeBuilder::new("person")
            .leaf("name")
            .leaf("email")
            .leaf("address")
            .leaf("address")
            .build();
        assert!(!person_schema().accepts(&doc));
    }

    #[test]
    fn rejects_wrong_root_label() {
        let doc = TreeBuilder::new("people").build();
        assert!(!person_schema().accepts(&doc));
    }

    #[test]
    fn undeclared_labels_must_be_leaves() {
        let schema = Dms::new("a").rule("a", Rule::new(vec![Clause::single("b", Star)]));
        let ok = TreeBuilder::new("a").leaf("b").leaf("b").build();
        assert!(schema.accepts(&ok));
        let bad = TreeBuilder::new("a").open("b").leaf("c").close().build();
        assert!(!schema.accepts(&bad));
    }

    #[test]
    #[should_panic]
    fn rule_rejects_duplicate_label_across_clauses() {
        let _ = Rule::new(vec![
            Clause::single("a", One),
            Clause::new(["a", "b"], Star),
        ]);
    }

    #[test]
    fn is_disjunction_free_detects_disjunctions() {
        assert!(!person_schema().is_disjunction_free());
        let ms = Dms::new("r").rule("r", Rule::new(vec![Clause::single("x", Star)]));
        assert!(ms.is_disjunction_free());
    }

    #[test]
    fn satisfiability_of_simple_schema() {
        assert!(person_schema().is_satisfiable());
    }

    #[test]
    fn unsatisfiable_when_required_children_cycle() {
        // a requires b, b requires a: no finite tree exists.
        let schema = Dms::new("a")
            .rule("a", Rule::new(vec![Clause::single("b", Plus)]))
            .rule("b", Rule::new(vec![Clause::single("a", One)]));
        assert!(!schema.is_satisfiable());
        assert!(schema.witness().is_none());
    }

    #[test]
    fn witness_satisfies_the_schema() {
        let schema = person_schema();
        let witness = schema.witness().expect("satisfiable schema has a witness");
        assert!(schema.accepts(&witness));
        // The witness is minimal: no optional address, exactly one of email/phone.
        assert_eq!(witness.size(), 3);
    }

    #[test]
    fn witness_handles_nested_requirements() {
        let schema = Dms::new("library")
            .rule("library", Rule::new(vec![Clause::single("book", Plus)]))
            .rule(
                "book",
                Rule::new(vec![
                    Clause::single("title", One),
                    Clause::single("author", Plus),
                ]),
            );
        let witness = schema.witness().unwrap();
        assert!(schema.accepts(&witness));
        assert_eq!(witness.nodes_with_label("title").len(), 1);
    }

    #[test]
    fn display_is_readable() {
        let rule = Rule::new(vec![
            Clause::single("name", One),
            Clause::new(["email", "phone"], Plus),
        ]);
        assert_eq!(rule.to_string(), "name1 || (email | phone)+");
    }

    #[test]
    fn alphabet_includes_clause_labels_and_root() {
        let schema = person_schema();
        let alphabet = schema.alphabet();
        for l in ["person", "name", "email", "phone", "address"] {
            assert!(alphabet.contains(l), "{l} missing from alphabet");
        }
    }
}
