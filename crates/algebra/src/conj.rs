//! Conjunctions of path atoms with variable endpoints, projection, and the selectivity-ordered
//! left-deep join planner.
//!
//! A [`ConjQuery`] is the CRPQ building block: atoms `s —e→ o` whose endpoints are variables or
//! constant nodes, joined on shared variables, with an answer projected onto a variable list.
//! [`plan_join_order`] picks a left-deep atom order greedily by estimated cardinality, always
//! preferring atoms connected to the already-bound variables — the acyclic-plan intuition of
//! Kenig et al. applied at the scale these learners need.

use crate::ir::{Expr, ExprId, QueryStore, Sym};

/// An endpoint of a path atom: a named variable or a constant node (dense node index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A join variable.
    Var(Sym),
    /// A fixed node, by dense index.
    Const(usize),
}

/// One conjunct: `subject —expr→ object`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathAtom {
    /// Subject endpoint.
    pub subject: Term,
    /// The path expression relating subject to object.
    pub expr: ExprId,
    /// Object endpoint.
    pub object: Term,
}

/// A conjunction of path atoms with a projection list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConjQuery {
    /// The conjuncts, in authoring order (the planner may evaluate them in another).
    pub atoms: Vec<PathAtom>,
    /// Output variables, in answer-tuple order.
    pub project: Vec<Sym>,
}

impl ConjQuery {
    /// A conjunction projecting onto the given variables.
    pub fn new(atoms: Vec<PathAtom>, project: Vec<Sym>) -> ConjQuery {
        ConjQuery { atoms, project }
    }

    /// Distinct variables, in first-appearance order.
    pub fn variables(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        for atom in &self.atoms {
            for term in [atom.subject, atom.object] {
                if let Term::Var(v) = term {
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
        }
        out
    }

    /// Render in a SPARQL-ish syntax for logs and wire messages.
    pub fn render(&self, store: &QueryStore) -> String {
        let term = |t: Term| match t {
            Term::Var(v) => format!("?{}", store.symbols().name(v)),
            Term::Const(n) => format!("#{n}"),
        };
        let atoms: Vec<String> = self
            .atoms
            .iter()
            .map(|a| {
                format!(
                    "{} -[{}]-> {}",
                    term(a.subject),
                    store.render(a.expr),
                    term(a.object)
                )
            })
            .collect();
        let proj: Vec<String> = self
            .project
            .iter()
            .map(|v| format!("?{}", store.symbols().name(*v)))
            .collect();
        format!("SELECT {} WHERE {}", proj.join(","), atoms.join(" AND "))
    }
}

/// Cardinality estimates driving the join planner. Implemented for anything that knows
/// per-label edge counts; [`crate::eval::Adjacency`] provides a blanket source.
pub trait CardinalityEstimator {
    /// Total number of nodes.
    fn node_count(&self) -> usize;
    /// Number of edges carrying the label, 0 when absent.
    fn edge_count_of(&self, store: &QueryStore, label: Sym) -> usize;
    /// Total number of edges.
    fn total_edge_count(&self) -> usize;

    /// Estimated answer cardinality of an expression (pairs). A heuristic, not a bound: labels
    /// count their edges, alternation sums, concatenation scales by fanout, closures saturate
    /// towards `n²`.
    fn estimate(&self, store: &QueryStore, e: ExprId) -> f64 {
        let n = self.node_count().max(1) as f64;
        match store.expr(e) {
            Expr::Epsilon | Expr::NodeTest(_) | Expr::Nest(_) => n,
            Expr::Label(s) | Expr::InvLabel(s) => self.edge_count_of(store, *s) as f64,
            Expr::AnyLabel | Expr::AnyInv => self.total_edge_count() as f64,
            Expr::Concat(parts) => {
                // Compose scales the left cardinality by the per-node fanout of the right.
                let mut est = n;
                for &p in parts {
                    est = (est * (self.estimate(store, p) / n)).min(n * n);
                }
                est
            }
            Expr::Alt(parts) => parts
                .iter()
                .map(|&p| self.estimate(store, p))
                .sum::<f64>()
                .min(n * n),
            Expr::Star(_) => n * n,
            Expr::Plus(inner) => (n * n).min(self.estimate(store, *inner) * n).max(n),
            Expr::Opt(inner) => self.estimate(store, *inner) + n,
        }
    }
}

/// A left-deep join order over the atoms of a [`ConjQuery`]: indices into `query.atoms`.
///
/// Greedy selectivity ordering: start from the atom with the smallest estimated cardinality
/// (constant endpoints discount it further), then repeatedly append the cheapest atom that
/// shares a variable with the bound set — an unconnected atom (cartesian product) is chosen
/// only when nothing connected remains.
pub fn plan_join_order(
    store: &QueryStore,
    query: &ConjQuery,
    est: &impl CardinalityEstimator,
) -> Vec<usize> {
    let n = query.atoms.len();
    let cost: Vec<f64> = query
        .atoms
        .iter()
        .map(|a| {
            let mut c = est.estimate(store, a.expr);
            // A constant endpoint restricts the relation to one row/column.
            if matches!(a.subject, Term::Const(_)) {
                c /= est.node_count().max(1) as f64;
            }
            if matches!(a.object, Term::Const(_)) {
                c /= est.node_count().max(1) as f64;
            }
            c
        })
        .collect();
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut bound: Vec<Sym> = Vec::new();
    for _ in 0..n {
        let connected = |ix: usize| {
            let a = &query.atoms[ix];
            [a.subject, a.object].iter().any(|t| match t {
                Term::Var(v) => bound.contains(v),
                Term::Const(_) => true,
            })
        };
        let pick = (0..n)
            .filter(|&ix| !used[ix])
            .min_by(|&a, &b| {
                // Connected-first, then cheapest, then stable by index.
                let key = |ix: usize| (!(order.is_empty() || connected(ix)), cost[ix]);
                key(a)
                    .partial_cmp(&key(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            })
            .expect("an unused atom remains");
        used[pick] = true;
        let a = &query.atoms[pick];
        for t in [a.subject, a.object] {
            if let Term::Var(v) = t {
                if !bound.contains(&v) {
                    bound.push(v);
                }
            }
        }
        order.push(pick);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FixedStats {
        nodes: usize,
        counts: Vec<(&'static str, usize)>,
    }

    impl CardinalityEstimator for FixedStats {
        fn node_count(&self) -> usize {
            self.nodes
        }
        fn edge_count_of(&self, store: &QueryStore, label: Sym) -> usize {
            let name = store.symbols().name(label);
            self.counts
                .iter()
                .find(|(l, _)| *l == name)
                .map(|&(_, c)| c)
                .unwrap_or(0)
        }
        fn total_edge_count(&self) -> usize {
            self.counts.iter().map(|&(_, c)| c).sum()
        }
    }

    #[test]
    fn planner_starts_with_the_most_selective_atom() {
        let mut st = QueryStore::new();
        let rare = st.label("rare");
        let common = st.label("common");
        let x = st.sym("x");
        let y = st.sym("y");
        let z = st.sym("z");
        let q = ConjQuery::new(
            vec![
                PathAtom {
                    subject: Term::Var(x),
                    expr: common,
                    object: Term::Var(y),
                },
                PathAtom {
                    subject: Term::Var(y),
                    expr: rare,
                    object: Term::Var(z),
                },
            ],
            vec![x, z],
        );
        let est = FixedStats {
            nodes: 100,
            counts: vec![("rare", 2), ("common", 500)],
        };
        assert_eq!(plan_join_order(&st, &q, &est), vec![1, 0]);
        assert_eq!(q.variables(), vec![x, y, z]);
    }

    #[test]
    fn planner_prefers_connected_atoms_over_cheaper_cartesian_ones() {
        let mut st = QueryStore::new();
        let a = st.label("a");
        let b = st.label("b");
        let c = st.label("c");
        let (x, y, u, v) = (st.sym("x"), st.sym("y"), st.sym("u"), st.sym("v"));
        // Atom 0 (a: cheapest) binds x,y; atom 1 (c: disconnected, cheap) binds u,v;
        // atom 2 (b: connected to y, expensive) must still beat the cartesian product.
        let q = ConjQuery::new(
            vec![
                PathAtom {
                    subject: Term::Var(x),
                    expr: a,
                    object: Term::Var(y),
                },
                PathAtom {
                    subject: Term::Var(u),
                    expr: c,
                    object: Term::Var(v),
                },
                PathAtom {
                    subject: Term::Var(y),
                    expr: b,
                    object: Term::Var(u),
                },
            ],
            vec![x, v],
        );
        let est = FixedStats {
            nodes: 50,
            counts: vec![("a", 1), ("b", 400), ("c", 3)],
        };
        assert_eq!(plan_join_order(&st, &q, &est), vec![0, 2, 1]);
    }

    #[test]
    fn constant_endpoints_discount_cost() {
        let mut st = QueryStore::new();
        let heavy = st.label("heavy");
        let light = st.label("light");
        let (x, y) = (st.sym("x"), st.sym("y"));
        let q = ConjQuery::new(
            vec![
                PathAtom {
                    subject: Term::Var(x),
                    expr: light,
                    object: Term::Var(y),
                },
                PathAtom {
                    subject: Term::Const(0),
                    expr: heavy,
                    object: Term::Var(x),
                },
            ],
            vec![x, y],
        );
        let est = FixedStats {
            nodes: 100,
            counts: vec![("heavy", 300), ("light", 10)],
        };
        // heavy/n = 3 < light = 10, so the constant-anchored atom goes first.
        assert_eq!(plan_join_order(&st, &q, &est), vec![1, 0]);
        assert!(q.render(&st).starts_with("SELECT ?x,?y WHERE"));
    }
}
