//! # qbe-algebra — one query IR, one optimizer, one evaluator for every graph front-end
//!
//! The paper's graph setting grows several query dialects — regular path queries, 2RPQs with
//! inverse labels, nested regular expressions, conjunctions with projection, SPARQL-style
//! triple patterns — and before this crate each spoke its own AST with its own evaluator. Here
//! they all lower to a single hash-consed IR:
//!
//! * [`ir`] — the interned expression DAG ([`QueryStore`], [`ExprId`]) whose smart constructors
//!   *are* the rewrite optimizer: ε/concat/alt flattening and dedup, star/plus/opt collapsing,
//!   inverse push-down to the leaves (no stored `Inverse` node). [`QueryStore::intern_raw`] and
//!   [`QueryStore::optimize`] expose the optimizer-off/on pair the benches compare.
//! * [`conj`] — conjunctions of path atoms with variable endpoints and projection
//!   ([`ConjQuery`]), plus the selectivity-ordered left-deep join planner
//!   ([`plan_join_order`]).
//! * [`eval`] — lowering onto the dense-bitset kernels: the [`Adjacency`] trait (forward and
//!   reverse per-label successor bitsets, so `ℓ⁻` is native), bitset-row relations ([`Rel`]),
//!   the memoising [`EvalCache`] that turns hash-consing into cross-candidate
//!   common-subexpression elimination, and the backtracking conjunction join with lazy atom
//!   evaluation and a satisfiability early-exit.
//! * [`word`] — Thompson-NFA word membership ([`WordMatcher`]) for the forward fragment, used
//!   by sessions that classify concrete paths rather than node pairs.
//!
//! Because expressions are hash-consed, structural equality is pointer equality ([`ExprId`]),
//! and a candidate pool sharing one [`EvalCache`] evaluates each distinct subquery once per
//! round — the cross-candidate CSE the interactive sessions build on.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod conj;
pub mod eval;
pub mod ir;
pub mod word;

pub use conj::{plan_join_order, CardinalityEstimator, ConjQuery, PathAtom, Term};
pub use eval::{eval_conj, eval_expr, Adjacency, EvalCache, Rel};
pub use ir::{Expr, ExprId, QueryStore, Sym, SymbolTable};
pub use word::WordMatcher;
