//! Lowering IR nodes onto the dense-bitset kernels: relations as per-source bitset rows, a
//! memoising evaluation cache keyed by [`ExprId`], and the backtracking conjunction join.
//!
//! The planner's contract with its data source is the [`Adjacency`] trait — per-label forward
//! *and reverse* successor bitsets — so inverse labels (`ℓ⁻`) evaluate natively instead of via
//! transposition. [`EvalCache`] is the cross-query common-subexpression machinery: because
//! expressions are hash-consed, "the same subquery" literally is the same [`ExprId`], and a
//! whole candidate pool sharing one cache evaluates each distinct subexpression once per round.

use crate::conj::{plan_join_order, CardinalityEstimator, ConjQuery, Term};
use crate::ir::{Expr, ExprId, QueryStore, Sym};
use qbe_bitset::{DenseId, DenseSet};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Label-indexed adjacency with forward and reverse successor bitsets — what the evaluator
/// needs from a graph. Node identity is a dense id type; label identity is the implementor's
/// interned label id (resolved from names via [`resolve_label`](Adjacency::resolve_label)).
pub trait Adjacency {
    /// Dense node id type.
    type Id: DenseId;

    /// Number of nodes (the universe of every relation row).
    fn node_count(&self) -> usize;
    /// Number of distinct edge labels.
    fn label_count(&self) -> usize;
    /// Interned id of an edge label (`None` when no edge carries it).
    fn resolve_label(&self, name: &str) -> Option<usize>;
    /// Successors of `node` under the label, as a bitset (`None` when the node has none).
    fn successors_of(&self, node: usize, label: usize) -> Option<&DenseSet<Self::Id>>;
    /// Predecessors of `node` under the label — the reverse bitsets behind native `ℓ⁻`.
    fn predecessors_of(&self, node: usize, label: usize) -> Option<&DenseSet<Self::Id>>;
    /// Number of edges carrying the label (the planner's selectivity signal).
    fn label_edge_count(&self, label: usize) -> usize;
    /// Nodes carrying a node label (for `?l` tests); empty when the label is unknown.
    fn nodes_with_node_label(&self, name: &str) -> DenseSet<Self::Id>;
}

/// Every [`Adjacency`] is a [`CardinalityEstimator`] via its per-label edge counts.
impl<A: Adjacency> CardinalityEstimator for A {
    fn node_count(&self) -> usize {
        Adjacency::node_count(self)
    }
    fn edge_count_of(&self, store: &QueryStore, label: Sym) -> usize {
        self.resolve_label(store.symbols().name(label))
            .map(|l| self.label_edge_count(l))
            .unwrap_or(0)
    }
    fn total_edge_count(&self) -> usize {
        (0..self.label_count())
            .map(|l| self.label_edge_count(l))
            .sum()
    }
}

/// A binary relation over nodes, stored as one target bitset per source — the shape every
/// bulk operation (compose, union, closure) wants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rel<I: DenseId> {
    rows: Vec<DenseSet<I>>,
}

impl<I: DenseId> Rel<I> {
    /// The empty relation over `n` nodes.
    pub fn empty(n: usize) -> Rel<I> {
        Rel {
            rows: vec![DenseSet::new(n); n],
        }
    }

    /// The identity (diagonal) relation.
    pub fn identity(n: usize) -> Rel<I> {
        let mut rel = Rel::empty(n);
        for s in 0..n {
            rel.rows[s].insert(I::from_index(s));
        }
        rel
    }

    /// The diagonal restricted to the given nodes.
    pub fn diag(n: usize, nodes: &DenseSet<I>) -> Rel<I> {
        let mut rel = Rel::empty(n);
        for id in nodes.iter() {
            rel.rows[id.index()].insert(id);
        }
        rel
    }

    /// Number of nodes the relation ranges over.
    pub fn node_count(&self) -> usize {
        self.rows.len()
    }

    /// The targets of one source.
    pub fn row(&self, source: usize) -> &DenseSet<I> {
        &self.rows[source]
    }

    /// Mutable access to one source's targets (relation builders).
    pub fn row_mut(&mut self, source: usize) -> &mut DenseSet<I> {
        &mut self.rows[source]
    }

    /// Whether the pair is in the relation.
    pub fn contains(&self, source: usize, target: I) -> bool {
        self.rows[source].contains(target)
    }

    /// Total number of pairs.
    pub fn len(&self) -> usize {
        self.rows.iter().map(DenseSet::len).sum()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.iter().all(DenseSet::is_empty)
    }

    /// All pairs as dense indices, in row-major order (for differential tests).
    pub fn pairs(&self) -> BTreeSet<(usize, usize)> {
        let mut out = BTreeSet::new();
        for (s, row) in self.rows.iter().enumerate() {
            for t in row.iter() {
                out.insert((s, t.index()));
            }
        }
        out
    }

    /// Relational composition `self ; other`: one row-union per member of each row.
    pub fn compose(&self, other: &Rel<I>) -> Rel<I> {
        let n = self.rows.len();
        let mut out = Rel::empty(n);
        for s in 0..n {
            for mid in self.rows[s].iter() {
                out.rows[s].or_with(&other.rows[mid.index()]);
            }
        }
        out
    }

    /// Union, in place.
    pub fn union_with(&mut self, other: &Rel<I>) {
        for (row, o) in self.rows.iter_mut().zip(&other.rows) {
            row.or_with(o);
        }
    }

    /// The transposed relation.
    pub fn transpose(&self) -> Rel<I> {
        let n = self.rows.len();
        let mut out = Rel::empty(n);
        for (s, row) in self.rows.iter().enumerate() {
            let s_id = I::from_index(s);
            for t in row.iter() {
                out.rows[t.index()].insert(s_id);
            }
        }
        out
    }

    /// The diagonal over sources with at least one target — the nesting `[e]` relation.
    pub fn nest(&self) -> Rel<I> {
        let n = self.rows.len();
        let mut out = Rel::empty(n);
        for (s, row) in self.rows.iter().enumerate() {
            if !row.is_empty() {
                out.rows[s].insert(I::from_index(s));
            }
        }
        out
    }

    /// Reflexive-transitive closure: per-source BFS over the rows.
    pub fn star(&self) -> Rel<I> {
        let n = self.rows.len();
        let mut out = Rel::empty(n);
        for s in 0..n {
            let reach = out.row_mut(s);
            reach.insert(I::from_index(s));
            let mut stack = vec![s];
            while let Some(u) = stack.pop() {
                for t in self.rows[u].iter() {
                    if reach.insert(t) {
                        stack.push(t.index());
                    }
                }
            }
        }
        out
    }
}

/// The memoising evaluation cache shared across a candidate pool: one entry per distinct
/// [`ExprId`]. Hit/miss counters make the cross-candidate CSE effect measurable.
#[derive(Debug, Clone, Default)]
pub struct EvalCache<I: DenseId> {
    memo: HashMap<ExprId, Arc<Rel<I>>>,
    hits: usize,
    misses: usize,
}

impl<I: DenseId> EvalCache<I> {
    /// An empty cache.
    pub fn new() -> EvalCache<I> {
        EvalCache {
            memo: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Cache lookups that found an entry.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Cache lookups that had to evaluate.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Number of distinct expressions evaluated so far.
    pub fn entries(&self) -> usize {
        self.memo.len()
    }

    /// Drop all entries (a new round over a changed graph).
    pub fn clear(&mut self) {
        self.memo.clear();
    }
}

/// Evaluate an expression to its relation, memoised in `cache`. Unknown edge labels evaluate
/// to the empty relation (they can never fire), matching the legacy evaluators.
pub fn eval_expr<A: Adjacency>(
    store: &QueryStore,
    adj: &A,
    cache: &mut EvalCache<A::Id>,
    e: ExprId,
) -> Arc<Rel<A::Id>> {
    if let Some(hit) = cache.memo.get(&e) {
        cache.hits += 1;
        return Arc::clone(hit);
    }
    cache.misses += 1;
    let n = adj.node_count();
    let rel = match store.expr(e).clone() {
        Expr::Epsilon => Rel::identity(n),
        Expr::Label(s) => label_rel(adj, adj.resolve_label(store.symbols().name(s)), false),
        Expr::InvLabel(s) => label_rel(adj, adj.resolve_label(store.symbols().name(s)), true),
        Expr::AnyLabel => {
            let mut out = Rel::empty(n);
            for l in 0..adj.label_count() {
                out.union_with(&label_rel(adj, Some(l), false));
            }
            out
        }
        Expr::AnyInv => {
            let mut out = Rel::empty(n);
            for l in 0..adj.label_count() {
                out.union_with(&label_rel(adj, Some(l), true));
            }
            out
        }
        Expr::NodeTest(s) => {
            let nodes = adj.nodes_with_node_label(store.symbols().name(s));
            Rel::diag(n, &nodes)
        }
        Expr::Nest(inner) => eval_expr(store, adj, cache, inner).nest(),
        Expr::Concat(parts) => {
            let mut acc = Rel::identity(n);
            for p in parts {
                let rel = eval_expr(store, adj, cache, p);
                acc = acc.compose(&rel);
                if acc.is_empty() {
                    break;
                }
            }
            acc
        }
        Expr::Alt(parts) => {
            let mut acc = Rel::empty(n);
            for p in parts {
                let rel = eval_expr(store, adj, cache, p);
                acc.union_with(&rel);
            }
            acc
        }
        Expr::Star(inner) => eval_expr(store, adj, cache, inner).star(),
        Expr::Plus(inner) => {
            let base = eval_expr(store, adj, cache, inner);
            base.compose(&base.star())
        }
        Expr::Opt(inner) => {
            let mut out = eval_expr(store, adj, cache, inner).as_ref().clone();
            out.union_with(&Rel::identity(n));
            out
        }
    };
    let rel = Arc::new(rel);
    cache.memo.insert(e, Arc::clone(&rel));
    rel
}

fn label_rel<A: Adjacency>(adj: &A, label: Option<usize>, reverse: bool) -> Rel<A::Id> {
    let n = adj.node_count();
    let mut out = Rel::empty(n);
    let Some(l) = label else { return out };
    for s in 0..n {
        let row = if reverse {
            adj.predecessors_of(s, l)
        } else {
            adj.successors_of(s, l)
        };
        if let Some(row) = row {
            out.row_mut(s).or_with(row);
        }
    }
    out
}

/// Evaluate a conjunction: the set of projected answer tuples (dense node indices, in
/// `query.project` order).
///
/// `order` overrides the planner's atom order (for differential tests); `limit` stops the join
/// once that many distinct tuples exist — `limit = 1` is the satisfiability early-exit. Atom
/// relations are evaluated lazily in plan order, so an atom after an empty prefix is never
/// touched.
pub fn eval_conj<A: Adjacency>(
    store: &QueryStore,
    adj: &A,
    cache: &mut EvalCache<A::Id>,
    query: &ConjQuery,
    order: Option<&[usize]>,
    limit: Option<usize>,
) -> BTreeSet<Vec<usize>> {
    let planned: Vec<usize> = match order {
        Some(o) => o.to_vec(),
        None => plan_join_order(store, query, adj),
    };
    assert_eq!(
        planned.len(),
        query.atoms.len(),
        "order must cover all atoms"
    );
    let mut out = BTreeSet::new();
    if query.atoms.is_empty() {
        out.insert(Vec::new());
        return out;
    }
    let mut binding: HashMap<Sym, usize> = HashMap::new();
    let mut rels: Vec<Option<Arc<Rel<A::Id>>>> = vec![None; query.atoms.len()];
    join_step(
        store,
        adj,
        cache,
        query,
        &planned,
        0,
        &mut binding,
        &mut rels,
        &mut out,
        limit,
    );
    out
}

/// Recursive backtracking join over the planned atoms. Returns `true` when the tuple limit has
/// been reached and the search should unwind.
#[allow(clippy::too_many_arguments)]
fn join_step<A: Adjacency>(
    store: &QueryStore,
    adj: &A,
    cache: &mut EvalCache<A::Id>,
    query: &ConjQuery,
    planned: &[usize],
    depth: usize,
    binding: &mut HashMap<Sym, usize>,
    rels: &mut Vec<Option<Arc<Rel<A::Id>>>>,
    out: &mut BTreeSet<Vec<usize>>,
    limit: Option<usize>,
) -> bool {
    if depth == planned.len() {
        let tuple: Vec<usize> = query
            .project
            .iter()
            .map(|v| {
                *binding.get(v).unwrap_or_else(|| {
                    panic!(
                        "projected variable ?{} not bound by any atom",
                        store.symbols().name(*v)
                    )
                })
            })
            .collect();
        out.insert(tuple);
        return limit.is_some_and(|l| out.len() >= l);
    }
    let atom_ix = planned[depth];
    let atom = query.atoms[atom_ix];
    // Lazy atom evaluation: the relation is computed the first time the join reaches it, so an
    // empty prefix short-circuits without touching later atoms.
    if rels[atom_ix].is_none() {
        rels[atom_ix] = Some(eval_expr(store, adj, cache, atom.expr));
    }
    let rel = Arc::clone(rels[atom_ix].as_ref().expect("just filled"));
    let resolve = |t: Term, binding: &HashMap<Sym, usize>| match t {
        Term::Const(n) => Some(n),
        Term::Var(v) => binding.get(&v).copied(),
    };
    let subj = resolve(atom.subject, binding);
    let obj = resolve(atom.object, binding);
    let n = adj.node_count();
    // Enumerate the pairs of this atom consistent with the current binding.
    let candidate_pairs: Vec<(usize, usize)> = match (subj, obj) {
        (Some(s), Some(o)) => {
            if s < n && rel.contains(s, A::Id::from_index(o)) {
                vec![(s, o)]
            } else {
                Vec::new()
            }
        }
        (Some(s), None) => {
            if s < n {
                rel.row(s).iter().map(|t| (s, t.index())).collect()
            } else {
                Vec::new()
            }
        }
        (None, Some(o)) => {
            let o_id = A::Id::from_index(o);
            (0..n)
                .filter(|&s| rel.contains(s, o_id))
                .map(|s| (s, o))
                .collect()
        }
        (None, None) => {
            let mut pairs = Vec::new();
            for s in 0..n {
                for t in rel.row(s).iter() {
                    pairs.push((s, t.index()));
                }
            }
            pairs
        }
    };
    for (s, o) in candidate_pairs {
        let mut added: Vec<Sym> = Vec::new();
        let mut bind = |t: Term, value: usize, binding: &mut HashMap<Sym, usize>| match t {
            Term::Const(_) => true,
            Term::Var(v) => match binding.get(&v) {
                Some(&bound) => bound == value,
                None => {
                    binding.insert(v, value);
                    added.push(v);
                    true
                }
            },
        };
        let ok = bind(atom.subject, s, binding) && bind(atom.object, o, binding);
        if ok
            && join_step(
                store,
                adj,
                cache,
                query,
                planned,
                depth + 1,
                binding,
                rels,
                out,
                limit,
            )
        {
            return true;
        }
        for v in added {
            binding.remove(&v);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny in-crate adjacency for unit tests: nodes 0..n, labelled edges.
    struct TestGraph {
        n: usize,
        labels: Vec<String>,
        fwd: Vec<Vec<DenseSet<usize>>>,
        rev: Vec<Vec<DenseSet<usize>>>,
        node_labels: Vec<String>,
    }

    impl TestGraph {
        fn new(n: usize, labels: &[&str]) -> TestGraph {
            TestGraph {
                n,
                labels: labels.iter().map(|s| s.to_string()).collect(),
                fwd: vec![vec![DenseSet::new(n); n]; labels.len()],
                rev: vec![vec![DenseSet::new(n); n]; labels.len()],
                node_labels: vec!["node".to_string(); n],
            }
        }

        fn edge(&mut self, from: usize, label: &str, to: usize) {
            let l = self.labels.iter().position(|x| x == label).unwrap();
            self.fwd[l][from].insert(to);
            self.rev[l][to].insert(from);
        }
    }

    impl Adjacency for TestGraph {
        type Id = usize;
        fn node_count(&self) -> usize {
            self.n
        }
        fn label_count(&self) -> usize {
            self.labels.len()
        }
        fn resolve_label(&self, name: &str) -> Option<usize> {
            self.labels.iter().position(|x| x == name)
        }
        fn successors_of(&self, node: usize, label: usize) -> Option<&DenseSet<usize>> {
            Some(&self.fwd[label][node])
        }
        fn predecessors_of(&self, node: usize, label: usize) -> Option<&DenseSet<usize>> {
            Some(&self.rev[label][node])
        }
        fn label_edge_count(&self, label: usize) -> usize {
            self.fwd[label].iter().map(DenseSet::len).sum()
        }
        fn nodes_with_node_label(&self, name: &str) -> DenseSet<usize> {
            DenseSet::from_ids(self.n, (0..self.n).filter(|&i| self.node_labels[i] == name))
        }
    }

    /// 0 --a--> 1 --a--> 2 --b--> 3, 0 --b--> 2
    fn chain() -> TestGraph {
        let mut g = TestGraph::new(4, &["a", "b"]);
        g.edge(0, "a", 1);
        g.edge(1, "a", 2);
        g.edge(2, "b", 3);
        g.edge(0, "b", 2);
        g
    }

    #[test]
    fn labels_and_inverses_evaluate_natively() {
        let g = chain();
        let mut st = QueryStore::new();
        let mut cache = EvalCache::new();
        let a = st.label("a");
        assert_eq!(
            eval_expr(&st, &g, &mut cache, a).pairs(),
            BTreeSet::from([(0, 1), (1, 2)])
        );
        let a_inv = st.inv_label("a");
        assert_eq!(
            eval_expr(&st, &g, &mut cache, a_inv).pairs(),
            BTreeSet::from([(1, 0), (2, 1)])
        );
        let missing = st.label("zzz");
        assert!(eval_expr(&st, &g, &mut cache, missing).is_empty());
    }

    #[test]
    fn concat_star_and_opt_match_reachability() {
        let g = chain();
        let mut st = QueryStore::new();
        let mut cache = EvalCache::new();
        let a = st.label("a");
        let b = st.label("b");
        let ab = st.concat([a, b]);
        assert_eq!(
            eval_expr(&st, &g, &mut cache, ab).pairs(),
            BTreeSet::from([(1, 3)])
        );
        let a_star = st.star(a);
        let pairs = eval_expr(&st, &g, &mut cache, a_star).pairs();
        assert!(pairs.contains(&(0, 0)) && pairs.contains(&(0, 2)));
        assert!(!pairs.contains(&(0, 3)));
        let a_plus = st.plus(a);
        let plus_pairs = eval_expr(&st, &g, &mut cache, a_plus).pairs();
        assert!(!plus_pairs.contains(&(0, 0)) && plus_pairs.contains(&(0, 2)));
        let b_opt = st.opt(b);
        let opt_pairs = eval_expr(&st, &g, &mut cache, b_opt).pairs();
        assert!(opt_pairs.contains(&(1, 1)) && opt_pairs.contains(&(2, 3)));
    }

    #[test]
    fn round_trips_through_inverse_return_home() {
        let g = chain();
        let mut st = QueryStore::new();
        let mut cache = EvalCache::new();
        let a = st.label("a");
        let a_inv = st.inverse(a);
        let round = st.concat([a, a_inv]);
        let pairs = eval_expr(&st, &g, &mut cache, round).pairs();
        // a then a⁻: back where you started (whenever an a-edge leaves the node).
        assert_eq!(pairs, BTreeSet::from([(0, 0), (1, 1)]));
    }

    #[test]
    fn cache_shares_subexpressions_across_queries() {
        let g = chain();
        let mut st = QueryStore::new();
        let mut cache = EvalCache::new();
        let a = st.label("a");
        let b = st.label("b");
        let a_plus = st.plus(a);
        let q1 = st.concat([a_plus, b]);
        let q2 = st.alt([a_plus, b]);
        eval_expr(&st, &g, &mut cache, q1);
        let misses_after_q1 = cache.misses();
        eval_expr(&st, &g, &mut cache, q2);
        // q2 re-uses a+ and b: only the alt node itself is a fresh evaluation.
        assert_eq!(cache.misses(), misses_after_q1 + 1);
        assert!(cache.hits() >= 2);
    }

    #[test]
    fn conjunction_joins_and_projects() {
        let g = chain();
        let mut st = QueryStore::new();
        let mut cache = EvalCache::new();
        let a = st.label("a");
        let b = st.label("b");
        let (x, y, z) = (st.sym("x"), st.sym("y"), st.sym("z"));
        let q = ConjQuery::new(
            vec![
                PathAtomHelper::atom(Term::Var(x), a, Term::Var(y)),
                PathAtomHelper::atom(Term::Var(y), b, Term::Var(z)),
            ],
            vec![x, z],
        );
        let answers = eval_conj(&st, &g, &mut cache, &q, None, None);
        // x-a->y-b->z: 1-a->2-b->3 only (0-a->1 has no b out of 1).
        assert_eq!(answers, BTreeSet::from([vec![1, 3]]));
        // Satisfiability early-exit returns at most one tuple.
        let one = eval_conj(&st, &g, &mut cache, &q, None, Some(1));
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn conjunction_with_constants_and_empty_prefix() {
        let g = chain();
        let mut st = QueryStore::new();
        let mut cache = EvalCache::new();
        let missing = st.label("zzz");
        let b = st.label("b");
        let (x, y) = (st.sym("x"), st.sym("y"));
        let q = ConjQuery::new(
            vec![
                PathAtomHelper::atom(Term::Const(0), missing, Term::Var(x)),
                PathAtomHelper::atom(Term::Var(x), b, Term::Var(y)),
            ],
            vec![x, y],
        );
        // Force authoring order so the empty atom is the prefix: the b atom must never be
        // evaluated (lazy short-circuit).
        let before = cache.entries();
        let answers = eval_conj(&st, &g, &mut cache, &q, Some(&[0, 1]), None);
        assert!(answers.is_empty());
        assert_eq!(cache.entries(), before + 1, "only the empty atom evaluated");
    }

    /// Small helper so atom construction stays readable in tests.
    struct PathAtomHelper;
    impl PathAtomHelper {
        fn atom(subject: Term, expr: ExprId, object: Term) -> crate::conj::PathAtom {
            crate::conj::PathAtom {
                subject,
                expr,
                object,
            }
        }
    }
}
