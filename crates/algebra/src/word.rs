//! Word-level membership for the forward fragment of the IR.
//!
//! Sessions that classify *concrete paths* (rather than node pairs) need "does this edge-label
//! word belong to the expression's language?". [`WordMatcher`] compiles the word-expressible
//! fragment — labels, the forward wildcard, ε, concat/alt/star/plus/opt — to a small Thompson
//! NFA over interned symbols; expressions that are not word automata (inverse steps, node
//! tests, nests) report `None` and stay with their relational evaluators.

use crate::ir::{Expr, ExprId, QueryStore, Sym};
use qbe_bitset::DenseSet;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tok {
    Eps,
    Sym(Sym),
    Any,
}

/// A Thompson NFA over interned edge-label symbols, compiled from a word-expressible IR node.
#[derive(Debug, Clone)]
pub struct WordMatcher {
    transitions: Vec<Vec<(Tok, usize)>>,
    start: usize,
    accept: usize,
}

impl WordMatcher {
    /// Compile an expression, or `None` when it leaves the word fragment (inverse labels,
    /// node tests, nesting).
    pub fn compile(store: &QueryStore, e: ExprId) -> Option<WordMatcher> {
        let mut m = WordMatcher {
            transitions: vec![Vec::new(), Vec::new()],
            start: 0,
            accept: 1,
        };
        m.build(store, e, 0, 1)?;
        Some(m)
    }

    fn new_state(&mut self) -> usize {
        self.transitions.push(Vec::new());
        self.transitions.len() - 1
    }

    fn build(&mut self, store: &QueryStore, e: ExprId, from: usize, to: usize) -> Option<()> {
        match store.expr(e).clone() {
            Expr::Epsilon => self.transitions[from].push((Tok::Eps, to)),
            Expr::Label(s) => self.transitions[from].push((Tok::Sym(s), to)),
            Expr::AnyLabel => self.transitions[from].push((Tok::Any, to)),
            Expr::InvLabel(_) | Expr::AnyInv | Expr::NodeTest(_) | Expr::Nest(_) => return None,
            Expr::Concat(parts) => {
                if parts.is_empty() {
                    self.transitions[from].push((Tok::Eps, to));
                    return Some(());
                }
                let mut current = from;
                for (ix, part) in parts.iter().enumerate() {
                    let next = if ix == parts.len() - 1 {
                        to
                    } else {
                        self.new_state()
                    };
                    self.build(store, *part, current, next)?;
                    current = next;
                }
            }
            Expr::Alt(parts) => {
                for part in parts {
                    self.build(store, part, from, to)?;
                }
            }
            Expr::Star(inner) => {
                let hub = self.new_state();
                self.transitions[from].push((Tok::Eps, hub));
                self.transitions[hub].push((Tok::Eps, to));
                self.build(store, inner, hub, hub)?;
            }
            Expr::Plus(inner) => {
                let hub = self.new_state();
                self.build(store, inner, from, hub)?;
                self.transitions[hub].push((Tok::Eps, to));
                self.build(store, inner, hub, hub)?;
            }
            Expr::Opt(inner) => {
                self.transitions[from].push((Tok::Eps, to));
                self.build(store, inner, from, to)?;
            }
        }
        Some(())
    }

    fn epsilon_close(&self, states: &mut DenseSet<usize>) {
        let mut stack: Vec<usize> = states.iter().collect();
        while let Some(s) = stack.pop() {
            for &(tok, target) in &self.transitions[s] {
                if tok == Tok::Eps && states.insert(target) {
                    stack.push(target);
                }
            }
        }
    }

    /// Whether a word of interned symbols belongs to the language.
    pub fn accepts(&self, word: &[Sym]) -> bool {
        let n = self.transitions.len();
        let mut current: DenseSet<usize> = DenseSet::from_ids(n, [self.start]);
        self.epsilon_close(&mut current);
        for &symbol in word {
            let mut next: DenseSet<usize> = DenseSet::new(n);
            for s in current.iter() {
                for &(tok, target) in &self.transitions[s] {
                    if tok == Tok::Sym(symbol) || tok == Tok::Any {
                        next.insert(target);
                    }
                }
            }
            self.epsilon_close(&mut next);
            if next.is_empty() {
                return false;
            }
            current = next;
        }
        current.contains(self.accept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_of_label_accepts_uniform_words() {
        let mut st = QueryStore::new();
        let road = st.label("road");
        let q = st.plus(road);
        let m = WordMatcher::compile(&st, q).unwrap();
        let r = st.sym("road");
        let t = st.sym("train");
        assert!(m.accepts(&[r]));
        assert!(m.accepts(&[r, r, r]));
        assert!(!m.accepts(&[]));
        assert!(!m.accepts(&[r, t]));
    }

    #[test]
    fn star_of_wildcard_accepts_everything() {
        let mut st = QueryStore::new();
        let any = st.any_label();
        let q = st.star(any);
        let m = WordMatcher::compile(&st, q).unwrap();
        let r = st.sym("road");
        let t = st.sym("train");
        assert!(m.accepts(&[]));
        assert!(m.accepts(&[r, t, r]));
    }

    #[test]
    fn non_word_fragments_refuse_to_compile() {
        let mut st = QueryStore::new();
        let inv = st.inv_label("road");
        assert!(WordMatcher::compile(&st, inv).is_none());
        let road = st.label("road");
        let nested = st.nest(road);
        assert!(WordMatcher::compile(&st, nested).is_none());
        let mixed = st.concat([road, inv]);
        assert!(WordMatcher::compile(&st, mixed).is_none());
    }

    #[test]
    fn alt_and_opt_compose() {
        let mut st = QueryStore::new();
        let a = st.label("a");
        let b = st.label("b");
        let alt = st.alt([a, b]);
        let b_opt = st.opt(b);
        let q = st.concat([alt, b_opt]);
        let m = WordMatcher::compile(&st, q).unwrap();
        let (sa, sb) = (st.sym("a"), st.sym("b"));
        assert!(m.accepts(&[sa]));
        assert!(m.accepts(&[sa, sb]));
        assert!(m.accepts(&[sb, sb]));
        assert!(!m.accepts(&[sb, sa]));
        assert!(!m.accepts(&[]));
    }
}
