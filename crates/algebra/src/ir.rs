//! The hash-consed query IR and its rewrite-normalising smart constructors.
//!
//! Every expression lives in a [`QueryStore`] exactly once: structurally equal expressions get
//! the same [`ExprId`], extending the twig shape-id interning trick to the whole graph query
//! language. Equal ids therefore mean equal queries, which is what makes cross-candidate
//! common-subexpression factoring a hash-map lookup downstream (see
//! [`EvalCache`](crate::eval::EvalCache)).
//!
//! The optimizer is *constructor-shaped*: the smart constructors ([`QueryStore::concat`],
//! [`QueryStore::alt`], [`QueryStore::star`], …) apply language-preserving rewrites at intern
//! time — ε and nested-concat flattening, alternation sort + dedup, star/plus/opt collapsing —
//! and [`QueryStore::inverse`] pushes inversion down to the leaves (`(e₁/e₂)⁻ = e₂⁻/e₁⁻`,
//! `ℓ⁻⁻ = ℓ`), so no `Inverse` node is ever stored. [`QueryStore::intern_raw`] bypasses all
//! rewrites; [`QueryStore::optimize`] normalises a raw expression bottom-up through the smart
//! constructors. The two entry points are what the optimizer-on/off benches compare.

use std::collections::HashMap;
use std::fmt::Write as _;

/// An interned label / node-label / variable name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

/// Interner for the names appearing in queries (edge labels, node labels, variables).
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    ids: HashMap<String, u32>,
}

impl SymbolTable {
    /// Intern a name, returning its symbol (stable across repeated calls).
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&id) = self.ids.get(name) {
            return Sym(id);
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        Sym(id)
    }

    /// The symbol of an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.ids.get(name).copied().map(Sym)
    }

    /// The name behind a symbol.
    pub fn name(&self, sym: Sym) -> &str {
        &self.names[sym.0 as usize]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no name has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Id of an interned expression inside one [`QueryStore`]. Equal ids ⇔ structurally equal
/// expressions (within that store).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub u32);

/// One node of the query IR. Children are [`ExprId`]s into the owning [`QueryStore`], so the
/// whole term graph is a DAG with structural sharing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// The empty word (the identity relation).
    Epsilon,
    /// A forward edge with this label.
    Label(Sym),
    /// A backward edge with this label: the 2RPQ inverse `ℓ⁻`.
    InvLabel(Sym),
    /// Any forward edge, regardless of label.
    AnyLabel,
    /// Any backward edge.
    AnyInv,
    /// Node-label test: stay put, require the node's label.
    NodeTest(Sym),
    /// Nesting `[e]`: stay put, require an outgoing path matching `e`.
    Nest(ExprId),
    /// Concatenation (`≥ 2` parts after normalisation).
    Concat(Vec<ExprId>),
    /// Alternation (`≥ 2` parts, id-sorted and deduplicated after normalisation).
    Alt(Vec<ExprId>),
    /// Zero or more repetitions.
    Star(ExprId),
    /// One or more repetitions.
    Plus(ExprId),
    /// Zero or one occurrence.
    Opt(ExprId),
}

/// The hash-consing store: owns the symbol table and every interned expression.
#[derive(Debug, Clone, Default)]
pub struct QueryStore {
    symbols: SymbolTable,
    exprs: Vec<Expr>,
    memo: HashMap<Expr, ExprId>,
}

impl QueryStore {
    /// An empty store.
    pub fn new() -> QueryStore {
        QueryStore::default()
    }

    /// The symbol table (labels, node labels, variables).
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Intern a name into the store's symbol table.
    pub fn sym(&mut self, name: &str) -> Sym {
        self.symbols.intern(name)
    }

    /// The expression behind an id.
    pub fn expr(&self, id: ExprId) -> &Expr {
        &self.exprs[id.0 as usize]
    }

    /// Number of distinct interned expressions (the hash-consing win is this staying far below
    /// the number of constructor calls).
    pub fn expr_count(&self) -> usize {
        self.exprs.len()
    }

    /// Intern an expression node *verbatim* — hash-consed but with no rewrites applied. This is
    /// the optimizer-off path; [`optimize`](Self::optimize) normalises what it produces.
    pub fn intern_raw(&mut self, e: Expr) -> ExprId {
        if let Some(&id) = self.memo.get(&e) {
            return id;
        }
        let id = ExprId(self.exprs.len() as u32);
        self.exprs.push(e.clone());
        self.memo.insert(e, id);
        id
    }

    /// The empty-word expression.
    pub fn epsilon(&mut self) -> ExprId {
        self.intern_raw(Expr::Epsilon)
    }

    /// A forward label atom.
    pub fn label(&mut self, name: &str) -> ExprId {
        let s = self.sym(name);
        self.intern_raw(Expr::Label(s))
    }

    /// An inverse label atom `ℓ⁻`.
    pub fn inv_label(&mut self, name: &str) -> ExprId {
        let s = self.sym(name);
        self.intern_raw(Expr::InvLabel(s))
    }

    /// The any-forward-edge wildcard.
    pub fn any_label(&mut self) -> ExprId {
        self.intern_raw(Expr::AnyLabel)
    }

    /// The any-backward-edge wildcard.
    pub fn any_inv(&mut self) -> ExprId {
        self.intern_raw(Expr::AnyInv)
    }

    /// A node-label test.
    pub fn node_test(&mut self, name: &str) -> ExprId {
        let s = self.sym(name);
        self.intern_raw(Expr::NodeTest(s))
    }

    /// Nesting `[e]`. Rewrites: `[ε] = ε`, and nesting an already-diagonal expression
    /// (`[[e]] = [e]`, `[?l] = ?l`) is collapsed.
    pub fn nest(&mut self, e: ExprId) -> ExprId {
        match self.expr(e) {
            Expr::Epsilon => e,
            Expr::Nest(_) | Expr::NodeTest(_) => e,
            _ => self.intern_raw(Expr::Nest(e)),
        }
    }

    /// Concatenation. Rewrites: nested concats flatten, ε parts drop; the empty concat is ε and
    /// the singleton concat is its part.
    pub fn concat(&mut self, parts: impl IntoIterator<Item = ExprId>) -> ExprId {
        let mut flat = Vec::new();
        for p in parts {
            match self.expr(p) {
                Expr::Epsilon => {}
                Expr::Concat(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(p),
            }
        }
        match flat.len() {
            0 => self.epsilon(),
            1 => flat[0],
            _ => self.intern_raw(Expr::Concat(flat)),
        }
    }

    /// Alternation. Rewrites: nested alts flatten, branches sort by id and deduplicate (union
    /// is commutative, associative, idempotent); the singleton alt is its branch.
    ///
    /// Panics on an empty alternation — the empty language has no IR node on purpose (no
    /// front-end produces it).
    pub fn alt(&mut self, parts: impl IntoIterator<Item = ExprId>) -> ExprId {
        let mut flat = Vec::new();
        for p in parts {
            match self.expr(p) {
                Expr::Alt(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(p),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        match flat.len() {
            0 => panic!("empty alternation has no IR node"),
            1 => flat[0],
            _ => self.intern_raw(Expr::Alt(flat)),
        }
    }

    /// Zero-or-more. Rewrites: `ε* = ε`, `(e*)* = (e+)* = (e?)* = e*`.
    pub fn star(&mut self, e: ExprId) -> ExprId {
        match *self.expr(e) {
            Expr::Epsilon => e,
            Expr::Star(_) => e,
            Expr::Plus(inner) | Expr::Opt(inner) => self.star(inner),
            _ => self.intern_raw(Expr::Star(e)),
        }
    }

    /// One-or-more. Rewrites: `ε+ = ε`, `(e*)+ = e*`, `(e+)+ = e+`, `(e?)+ = e*`.
    pub fn plus(&mut self, e: ExprId) -> ExprId {
        match *self.expr(e) {
            Expr::Epsilon => e,
            Expr::Star(_) | Expr::Plus(_) => e,
            Expr::Opt(inner) => self.star(inner),
            _ => self.intern_raw(Expr::Plus(e)),
        }
    }

    /// Zero-or-one. Rewrites: `ε? = ε`, `(e*)? = e*`, `(e?)? = e?`, `(e+)? = e*`.
    pub fn opt(&mut self, e: ExprId) -> ExprId {
        match *self.expr(e) {
            Expr::Epsilon => e,
            Expr::Star(_) | Expr::Opt(_) => e,
            Expr::Plus(inner) => self.star(inner),
            _ => self.intern_raw(Expr::Opt(e)),
        }
    }

    /// The 2RPQ inverse of an expression, pushed down to the leaves: `(e₁/e₂)⁻ = e₂⁻/e₁⁻`,
    /// inversion distributes over alternation and repetition, flips `ℓ ↔ ℓ⁻` and `_ ↔ _⁻`, and
    /// leaves diagonal expressions (ε, node tests, nests) alone. No `Inverse` node is stored,
    /// so `inverse(inverse(e)) == e` by construction.
    pub fn inverse(&mut self, e: ExprId) -> ExprId {
        match self.expr(e).clone() {
            Expr::Epsilon | Expr::NodeTest(_) | Expr::Nest(_) => e,
            Expr::Label(s) => self.intern_raw(Expr::InvLabel(s)),
            Expr::InvLabel(s) => self.intern_raw(Expr::Label(s)),
            Expr::AnyLabel => self.intern_raw(Expr::AnyInv),
            Expr::AnyInv => self.intern_raw(Expr::AnyLabel),
            Expr::Concat(parts) => {
                let rev: Vec<ExprId> = parts.iter().rev().map(|&p| self.inverse(p)).collect();
                self.concat(rev)
            }
            Expr::Alt(parts) => {
                let inv: Vec<ExprId> = parts.iter().map(|&p| self.inverse(p)).collect();
                self.alt(inv)
            }
            Expr::Star(inner) => {
                let inv = self.inverse(inner);
                self.star(inv)
            }
            Expr::Plus(inner) => {
                let inv = self.inverse(inner);
                self.plus(inv)
            }
            Expr::Opt(inner) => {
                let inv = self.inverse(inner);
                self.opt(inv)
            }
        }
    }

    /// Normalise an expression bottom-up through the smart constructors — the optimizer entry
    /// point for expressions built with [`intern_raw`](Self::intern_raw). Idempotent; on
    /// smart-constructed expressions it is the identity.
    pub fn optimize(&mut self, e: ExprId) -> ExprId {
        match self.expr(e).clone() {
            Expr::Epsilon
            | Expr::Label(_)
            | Expr::InvLabel(_)
            | Expr::AnyLabel
            | Expr::AnyInv
            | Expr::NodeTest(_) => e,
            Expr::Nest(inner) => {
                let o = self.optimize(inner);
                self.nest(o)
            }
            Expr::Concat(parts) => {
                let o: Vec<ExprId> = parts.iter().map(|&p| self.optimize(p)).collect();
                self.concat(o)
            }
            Expr::Alt(parts) => {
                let o: Vec<ExprId> = parts.iter().map(|&p| self.optimize(p)).collect();
                self.alt(o)
            }
            Expr::Star(inner) => {
                let o = self.optimize(inner);
                self.star(o)
            }
            Expr::Plus(inner) => {
                let o = self.optimize(inner);
                self.plus(o)
            }
            Expr::Opt(inner) => {
                let o = self.optimize(inner);
                self.opt(o)
            }
        }
    }

    /// Number of syntax nodes of an expression (shared subexpressions counted once per
    /// occurrence — the "query size" reported to users).
    pub fn size(&self, e: ExprId) -> usize {
        match self.expr(e) {
            Expr::Epsilon
            | Expr::Label(_)
            | Expr::InvLabel(_)
            | Expr::AnyLabel
            | Expr::AnyInv
            | Expr::NodeTest(_) => 1,
            Expr::Nest(inner) | Expr::Star(inner) | Expr::Plus(inner) | Expr::Opt(inner) => {
                1 + self.size(*inner)
            }
            Expr::Concat(parts) | Expr::Alt(parts) => {
                1 + parts.iter().map(|&p| self.size(p)).sum::<usize>()
            }
        }
    }

    /// Render an expression in the workspace's regex syntax (`/` concat, `|` alt, `^-` marks an
    /// inverse label, `_` the wildcard, `?l` a node test, `[e]` a nest).
    pub fn render(&self, e: ExprId) -> String {
        let mut out = String::new();
        self.render_into(e, &mut out);
        out
    }

    fn render_into(&self, e: ExprId, out: &mut String) {
        match self.expr(e) {
            Expr::Epsilon => out.push('ε'),
            Expr::Label(s) => out.push_str(self.symbols.name(*s)),
            Expr::InvLabel(s) => {
                let _ = write!(out, "{}^-", self.symbols.name(*s));
            }
            Expr::AnyLabel => out.push('_'),
            Expr::AnyInv => out.push_str("_^-"),
            Expr::NodeTest(s) => {
                let _ = write!(out, "?{}", self.symbols.name(*s));
            }
            Expr::Nest(inner) => {
                out.push('[');
                self.render_into(*inner, out);
                out.push(']');
            }
            Expr::Concat(parts) => {
                for (ix, &p) in parts.iter().enumerate() {
                    if ix > 0 {
                        out.push('/');
                    }
                    self.render_into(p, out);
                }
            }
            Expr::Alt(parts) => {
                out.push('(');
                for (ix, &p) in parts.iter().enumerate() {
                    if ix > 0 {
                        out.push('|');
                    }
                    self.render_into(p, out);
                }
                out.push(')');
            }
            Expr::Star(inner) => {
                out.push('(');
                self.render_into(*inner, out);
                out.push_str(")*");
            }
            Expr::Plus(inner) => {
                out.push('(');
                self.render_into(*inner, out);
                out.push_str(")+");
            }
            Expr::Opt(inner) => {
                out.push('(');
                self.render_into(*inner, out);
                out.push_str(")?");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_structural() {
        let mut st = QueryStore::new();
        let a1 = st.label("road");
        let a2 = st.label("road");
        assert_eq!(a1, a2);
        let t = st.label("train");
        let c1 = st.concat([a1, t]);
        let c2 = st.concat([a2, t]);
        assert_eq!(c1, c2);
        assert_ne!(a1, c1);
    }

    #[test]
    fn concat_flattens_and_drops_epsilon() {
        let mut st = QueryStore::new();
        let a = st.label("a");
        let b = st.label("b");
        let eps = st.epsilon();
        let ab = st.concat([a, b]);
        let nested = st.concat([eps, ab, eps]);
        assert_eq!(nested, ab);
        let triple = st.concat([ab, a]);
        let flat = st.concat([a, b, a]);
        assert_eq!(triple, flat);
        assert_eq!(st.concat([]), eps);
        assert_eq!(st.concat([a]), a);
    }

    #[test]
    fn alt_sorts_and_dedups() {
        let mut st = QueryStore::new();
        let a = st.label("a");
        let b = st.label("b");
        let ab = st.alt([a, b]);
        let ba = st.alt([b, a]);
        assert_eq!(ab, ba, "alternation is order-insensitive");
        assert_eq!(st.alt([a, a]), a, "idempotent union collapses");
        let nested = st.alt([ab, a]);
        assert_eq!(nested, ab, "flattening + dedup");
    }

    #[test]
    fn repetition_rewrites_collapse() {
        let mut st = QueryStore::new();
        let a = st.label("a");
        let star = st.star(a);
        assert_eq!(st.star(star), star, "(a*)* = a*");
        let plus = st.plus(a);
        assert_eq!(st.star(plus), star, "(a+)* = a*");
        let opt = st.opt(a);
        assert_eq!(st.star(opt), star, "(a?)* = a*");
        assert_eq!(st.plus(star), star, "(a*)+ = a*");
        assert_eq!(st.plus(opt), star, "(a?)+ = a*");
        assert_eq!(st.opt(plus), star, "(a+)? = a*");
        assert_eq!(st.opt(opt), opt, "(a?)? = a?");
        let eps = st.epsilon();
        assert_eq!(st.star(eps), eps);
        assert_eq!(st.plus(eps), eps);
        assert_eq!(st.opt(eps), eps);
    }

    #[test]
    fn inverse_pushes_to_leaves_and_is_involutive() {
        let mut st = QueryStore::new();
        let a = st.label("a");
        let b = st.label("b");
        let ab = st.concat([a, b]);
        let inv = st.inverse(ab);
        // (a/b)⁻ = b⁻/a⁻
        let b_inv = st.inv_label("b");
        let a_inv = st.inv_label("a");
        assert_eq!(inv, st.concat([b_inv, a_inv]));
        assert_eq!(st.inverse(inv), ab, "involution");
        let star = st.star(ab);
        let inv_star = st.inverse(star);
        assert_eq!(st.inverse(inv_star), star);
        assert_eq!(st.render(inv), "b^-/a^-");
    }

    #[test]
    fn optimize_normalises_raw_expressions() {
        let mut st = QueryStore::new();
        let a = st.label("a");
        let eps = st.epsilon();
        // Raw (ε·(a·a))? — not what the smart constructors would build.
        let raw_inner = st.intern_raw(Expr::Concat(vec![a, a]));
        let raw_concat = st.intern_raw(Expr::Concat(vec![eps, raw_inner]));
        let raw_star = st.intern_raw(Expr::Star(raw_concat));
        let raw = st.intern_raw(Expr::Opt(raw_star));
        let opt = st.optimize(raw);
        let aa = st.concat([a, a]);
        assert_eq!(opt, st.star(aa));
        assert_eq!(st.optimize(opt), opt, "idempotent");
    }

    #[test]
    fn nest_rewrites_diagonals() {
        let mut st = QueryStore::new();
        let a = st.label("a");
        let n = st.nest(a);
        assert_eq!(st.nest(n), n, "[[a]] = [a]");
        let t = st.node_test("city");
        assert_eq!(st.nest(t), t, "[?city] = ?city");
        let eps = st.epsilon();
        assert_eq!(st.nest(eps), eps);
        assert_eq!(st.render(n), "[a]");
    }

    #[test]
    fn size_and_render_are_stable() {
        let mut st = QueryStore::new();
        let road = st.label("road");
        let train_inv = st.inv_label("train");
        let alt = st.alt([road, train_inv]);
        let q = st.plus(alt);
        assert_eq!(st.render(q), "((road|train^-))+");
        assert_eq!(st.size(q), 4);
    }
}
