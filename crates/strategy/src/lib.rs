//! # qbe-strategy — pluggable question-selection strategies
//!
//! The paper's central claim is that interactive query learning lives or dies by *which* item
//! the learner asks about next. This crate opens that choice as an API: an interactive session
//! (twig node labelling, path labelling, join pair labelling — any model) exposes its pool of
//! still-informative candidates as model-agnostic [`Candidate`] feature rows, and an
//! object-safe [`Strategy`] picks the next question from that pool. The session owns *what* is
//! informative (pruning, version-space maintenance, consistency); the strategy owns *which*
//! informative item to spend the user's attention on.
//!
//! Four strategies ship with the workspace (see [`STRATEGY_NAMES`]):
//!
//! * [`PaperOrder`] — the first informative candidate in the model's paper order (document
//!   order for twigs, distance order for paths, row-major order for tuple pairs). This is the
//!   executable specification of the paper's baseline behaviour.
//! * [`Random`] — a uniformly random informative candidate from a seeded deterministic stream.
//! * [`MaxCoverage`] — the candidate whose answer is expected to determine the most other
//!   labels (the [`Candidate::coverage`] hint, computed by each model from its indexes).
//! * [`CheapestFirst`] — the candidate with the smallest evaluation/inspection cost
//!   ([`Candidate::cost`]: node depth for twigs, itinerary distance for paths, agreement-set
//!   size for tuple pairs).
//!
//! Sessions are configured through [`SessionConfig`], a builder carrying the strategy, an
//! optional question budget, and the session seed — the one vocabulary accepted everywhere a
//! session is created (the model crates, the `qbe-core` adapters, the `qbe-server` wire
//! protocol's `START … strategy=<name> budget=<n>`).
//!
//! ## Implementing a strategy
//!
//! A strategy sees one [`PoolView`] per round — the informative candidates in paper order plus
//! the number of questions already asked — and returns the index of its pick:
//!
//! ```
//! use qbe_strategy::{Candidate, PoolView, Strategy};
//!
//! /// Ask about the candidate promising the best coverage per unit of cost.
//! #[derive(Debug)]
//! struct BangForBuck;
//!
//! impl Strategy for BangForBuck {
//!     fn name(&self) -> &str {
//!         "bang-for-buck"
//!     }
//!
//!     fn pick(&mut self, pool: &PoolView<'_>) -> Option<usize> {
//!         qbe_strategy::pick_first_max_by(pool.candidates, |c| c.coverage / (1.0 + c.cost))
//!     }
//! }
//!
//! let pool = [
//!     Candidate { coverage: 2.0, cost: 3.0, ..Candidate::default() },
//!     Candidate { coverage: 8.0, cost: 1.0, ..Candidate::default() },
//! ];
//! let mut strategy = BangForBuck;
//! assert_eq!(strategy.pick(&PoolView { asked: 0, candidates: &pool }), Some(1));
//! ```

#![warn(missing_docs)]

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Model-agnostic features of one still-informative candidate question.
///
/// Each interactive session computes one row per informative item, every round, from its own
/// substrate (indexes, version space, workload). All channels are *hints*: they order the
/// strategy's preferences and never affect correctness — a session converges to the same class
/// of queries whichever informative item is asked first.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Candidate {
    /// The model's own flagship heuristic score for this candidate (higher = the model's
    /// preferred strategy would rather ask it): label affinity for twig nodes, version-space
    /// halving for paths and join pairs.
    pub informativeness: f64,
    /// Evaluation/inspection cost hint (lower = cheaper to ask): node depth for twigs, total
    /// itinerary distance for paths, agreement-set size for tuple pairs.
    pub cost: f64,
    /// Expected number of other labels/hypotheses determined by answering (higher = the answer
    /// prunes more): same-label informative nodes for twigs, the smaller side of the
    /// version-space split for paths, lattice equalities removed on a positive answer for join
    /// pairs.
    pub coverage: f64,
    /// Closeness to the session's current hypothesis (higher = more specific): the
    /// agreement-set overlap with the most specific consistent predicate for join pairs; 0
    /// where the model has no such notion.
    pub specificity: f64,
    /// Affinity with queries learned for previous users (the paper's workload prior); 0 when
    /// the session has no workload.
    pub prior: f64,
}

/// One round's view of a session's candidate pool, handed to [`Strategy::pick`].
#[derive(Debug, Clone, Copy)]
pub struct PoolView<'a> {
    /// Questions asked (answers recorded) so far in the session.
    pub asked: usize,
    /// The still-informative candidates, in the model's paper order (document order, distance
    /// order, row-major order). May be empty — sessions also consult the strategy when the
    /// pool has drained (or shrank mid-round under lazy pruning), and a strategy must answer
    /// `None` rather than assume an element exists.
    pub candidates: &'a [Candidate],
}

/// A question-selection policy: given the candidate pool, pick the next question.
///
/// Object-safe by design — sessions hold a `Box<dyn Strategy>`, the server instantiates one
/// per `START strategy=<name>`, and later scheduling or ML-driven policies plug in behind the
/// same seam. `Send` because sessions migrate across worker threads; `Debug` because sessions
/// derive it.
///
/// `pick` returns an index into [`PoolView::candidates`] (`None`, or an out-of-range index,
/// ends the session early — a strategy can refuse to spend more of the user's attention). The
/// same candidate pool is re-presented after answers arrive, shrunk by the session's pruning.
pub trait Strategy: Send + fmt::Debug {
    /// The strategy's stable lower-case name (what `strategy=<name>` selects over the wire and
    /// what per-strategy workload aggregates group by).
    fn name(&self) -> &str;

    /// Pick the index of the next question among `pool.candidates`.
    fn pick(&mut self, pool: &PoolView<'_>) -> Option<usize>;
}

/// Index of the first candidate maximising `key` (ties resolve to the earliest candidate, i.e.
/// the model's paper order). `None` on an empty pool.
pub fn pick_first_max_by<K: PartialOrd>(
    candidates: &[Candidate],
    key: impl Fn(&Candidate) -> K,
) -> Option<usize> {
    let mut best: Option<(usize, K)> = None;
    for (ix, c) in candidates.iter().enumerate() {
        let k = key(c);
        match &best {
            Some((_, b)) if k <= *b => {}
            _ => best = Some((ix, k)),
        }
    }
    best.map(|(ix, _)| ix)
}

/// Index of the last candidate maximising `key` (ties resolve to the latest candidate —
/// matching `Iterator::max_by_key`, which some of the paper-era model heuristics rely on).
/// `None` on an empty pool.
pub fn pick_last_max_by<K: PartialOrd>(
    candidates: &[Candidate],
    key: impl Fn(&Candidate) -> K,
) -> Option<usize> {
    let mut best: Option<(usize, K)> = None;
    for (ix, c) in candidates.iter().enumerate() {
        let k = key(c);
        match &best {
            Some((_, b)) if k < *b => {}
            _ => best = Some((ix, k)),
        }
    }
    best.map(|(ix, _)| ix)
}

/// The paper's baseline: ask about the first informative candidate in the model's paper order.
///
/// This is the executable specification of the behaviour the paper's interactive protocol
/// describes (and, for twig sessions, of the pre-API `DocumentOrder` policy — the regression
/// pins hold it byte-identical).
#[derive(Debug, Clone, Copy, Default)]
pub struct PaperOrder;

impl Strategy for PaperOrder {
    fn name(&self) -> &str {
        "paper-order"
    }

    fn pick(&mut self, pool: &PoolView<'_>) -> Option<usize> {
        if pool.candidates.is_empty() {
            None
        } else {
            Some(0)
        }
    }
}

/// A uniformly random informative candidate from a seeded deterministic stream — the baseline
/// the paper's informed strategies are measured against.
#[derive(Debug, Clone)]
pub struct Random {
    rng: StdRng,
}

impl Random {
    /// A random strategy whose pick stream is fully determined by `seed`.
    pub fn new(seed: u64) -> Random {
        Random {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Strategy for Random {
    fn name(&self) -> &str {
        "random"
    }

    fn pick(&mut self, pool: &PoolView<'_>) -> Option<usize> {
        if pool.candidates.is_empty() {
            None
        } else {
            Some(self.rng.gen_range(0..pool.candidates.len()))
        }
    }
}

/// Ask about the candidate whose answer is expected to determine the most other labels
/// ([`Candidate::coverage`]): the most pruning per unit of user attention. Ties resolve to
/// paper order.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxCoverage;

impl Strategy for MaxCoverage {
    fn name(&self) -> &str {
        "max-coverage"
    }

    fn pick(&mut self, pool: &PoolView<'_>) -> Option<usize> {
        pick_first_max_by(pool.candidates, |c| c.coverage)
    }
}

/// Ask about the candidate with the smallest evaluation/inspection cost
/// ([`Candidate::cost`]): cheap questions first, for latency-sensitive sessions. Ties resolve
/// to paper order.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheapestFirst;

impl Strategy for CheapestFirst {
    fn name(&self) -> &str {
        "cheapest-first"
    }

    fn pick(&mut self, pool: &PoolView<'_>) -> Option<usize> {
        pick_first_max_by(pool.candidates, |c| std::cmp::Reverse(OrdF64(c.cost)))
    }
}

/// Total order over the finite floats the feature channels carry (NaN sorts last).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &OrdF64) -> Option<std::cmp::Ordering> {
        Some(
            self.0
                .partial_cmp(&other.0)
                .unwrap_or(std::cmp::Ordering::Greater),
        )
    }
}

/// The model-agnostic strategies this workspace ships, by [`Strategy::name`] — what a server
/// advertises in its `HELLO` capability line. Model crates additionally accept their
/// paper-era model-specific policy names (`label-affinity`, `halving`, …).
pub const STRATEGY_NAMES: &[&str] = &["paper-order", "random", "max-coverage", "cheapest-first"];

/// Instantiate a shipped strategy by name (see [`STRATEGY_NAMES`]). `seed` feeds the
/// strategies that randomise ([`Random`]); the deterministic ones ignore it.
pub fn strategy_by_name(name: &str, seed: u64) -> Option<Box<dyn Strategy>> {
    match name {
        "paper-order" => Some(Box::new(PaperOrder)),
        "random" => Some(Box::new(Random::new(seed))),
        "max-coverage" => Some(Box::new(MaxCoverage)),
        "cheapest-first" => Some(Box::new(CheapestFirst)),
        _ => None,
    }
}

/// A strategy name [`SessionConfig::strategy_named`] did not recognise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownStrategy(pub String);

impl fmt::Display for UnknownStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown strategy {:?}, expected one of: {}",
            self.0,
            STRATEGY_NAMES.join("|")
        )
    }
}

impl std::error::Error for UnknownStrategy {}

/// How a [`SessionConfig`] names its strategy before the session resolves it.
#[derive(Debug)]
enum StrategyChoice {
    /// Use the model's flagship policy (what the paper's experiments led with).
    Default,
    /// A shipped strategy by name, instantiated with the session seed at resolve time.
    Named(String),
    /// A ready-made strategy object (possibly user-defined).
    Boxed(Box<dyn Strategy>),
}

/// Builder for everything an interactive session is configured with: the question-selection
/// strategy, an optional question budget, and the session seed.
///
/// Accepted everywhere a session is created — `TwigSession::with_config`,
/// `PathSession::with_config`, the relational `InteractiveSession::with_config`, the
/// `qbe-core` adapters, and (via `strategy=<name> budget=<n>` parameters) the `qbe-server`
/// `START` command.
///
/// ```
/// use qbe_strategy::{MaxCoverage, SessionConfig};
///
/// // A session capped at 40 questions, picking by expected coverage.
/// let config = SessionConfig::new()
///     .seed(7)
///     .budget(40)
///     .strategy(Box::new(MaxCoverage));
///
/// // Shipped strategies can also be selected by wire name; unknown names are rejected.
/// let by_name = SessionConfig::new().strategy_named("cheapest-first").unwrap();
/// assert!(SessionConfig::new().strategy_named("psychic").is_err());
///
/// // Sessions resolve the config against their model's flagship default.
/// let resolved = by_name.resolve(|seed| qbe_strategy::strategy_by_name("random", seed).unwrap());
/// assert_eq!(resolved.strategy.name(), "cheapest-first");
/// assert_eq!(config.resolve(|_| unreachable!()).budget, Some(40));
/// ```
#[derive(Debug)]
pub struct SessionConfig {
    strategy: StrategyChoice,
    budget: Option<usize>,
    seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig::new()
    }
}

impl SessionConfig {
    /// The default configuration: the model's flagship strategy, no budget, seed 0.
    pub fn new() -> SessionConfig {
        SessionConfig {
            strategy: StrategyChoice::Default,
            budget: None,
            seed: 0,
        }
    }

    /// Seed for the session's (and a randomised strategy's) deterministic choices.
    pub fn seed(mut self, seed: u64) -> SessionConfig {
        self.seed = seed;
        self
    }

    /// Cap the number of questions the session may ask; once reached, the session completes
    /// with its current hypothesis. No cap by default.
    pub fn budget(mut self, questions: usize) -> SessionConfig {
        self.budget = Some(questions);
        self
    }

    /// Use a concrete strategy object (one of the shipped ones, or user-defined).
    pub fn strategy(mut self, strategy: Box<dyn Strategy>) -> SessionConfig {
        self.strategy = StrategyChoice::Boxed(strategy);
        self
    }

    /// Use a shipped strategy by wire name (see [`STRATEGY_NAMES`]). The name is validated
    /// eagerly; the strategy is instantiated with the final seed when the session resolves the
    /// config, so `strategy_named` and [`seed`](Self::seed) compose in either order.
    pub fn strategy_named(mut self, name: &str) -> Result<SessionConfig, UnknownStrategy> {
        if !STRATEGY_NAMES.contains(&name) {
            return Err(UnknownStrategy(name.to_string()));
        }
        self.strategy = StrategyChoice::Named(name.to_string());
        Ok(self)
    }

    /// Resolve the builder into the parts a session stores, instantiating named strategies
    /// with the configured seed and falling back to the model's flagship `default` when no
    /// strategy was chosen.
    pub fn resolve(self, default: impl FnOnce(u64) -> Box<dyn Strategy>) -> ResolvedConfig {
        let strategy = match self.strategy {
            StrategyChoice::Default => default(self.seed),
            StrategyChoice::Named(name) => strategy_by_name(&name, self.seed)
                .expect("strategy_named validated the name eagerly"),
            StrategyChoice::Boxed(s) => s,
        };
        ResolvedConfig {
            strategy,
            budget: self.budget,
            seed: self.seed,
        }
    }
}

/// A [`SessionConfig`] with its strategy instantiated — what sessions actually store.
#[derive(Debug)]
pub struct ResolvedConfig {
    /// The question-selection policy the session consults every round.
    pub strategy: Box<dyn Strategy>,
    /// Question cap, if any.
    pub budget: Option<usize>,
    /// The session seed.
    pub seed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(rows: &[Candidate]) -> PoolView<'_> {
        PoolView {
            asked: 0,
            candidates: rows,
        }
    }

    fn c(informativeness: f64, cost: f64, coverage: f64) -> Candidate {
        Candidate {
            informativeness,
            cost,
            coverage,
            ..Candidate::default()
        }
    }

    #[test]
    fn paper_order_picks_the_first_candidate() {
        let rows = [c(0.0, 5.0, 1.0), c(9.0, 0.0, 9.0)];
        assert_eq!(PaperOrder.pick(&pool(&rows)), Some(0));
        assert_eq!(PaperOrder.pick(&pool(&[])), None);
    }

    #[test]
    fn max_coverage_and_cheapest_first_break_ties_towards_paper_order() {
        let rows = [c(0.0, 2.0, 7.0), c(0.0, 2.0, 7.0), c(0.0, 3.0, 1.0)];
        assert_eq!(MaxCoverage.pick(&pool(&rows)), Some(0));
        assert_eq!(CheapestFirst.pick(&pool(&rows)), Some(0));
        let rows = [c(0.0, 4.0, 1.0), c(0.0, 1.0, 9.0)];
        assert_eq!(MaxCoverage.pick(&pool(&rows)), Some(1));
        assert_eq!(CheapestFirst.pick(&pool(&rows)), Some(1));
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_range() {
        let rows = vec![Candidate::default(); 17];
        let picks = |seed| {
            let mut s = Random::new(seed);
            (0..32)
                .map(|_| s.pick(&pool(&rows)).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(picks(3), picks(3));
        assert_ne!(picks(3), picks(4), "different seeds diverge");
        assert!(picks(3).iter().all(|&ix| ix < rows.len()));
        assert_eq!(Random::new(0).pick(&pool(&[])), None);
    }

    #[test]
    fn tie_helpers_resolve_first_and_last() {
        let rows = [c(1.0, 0.0, 0.0), c(1.0, 0.0, 0.0), c(0.0, 0.0, 0.0)];
        assert_eq!(pick_first_max_by(&rows, |r| r.informativeness), Some(0));
        assert_eq!(pick_last_max_by(&rows, |r| r.informativeness), Some(1));
        assert_eq!(pick_first_max_by(&[], |r| r.informativeness), None);
    }

    #[test]
    fn names_round_trip_through_the_registry() {
        for &name in STRATEGY_NAMES {
            let strategy = strategy_by_name(name, 1).expect("every listed name resolves");
            assert_eq!(strategy.name(), name);
        }
        assert!(strategy_by_name("psychic", 1).is_none());
    }

    #[test]
    fn config_resolves_named_strategies_with_the_final_seed() {
        let resolved = SessionConfig::new()
            .strategy_named("random")
            .unwrap()
            .seed(9)
            .budget(5)
            .resolve(|_| unreachable!("a strategy was chosen"));
        assert_eq!(resolved.strategy.name(), "random");
        assert_eq!(resolved.budget, Some(5));
        assert_eq!(resolved.seed, 9);
        let defaulted = SessionConfig::new().seed(4).resolve(|seed| {
            assert_eq!(seed, 4, "the default sees the session seed");
            Box::new(PaperOrder)
        });
        assert_eq!(defaulted.strategy.name(), "paper-order");
        assert_eq!(defaulted.budget, None);
    }
}
