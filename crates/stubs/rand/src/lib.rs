//! Offline stand-in for the crates.io [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to a crates registry, so this crate
//! implements — deterministically and dependency-free — exactly the subset of
//! the `rand` 0.8 API the qbe workspace uses:
//!
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`] (SplitMix64 core);
//! * [`Rng::gen_range`] over half-open and inclusive integer/float ranges;
//! * [`Rng::gen_bool`];
//! * [`seq::SliceRandom::choose`] and [`seq::SliceRandom::shuffle`]
//!   (Fisher–Yates).
//!
//! Streams are fully determined by the seed, which is all the workspace needs:
//! every generator in the qbe crates is seeded explicitly for reproducible
//! experiments. The numeric streams differ from the real `rand` crate's, but
//! no test or experiment depends on the exact values, only on determinism.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// A source of random `u64`s. Mirror of `rand_core::RngCore` (subset).
pub trait RngCore {
    /// Returns the next pseudo-random `u64` in the stream.
    fn next_u64(&mut self) -> u64;
}

/// A random generator constructible from a seed. Mirror of `rand_core::SeedableRng` (subset).
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types with a uniform sampling rule. Mirror of `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Range shapes accepted by [`Rng::gen_range`].
///
/// The single blanket impl per range shape (rather than one impl per element
/// type) is what lets integer-literal defaulting pick `i32` for calls like
/// `rng.gen_range(0..4)`, exactly as the real `rand` crate does.
pub trait SampleRange<T> {
    /// Draws a single uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

macro_rules! impl_int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + unit * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_sample_uniform!(f32, f64);

/// Types producible by [`Rng::gen`]. Mirror of rand's `Standard` distribution.
pub trait StandardSample {
    /// Draws a value from the type's standard distribution.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Convenience sampling methods available on every [`RngCore`].
/// Mirror of `rand::Rng` (subset).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`
    /// (for floats: uniform in `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Returns a uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators. Mirror of `rand::rngs` (subset).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    ///
    /// Unlike the real `StdRng` (ChaCha-based) this is not cryptographically
    /// secure — the qbe workspace only uses it to generate reproducible test
    /// and benchmark data.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): passes BigCrush, one u64 of state.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

/// Sequence-related helpers. Mirror of `rand::seq` (subset).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods for slices: random element choice and shuffling.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Returns a uniformly chosen reference, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17i32);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5..=9usize);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(1.0..2.0f64);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements_eventually() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = [1, 2, 3, 4];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), v.len());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
