//! Offline stand-in for the crates.io [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build environment has no access to a crates registry, so this crate
//! implements the subset of the proptest 1.x API that the qbe workspace's
//! property suites use:
//!
//! * the [`proptest!`] macro (with an optional inner
//!   `#![proptest_config(..)]` attribute) expanding each
//!   `fn case(x in strategy, ..) { body }` into a `#[test]` that samples the
//!   strategies for a configurable number of cases;
//! * [`prop_assert!`] / [`prop_assert_eq!`], which report the failing case
//!   instead of panicking mid-sample;
//! * strategies: integer ranges, [`strategy::Just`], [`prop_oneof!`] unions
//!   and [`collection::vec`] (nested freely);
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Differences from real proptest, acceptable for this workspace: sampling is
//! derived from a fixed per-test seed (fully deterministic, no persistence
//! file), failing inputs are *reported* but not *shrunk*, and the default
//! case count is 64 rather than 256.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and the combinators the workspace uses.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    ///
    /// Unlike real proptest there is no value-tree/shrinking machinery: a
    /// strategy is just a deterministic sampler over a [`TestRng`] stream.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value from the strategy.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Erases the concrete strategy type, for heterogeneous collections
        /// such as the arms of [`prop_oneof!`](crate::prop_oneof).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy, as produced by [`Strategy::boxed`].
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn new_value(&self, rng: &mut TestRng) -> V {
            (**self).new_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            (**self).new_value(rng)
        }
    }

    /// A strategy that always yields a clone of one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between several strategies of the same value type.
    /// Built by the [`prop_oneof!`](crate::prop_oneof) macro.
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Creates a union over `arms`; panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn new_value(&self, rng: &mut TestRng) -> V {
            let ix = rng.below(self.arms.len() as u64) as usize;
            self.arms[ix].new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The admissible lengths of a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy yielding `Vec`s of values drawn from `element`, with a length
    /// drawn from `size`. Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The runner configuration and error plumbing used by [`proptest!`](crate::proptest).

    /// How a property suite runs. Mirror of `proptest::test_runner::ProptestConfig` (subset).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` samples per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the offline suites fast
            // while still exercising a meaningful spread of inputs.
            ProptestConfig { cases: 64 }
        }
    }

    /// A property violation, carried back to the runner by `prop_assert!`.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The deterministic generator driving all strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is fully determined by `seed`.
        pub fn seeded(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next raw `u64` of the stream.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0) is an empty range");
            self.next_u64() % bound
        }
    }

    /// Stable per-test seed derived from the test's name (FNV-1a), so each
    /// property explores its own deterministic input stream.
    pub fn seed_for(test_name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Succeeds, or returns a [`test_runner::TestCaseError`] describing the
/// failing condition (with an optional formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Inequality variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Uniform choice among strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests. Mirrors the `proptest!` surface the workspace
/// uses: an optional `#![proptest_config(..)]` header followed by `#[test]`
/// functions whose arguments are drawn from strategies via `name in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::seeded($crate::test_runner::seed_for(stringify!($name)));
            for case in 0..config.cases {
                let result = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(&($strategy), &mut rng);
                    )+
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(err) = result {
                    panic!(
                        "property `{}` failed at case {}/{}:\n{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::seeded(1);
        for _ in 0..1000 {
            let v = (3usize..9).new_value(&mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::seeded(2);
        let strat = crate::collection::vec(0u8..10, 2..5);
        for _ in 0..200 {
            let v = strat.new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = TestRng::seeded(3);
        let strat = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(strat.new_value(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro machinery itself: args bind, asserts pass, cases loop.
        #[test]
        fn macro_binds_arguments(a in 0u32..10, b in 0u32..10) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(a + b, b + a);
        }
    }

    #[test]
    fn failing_property_panics_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u8..5) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        let err = std::panic::catch_unwind(always_fails).unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .expect("panic payload is a String");
        assert!(
            msg.contains("always_fails"),
            "unexpected panic message: {msg}"
        );
    }
}
