//! Offline stand-in for the crates.io [`criterion`](https://crates.io/crates/criterion) crate.
//!
//! The build environment has no access to a crates registry, so this crate
//! implements the subset of the criterion 0.5 API the qbe benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`], [`criterion_group!`] and [`criterion_main!`] — backed by a
//! simple but real wall-clock harness: each benchmark is warmed up, then
//! timed over batches until a fixed measurement budget is spent, and the
//! median per-iteration time is printed.
//!
//! There is no statistical analysis, HTML report or comparison with saved
//! baselines. The goal is that `cargo bench` runs the full suite and prints
//! honest per-iteration timings; trajectory tooling parses that output.
//!
//! `--smoke` (or env `QBE_BENCH_SMOKE=1`) shrinks the measurement budget so a
//! full `cargo bench` sweep finishes in seconds; criterion's own CLI flags
//! (`--bench`, filters) are accepted and ignored where harmless.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group. Mirror of criterion's `BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] performs the measurement.
pub struct Bencher<'a> {
    budget: Duration,
    samples: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Measures `routine`, recording the median per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + calibration: how many iterations fit in ~1/8 of the budget?
        let calibration_deadline = self.budget / 8;
        let mut iters_per_batch: u64 = 0;
        let start = Instant::now();
        while start.elapsed() < calibration_deadline || iters_per_batch == 0 {
            black_box(routine());
            iters_per_batch += 1;
        }

        // Measurement: several batches of that size, keep per-iteration times.
        let mut batch_times = Vec::new();
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.budget && batch_times.len() < 64 {
            let batch_start = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(routine());
            }
            batch_times.push(batch_start.elapsed() / iters_per_batch.max(1) as u32);
        }
        batch_times.sort_unstable();
        self.samples.push(batch_times[batch_times.len() / 2]);
    }
}

fn format_time(t: Duration) -> String {
    let nanos = t.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// The benchmark harness entry point. Mirror of criterion's `Criterion`.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke = std::env::args().any(|a| a == "--smoke")
            || std::env::var_os("QBE_BENCH_SMOKE").is_some_and(|v| v != "0");
        let budget = if smoke {
            Duration::from_millis(20)
        } else {
            Duration::from_millis(400)
        };
        Criterion { budget }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut samples = Vec::new();
        f(&mut Bencher {
            budget: self.budget,
            samples: &mut samples,
        });
        report(id, &samples);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Final hook invoked by [`criterion_main!`]; a no-op in this stand-in.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is budget-based, so the
    /// requested sample count is not used.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark of the group with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let mut samples = Vec::new();
        f(
            &mut Bencher {
                budget: self.criterion.budget,
                samples: &mut samples,
            },
            input,
        );
        report(&format!("{}/{}", self.name, id.name), &samples);
        self
    }

    /// Runs one benchmark of the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut samples = Vec::new();
        f(&mut Bencher {
            budget: self.criterion.budget,
            samples: &mut samples,
        });
        report(&format!("{}/{}", self.name, id.into().0), &samples);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Anything acceptable as a benchmark name within a group.
pub struct BenchId(String);

impl From<&str> for BenchId {
    fn from(s: &str) -> Self {
        BenchId(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> Self {
        BenchId(s)
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> Self {
        BenchId(id.name)
    }
}

fn report(id: &str, samples: &[Duration]) {
    match samples {
        [] => println!("{id:<50} (no samples)"),
        [t] => println!("{id:<50} time: {}", format_time(*t)),
        many => {
            let mut sorted: Vec<_> = many.to_vec();
            sorted.sort_unstable();
            println!(
                "{id:<50} time: [{} {} {}]",
                format_time(sorted[0]),
                format_time(sorted[sorted.len() / 2]),
                format_time(sorted[sorted.len() - 1]),
            );
        }
    }
}

/// Declares a benchmark group function invoking each target with a shared
/// [`Criterion`]. Only the positional form is supported.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `fn main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_sample() {
        let mut samples = Vec::new();
        let mut b = Bencher {
            budget: Duration::from_millis(5),
            samples: &mut samples,
        };
        let mut counter = 0u64;
        b.iter(|| counter += 1);
        assert_eq!(samples.len(), 1);
        assert!(counter > 0);
    }

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("learn", 8).name, "learn/8");
        assert_eq!(BenchmarkId::from_parameter(0.05).name, "0.05");
    }

    #[test]
    fn format_time_picks_sane_units() {
        assert_eq!(format_time(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_time(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(format_time(Duration::from_millis(7)), "7.00 ms");
        assert_eq!(format_time(Duration::from_secs(2)), "2.00 s");
    }

    criterion_group!(smoke_group, smoke_target);

    fn smoke_target(c: &mut Criterion) {
        c.budget = Duration::from_millis(2);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grp");
        group.bench_with_input(BenchmarkId::new("sq", 3), &3u32, |b, &x| b.iter(|| x * x));
        group.finish();
    }

    #[test]
    fn groups_run_end_to_end() {
        smoke_group();
    }
}
