//! Twig query containment and equivalence via homomorphisms.
//!
//! For the twig fragment, `Q1 ⊆ Q2` (every node selected by `Q1` on any document is selected by
//! `Q2`) is implied by the existence of a *homomorphism* from `Q2` into `Q1`: a mapping of query
//! nodes that sends the root to the root (respecting the root axis), the selected node to the
//! selected node, child edges to child edges, descendant edges to ancestor/descendant pairs, and
//! node tests to node tests they generalise. The check is sound for the whole fragment and
//! complete for the wildcard-free sub-fragment (the classical XP{/,//,[]} result); the learner
//! and the experiments only rely on the sound direction plus empirical equivalence testing.

use crate::query::{Axis, QNodeId, TwigQuery};
use qbe_xml::XmlTree;
use std::collections::BTreeSet;

/// Whether there is a containment-witnessing homomorphism from `general` into `specific`,
/// i.e. evidence that `specific ⊆ general`.
pub fn homomorphism_exists(general: &TwigQuery, specific: &TwigQuery) -> bool {
    // Candidate images for the root of `general`.
    let root_candidates: Vec<QNodeId> = match general.axis(QNodeId::ROOT) {
        Axis::Child => {
            if specific.axis(QNodeId::ROOT) == Axis::Child {
                vec![QNodeId::ROOT]
            } else {
                // `general` pins its root to the document root element but `specific` does not,
                // so some document selected by `specific` may not match.
                vec![]
            }
        }
        Axis::Descendant => specific.node_ids().collect(),
    };
    root_candidates
        .into_iter()
        .any(|u| maps_to(general, specific, QNodeId::ROOT, u))
}

fn maps_to(general: &TwigQuery, specific: &TwigQuery, x: QNodeId, u: QNodeId) -> bool {
    // Selected nodes must correspond.
    if x == general.selected() && u != specific.selected() {
        return false;
    }
    if !general.test(x).generalises(specific.test(u)) {
        return false;
    }
    for &y in general.children(x) {
        let candidates: Vec<QNodeId> = match general.axis(y) {
            Axis::Child => specific
                .children(u)
                .iter()
                .copied()
                .filter(|v| specific.axis(*v) == Axis::Child)
                .collect(),
            Axis::Descendant => proper_descendants(specific, u),
        };
        if !candidates
            .into_iter()
            .any(|v| maps_to(general, specific, y, v))
        {
            return false;
        }
    }
    true
}

fn proper_descendants(q: &TwigQuery, node: QNodeId) -> Vec<QNodeId> {
    let mut out = Vec::new();
    let mut stack: Vec<QNodeId> = q.children(node).to_vec();
    while let Some(n) = stack.pop() {
        out.push(n);
        stack.extend(q.children(n).iter().copied());
    }
    out
}

/// Whether `sub ⊆ sup` as witnessed by a homomorphism (sound; complete without wildcards).
pub fn contained_in(sub: &TwigQuery, sup: &TwigQuery) -> bool {
    homomorphism_exists(sup, sub)
}

/// Whether the two queries are equivalent as witnessed by homomorphisms in both directions.
pub fn equivalent(a: &TwigQuery, b: &TwigQuery) -> bool {
    contained_in(a, b) && contained_in(b, a)
}

/// Empirical equivalence: the two queries select the same nodes on every provided document.
/// Used by the experiments to decide "the learner found the goal query" the way the paper does —
/// relative to the benchmark documents.
pub fn equivalent_on(a: &TwigQuery, b: &TwigQuery, docs: &[XmlTree]) -> bool {
    docs.iter().all(|d| {
        let sa: BTreeSet<_> = crate::eval::select(a, d);
        let sb: BTreeSet<_> = crate::eval::select(b, d);
        sa == sb
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xpath::parse_xpath;
    use qbe_xml::TreeBuilder;

    fn q(s: &str) -> TwigQuery {
        parse_xpath(s).unwrap()
    }

    #[test]
    fn query_is_contained_in_itself() {
        for s in [
            "//person",
            "/site/people/person[name]/emailaddress",
            "//a[b][.//c]/d",
        ] {
            let query = q(s);
            assert!(contained_in(&query, &query), "{s} not contained in itself");
            assert!(equivalent(&query, &query));
        }
    }

    #[test]
    fn adding_a_filter_specialises() {
        let general = q("//person/name");
        let specific = q("//person[emailaddress]/name");
        assert!(contained_in(&specific, &general));
        assert!(!contained_in(&general, &specific));
    }

    #[test]
    fn child_axis_is_contained_in_descendant_axis() {
        let child = q("/site/people/person");
        let desc = q("/site//person");
        assert!(contained_in(&child, &desc));
        assert!(!contained_in(&desc, &child));
    }

    #[test]
    fn label_is_contained_in_wildcard() {
        let label = q("/site/people");
        let wild = q("/site/*");
        assert!(contained_in(&label, &wild));
        assert!(!contained_in(&wild, &label));
    }

    #[test]
    fn absolute_is_contained_in_descendant_rooted() {
        let absolute = q("/site/people/person");
        let floating = q("//person");
        assert!(contained_in(&absolute, &floating));
        assert!(!contained_in(&floating, &absolute));
    }

    #[test]
    fn unrelated_queries_are_incomparable() {
        let a = q("//person/name");
        let b = q("//item/name");
        assert!(!contained_in(&a, &b));
        assert!(!contained_in(&b, &a));
    }

    #[test]
    fn selected_nodes_must_correspond() {
        // Same shape, different selected node.
        let selects_person = q("//person[name]");
        let selects_name = q("//person/name");
        assert!(!contained_in(&selects_person, &selects_name));
        assert!(!contained_in(&selects_name, &selects_person));
    }

    #[test]
    fn nested_filter_containment() {
        let deep = q("//person[profile[age]]/name");
        let shallow = q("//person[profile]/name");
        assert!(contained_in(&deep, &shallow));
        assert!(!contained_in(&shallow, &deep));
    }

    #[test]
    fn containment_is_transitive_on_examples() {
        let a = q("/site/people/person[name][profile]/emailaddress");
        let b = q("/site/people/person[name]/emailaddress");
        let c = q("//person/emailaddress");
        assert!(contained_in(&a, &b));
        assert!(contained_in(&b, &c));
        assert!(contained_in(&a, &c));
    }

    #[test]
    fn homomorphic_containment_agrees_with_evaluation() {
        let doc = TreeBuilder::new("site")
            .open("people")
            .open("person")
            .leaf("name")
            .leaf("emailaddress")
            .close()
            .open("person")
            .leaf("name")
            .close()
            .close()
            .build();
        let specific = q("//person[emailaddress]/name");
        let general = q("//person/name");
        let s = crate::eval::select(&specific, &doc);
        let g = crate::eval::select(&general, &doc);
        assert!(s.is_subset(&g));
        assert!(contained_in(&specific, &general));
        assert!(equivalent_on(
            &general,
            &q("/site/people/person/name"),
            &[doc]
        ));
    }
}
