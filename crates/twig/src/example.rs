//! Example representation for twig-query learning: documents with annotated nodes.
//!
//! In the learning framework of the paper, a *positive example* is an XML document together
//! with a node the goal query should select, and a *negative example* is a document with a node
//! the goal query must not select. Annotations typically live on a handful of shared documents,
//! so the [`ExampleSet`] stores documents once and annotations as `(document index, node)` pairs.

use crate::eval;
use crate::eval_indexed::{self, EvalCache};
use crate::query::TwigQuery;
use qbe_xml::{NodeId, NodeIndex, XmlTree};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::cell::RefCell;

/// One node annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Annotation {
    /// Index of the document inside the owning [`ExampleSet`].
    pub doc: usize,
    /// The annotated node.
    pub node: NodeId,
    /// `true` for a positive example, `false` for a negative one.
    pub positive: bool,
}

/// A set of annotated documents.
#[derive(Debug, Clone, Default)]
pub struct ExampleSet {
    docs: Vec<XmlTree>,
    annotations: Vec<Annotation>,
    /// Lazily built evaluation state per document (its [`NodeIndex`] and sub-twig memo).
    /// Documents are append-only and immutable once added, so the state never invalidates;
    /// the consistency checkers call [`Self::consistent_with`] for thousands of candidate
    /// queries against the same documents, which is exactly the reuse the indexed engine
    /// is built for. Interior mutability keeps `consistent_with(&self)`.
    eval_state: RefCell<Vec<Option<(NodeIndex, EvalCache)>>>,
}

impl ExampleSet {
    /// Create an empty example set.
    pub fn new() -> ExampleSet {
        ExampleSet::default()
    }

    /// Add a document and return its index.
    pub fn add_document(&mut self, doc: XmlTree) -> usize {
        self.docs.push(doc);
        self.eval_state.borrow_mut().push(None);
        self.docs.len() - 1
    }

    /// Annotate a node of a previously added document.
    pub fn annotate(&mut self, doc: usize, node: NodeId, positive: bool) {
        assert!(doc < self.docs.len(), "document index out of range");
        assert!(
            node.index() < self.docs[doc].size(),
            "node id out of range for document"
        );
        self.annotations.push(Annotation {
            doc,
            node,
            positive,
        });
    }

    /// Shorthand for a positive annotation.
    pub fn add_positive(&mut self, doc: usize, node: NodeId) {
        self.annotate(doc, node, true);
    }

    /// Shorthand for a negative annotation.
    pub fn add_negative(&mut self, doc: usize, node: NodeId) {
        self.annotate(doc, node, false);
    }

    /// The stored documents.
    pub fn documents(&self) -> &[XmlTree] {
        &self.docs
    }

    /// All annotations in insertion order.
    pub fn annotations(&self) -> &[Annotation] {
        &self.annotations
    }

    /// Positive examples as `(document, node)` pairs.
    pub fn positives(&self) -> Vec<(&XmlTree, NodeId)> {
        self.annotations
            .iter()
            .filter(|a| a.positive)
            .map(|a| (&self.docs[a.doc], a.node))
            .collect()
    }

    /// Negative examples as `(document, node)` pairs.
    pub fn negatives(&self) -> Vec<(&XmlTree, NodeId)> {
        self.annotations
            .iter()
            .filter(|a| !a.positive)
            .map(|a| (&self.docs[a.doc], a.node))
            .collect()
    }

    /// Number of annotations.
    pub fn len(&self) -> usize {
        self.annotations.len()
    }

    /// Whether the set has no annotations.
    pub fn is_empty(&self) -> bool {
        self.annotations.is_empty()
    }

    /// Run `f` against one document's lazily built, persistent evaluation state. Used by the
    /// consistency learners (same crate) so every checker over this example set shares the
    /// indexes and sub-twig memos.
    pub(crate) fn with_eval_state<R>(
        &self,
        doc: usize,
        f: impl FnOnce(&XmlTree, &NodeIndex, &mut EvalCache) -> R,
    ) -> R {
        let mut state = self.eval_state.borrow_mut();
        let doc_ref = &self.docs[doc];
        let (index, cache) =
            state[doc].get_or_insert_with(|| (NodeIndex::build(doc_ref), EvalCache::new()));
        f(doc_ref, index, cache)
    }

    /// Whether a query is consistent with the annotations: selects every positive node and no
    /// negative node.
    ///
    /// Each annotated document is evaluated **once** per call through the indexed engine, over
    /// an index and sub-twig memo that persist across calls — the consistency checkers call
    /// this for thousands of candidate queries against unchanging documents, so both the
    /// per-annotation re-evaluation and the per-call index rebuild were dominant costs.
    pub fn consistent_with(&self, query: &TwigQuery) -> bool {
        (0..self.docs.len()).all(|doc_ix| {
            let labels: Vec<(NodeId, bool)> = self
                .annotations
                .iter()
                .filter(|a| a.doc == doc_ix)
                .map(|a| (a.node, a.positive))
                .collect();
            labels.is_empty()
                || self.with_eval_state(doc_ix, |doc, index, cache| {
                    eval_indexed::classifies_with(query, doc, index, cache, labels)
                })
        })
    }

    /// Build an example set by annotating nodes according to a hidden *goal query*, as the
    /// simulated user of the experiments does: up to `max_positive` selected nodes and up to
    /// `max_negative` non-selected nodes are annotated per document, chosen pseudo-randomly
    /// with the given seed.
    pub fn from_goal(
        goal: &TwigQuery,
        docs: Vec<XmlTree>,
        max_positive: usize,
        max_negative: usize,
        seed: u64,
    ) -> ExampleSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = ExampleSet::new();
        for doc in docs {
            let selected = eval::select(goal, &doc);
            let mut pos: Vec<NodeId> = selected.iter().copied().collect();
            let mut neg: Vec<NodeId> = doc.node_ids().filter(|n| !selected.contains(n)).collect();
            pos.shuffle(&mut rng);
            neg.shuffle(&mut rng);
            let doc_ix = set.add_document(doc);
            for &n in pos.iter().take(max_positive) {
                set.add_positive(doc_ix, n);
            }
            for &n in neg.iter().take(max_negative) {
                set.add_negative(doc_ix, n);
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xpath::parse_xpath;
    use qbe_xml::TreeBuilder;

    fn doc() -> XmlTree {
        TreeBuilder::new("site")
            .open("people")
            .open("person")
            .leaf("name")
            .close()
            .open("person")
            .leaf("name")
            .leaf("emailaddress")
            .close()
            .close()
            .build()
    }

    #[test]
    fn positives_and_negatives_are_partitioned() {
        let d = doc();
        let person = d.nodes_with_label("person")[0];
        let name = d.nodes_with_label("name")[0];
        let mut set = ExampleSet::new();
        let ix = set.add_document(d);
        set.add_positive(ix, person);
        set.add_negative(ix, name);
        assert_eq!(set.positives().len(), 1);
        assert_eq!(set.negatives().len(), 1);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn consistency_check_matches_evaluation() {
        let d = doc();
        let persons = d.nodes_with_label("person");
        let names = d.nodes_with_label("name");
        let mut set = ExampleSet::new();
        let ix = set.add_document(d);
        set.add_positive(ix, persons[0]);
        set.add_negative(ix, names[0]);
        let q_person = parse_xpath("//person").unwrap();
        let q_name = parse_xpath("//name").unwrap();
        assert!(set.consistent_with(&q_person));
        assert!(!set.consistent_with(&q_name));
    }

    #[test]
    fn from_goal_produces_consistent_annotations() {
        let goal = parse_xpath("//person[emailaddress]").unwrap();
        let set = ExampleSet::from_goal(&goal, vec![doc()], 2, 3, 7);
        assert!(set.consistent_with(&goal));
        assert!(!set.positives().is_empty());
        assert!(!set.negatives().is_empty());
    }

    #[test]
    #[should_panic]
    fn annotating_unknown_document_panics() {
        let mut set = ExampleSet::new();
        set.add_positive(0, NodeId::from_index(0));
    }

    #[test]
    #[should_panic]
    fn annotating_out_of_range_node_panics() {
        let mut set = ExampleSet::new();
        let ix = set.add_document(TreeBuilder::new("a").build());
        set.add_positive(ix, NodeId::from_index(10));
    }
}
