//! An XPathMark-like query suite over the XMark-like documents.
//!
//! XPathMark [Franceschet, XSym 2005] defines XPath queries over XMark-generated data; the paper
//! uses it to measure which fraction of realistic queries the twig learner can recover (it
//! reports 15% for the algorithms of Staworko & Wieczorek). The original suite relies on XMark
//! features our scaled-down generator does not reproduce verbatim (keyword markup inside text,
//! attribute-valued joins), so this module defines a suite **in the same spirit**: one entry per
//! XPathMark-A-style query plus representatives of the features that make queries fall outside
//! the twig fragment (disjunction, negation, value comparisons, attributes, sibling/parent axes,
//! aggregation, id dereference). Each entry records *why* it is or is not twig-expressible, which
//! is exactly the classification the coverage experiment (E7) reports.

use crate::query::TwigQuery;
use crate::xpath::parse_xpath;

/// Why a benchmark query is, or is not, expressible as a twig query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expressibility {
    /// Expressible in the twig fragment (child/descendant axes, label tests, filters).
    Twig,
    /// Needs disjunction in predicates (`or`).
    RequiresDisjunction,
    /// Needs negation (`not(...)`).
    RequiresNegation,
    /// Needs value-based comparison of text content.
    RequiresValueComparison,
    /// Needs attribute access.
    RequiresAttributes,
    /// Needs reverse or sibling axes.
    RequiresOtherAxes,
    /// Needs aggregation (`count`, `sum`, position arithmetic).
    RequiresAggregation,
    /// Needs joining on identifiers across the document.
    RequiresJoin,
}

impl Expressibility {
    /// Whether the query belongs to the twig fragment.
    pub fn is_twig(self) -> bool {
        matches!(self, Expressibility::Twig)
    }
}

/// One benchmark query.
#[derive(Debug, Clone, Copy)]
pub struct BenchmarkQuery {
    /// Identifier (mirrors the XPathMark naming style).
    pub id: &'static str,
    /// What the query asks for.
    pub description: &'static str,
    /// XPath text. For twig-expressible queries this parses with [`parse_xpath`].
    pub xpath: &'static str,
    /// Classification.
    pub expressibility: Expressibility,
}

impl BenchmarkQuery {
    /// Parse the query as a twig, when expressible.
    pub fn as_twig(&self) -> Option<TwigQuery> {
        if self.expressibility.is_twig() {
            Some(parse_xpath(self.xpath).expect("twig-expressible benchmark queries must parse"))
        } else {
            None
        }
    }
}

/// The benchmark suite (20 queries, mirroring XMark's 20-query structure).
pub fn suite() -> Vec<BenchmarkQuery> {
    use Expressibility::*;
    vec![
        BenchmarkQuery {
            id: "A1",
            description: "annotation text of closed auctions, absolute path",
            xpath: "/site/closed_auctions/closed_auction/annotation/description/text",
            expressibility: Twig,
        },
        BenchmarkQuery {
            id: "A2",
            description: "annotation text of closed auctions, descendant shortcut",
            xpath: "//closed_auction//text",
            expressibility: Twig,
        },
        BenchmarkQuery {
            id: "A3",
            description: "annotation text, mixed absolute/descendant",
            xpath: "/site/closed_auctions/closed_auction//text",
            expressibility: Twig,
        },
        BenchmarkQuery {
            id: "A4",
            description: "date of closed auctions with an annotated description",
            xpath: "/site/closed_auctions/closed_auction[annotation/description/text]/date",
            expressibility: Twig,
        },
        BenchmarkQuery {
            id: "A5",
            description: "date of closed auctions with any descendant text",
            xpath: "/site/closed_auctions/closed_auction[.//text]/date",
            expressibility: Twig,
        },
        BenchmarkQuery {
            id: "A6",
            description: "names of persons with both gender and age in their profile",
            xpath: "/site/people/person[profile/gender][profile/age]/name",
            expressibility: Twig,
        },
        BenchmarkQuery {
            id: "A7",
            description: "names of persons with a phone or a homepage",
            xpath: "/site/people/person[phone or homepage]/name",
            expressibility: RequiresDisjunction,
        },
        BenchmarkQuery {
            id: "A8",
            description: "names of persons with address, contact point and payment profile",
            xpath: "/site/people/person[address and (phone or homepage) and (creditcard or profile)]/name",
            expressibility: RequiresDisjunction,
        },
        BenchmarkQuery {
            id: "B1",
            description: "items reachable through any region",
            xpath: "//regions/*/item/name",
            expressibility: Twig,
        },
        BenchmarkQuery {
            id: "B2",
            description: "current price of open auctions that received bids",
            xpath: "/site/open_auctions/open_auction[bidder/increase]/current",
            expressibility: Twig,
        },
        BenchmarkQuery {
            id: "B3",
            description: "initial price of open auctions with a reserve",
            xpath: "//open_auction[reserve]/initial",
            expressibility: Twig,
        },
        BenchmarkQuery {
            id: "B4",
            description: "mail senders in item mailboxes",
            xpath: "//item/mailbox/mail/from",
            expressibility: Twig,
        },
        BenchmarkQuery {
            id: "B5",
            description: "names of categorised items",
            xpath: "//item[incategory]/name",
            expressibility: Twig,
        },
        BenchmarkQuery {
            id: "B6",
            description: "education of persons with a watched auction",
            xpath: "//person[watches/watch]/profile/education",
            expressibility: Twig,
        },
        BenchmarkQuery {
            id: "C1",
            description: "open auctions whose initial price exceeds a threshold",
            xpath: "//open_auction[initial > 100]/current",
            expressibility: RequiresValueComparison,
        },
        BenchmarkQuery {
            id: "C2",
            description: "persons identified by attribute id",
            xpath: "//person[@id='person0']/name",
            expressibility: RequiresAttributes,
        },
        BenchmarkQuery {
            id: "C3",
            description: "persons without a homepage",
            xpath: "//person[not(homepage)]/name",
            expressibility: RequiresNegation,
        },
        BenchmarkQuery {
            id: "C4",
            description: "sibling navigation between bidders",
            xpath: "//bidder/following-sibling::bidder/increase",
            expressibility: RequiresOtherAxes,
        },
        BenchmarkQuery {
            id: "C5",
            description: "auctions with more than two bidders",
            xpath: "//open_auction[count(bidder) > 2]/current",
            expressibility: RequiresAggregation,
        },
        BenchmarkQuery {
            id: "C6",
            description: "items sold by a given person (id dereference join)",
            xpath: "//closed_auction[seller/@person = //person/@id]/itemref",
            expressibility: RequiresJoin,
        },
    ]
}

/// The twig-expressible subset, parsed.
pub fn twig_goals() -> Vec<(String, TwigQuery)> {
    suite()
        .into_iter()
        .filter_map(|q| q.as_twig().map(|t| (q.id.to_string(), t)))
        .collect()
}

/// Coverage summary: `(twig-expressible, total)`.
pub fn coverage() -> (usize, usize) {
    let s = suite();
    (
        s.iter().filter(|q| q.expressibility.is_twig()).count(),
        s.len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;
    use qbe_xml::xmark::{generate, XmarkConfig};

    #[test]
    fn suite_has_twenty_queries_with_unique_ids() {
        let s = suite();
        assert_eq!(s.len(), 20);
        let mut ids: Vec<&str> = s.iter().map(|q| q.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 20);
    }

    #[test]
    fn twig_expressible_queries_parse() {
        for q in suite() {
            if q.expressibility.is_twig() {
                assert!(q.as_twig().is_some(), "{} should parse", q.id);
            } else {
                assert!(q.as_twig().is_none());
                // And indeed the parser rejects them (they use unsupported features).
                assert!(
                    crate::xpath::parse_xpath(q.xpath).is_err(),
                    "{} unexpectedly parses",
                    q.id
                );
            }
        }
    }

    #[test]
    fn coverage_matches_manual_count() {
        let (expressible, total) = coverage();
        assert_eq!(total, 20);
        assert_eq!(expressible, 12);
    }

    #[test]
    fn twig_goals_select_nodes_on_generated_documents() {
        let doc = generate(&XmarkConfig::new(0.05, 17));
        let mut nonempty = 0;
        for (id, goal) in twig_goals() {
            let n = eval::select(&goal, &doc).len();
            if n > 0 {
                nonempty += 1;
            } else {
                // Some highly selective queries may be empty on tiny documents, but the common
                // structural ones must not be.
                assert!(
                    !matches!(id.as_str(), "A1" | "A2" | "A3" | "B1" | "B4"),
                    "query {id} selected nothing"
                );
            }
        }
        assert!(nonempty >= 8, "only {nonempty} goals select anything");
    }
}
