//! Twig query evaluation by embedding.
//!
//! An **embedding** of a twig query `Q` into a document `t` is a mapping from query nodes to
//! document nodes that respects node tests and axes (child edges map to parent/child pairs,
//! descendant edges to proper ancestor/descendant pairs). The answer of the unary query is the
//! set of document nodes the *selected* query node takes over all embeddings.
//!
//! The evaluator is the standard two-pass polynomial algorithm:
//!
//! 1. bottom-up over the query, compute for every (query node, document node) pair whether the
//!    query subtree can be embedded with that query node mapped to that document node;
//! 2. top-down along the spine, intersect with the reachability constraints from the root to
//!    obtain the admissible images of the selected node.

use crate::query::{Axis, QNodeId, TwigQuery};
use qbe_xml::{NodeId, XmlTree};
use std::collections::BTreeSet;

/// Evaluate the query: all document nodes selected by some embedding.
pub fn select(query: &TwigQuery, doc: &XmlTree) -> BTreeSet<NodeId> {
    let matcher = Matcher::new(query, doc);
    matcher.selected_nodes()
}

/// Whether the query selects the given document node.
pub fn selects(query: &TwigQuery, doc: &XmlTree, node: NodeId) -> bool {
    select(query, doc).contains(&node)
}

/// Whether the query selects at least one node of the document (Boolean semantics).
pub fn matches(query: &TwigQuery, doc: &XmlTree) -> bool {
    !select(query, doc).is_empty()
}

struct Matcher<'a> {
    query: &'a TwigQuery,
    doc: &'a XmlTree,
    /// `can_embed[q][t]`: the query subtree rooted at `q` embeds with `q ↦ t`.
    can_embed: Vec<Vec<bool>>,
}

impl<'a> Matcher<'a> {
    fn new(query: &'a TwigQuery, doc: &'a XmlTree) -> Matcher<'a> {
        let mut matcher = Matcher {
            query,
            doc,
            can_embed: vec![vec![false; doc.size()]; query.size()],
        };
        matcher.fill();
        matcher
    }

    /// Post-order over the query so children are computed before their parents.
    fn postorder(&self) -> Vec<QNodeId> {
        let mut order = Vec::with_capacity(self.query.size());
        let mut stack = vec![(QNodeId::ROOT, false)];
        while let Some((node, expanded)) = stack.pop() {
            if expanded {
                order.push(node);
            } else {
                stack.push((node, true));
                for &child in self.query.children(node) {
                    stack.push((child, false));
                }
            }
        }
        order
    }

    fn fill(&mut self) {
        // Reverse pre-order visits every document node after all of its descendants, which is
        // what both the subtree-match propagation and the main table filling need.
        let mut bottom_up: Vec<NodeId> = self.doc.preorder(XmlTree::ROOT);
        bottom_up.reverse();
        for q in self.postorder() {
            // For every descendant-axis child of `q`, precompute in O(|doc|) whether a matching
            // node exists strictly below each document node.
            let desc_children: Vec<QNodeId> = self
                .query
                .children(q)
                .iter()
                .copied()
                .filter(|c| self.query.axis(*c) == Axis::Descendant)
                .collect();
            let mut has_matching_descendant: Vec<Vec<bool>> =
                vec![vec![false; self.doc.size()]; desc_children.len()];
            for (ix, &qc) in desc_children.iter().enumerate() {
                for &t in &bottom_up {
                    let below = self.doc.children(t).iter().any(|&c| {
                        self.can_embed[qc.index()][c.index()]
                            || has_matching_descendant[ix][c.index()]
                    });
                    has_matching_descendant[ix][t.index()] = below;
                }
            }
            for &t in &bottom_up {
                self.can_embed[q.index()][t.index()] =
                    self.check(q, t, &desc_children, &has_matching_descendant);
            }
        }
    }

    fn check(
        &self,
        q: QNodeId,
        t: NodeId,
        desc_children: &[QNodeId],
        has_matching_descendant: &[Vec<bool>],
    ) -> bool {
        if !self.query.test(q).matches(self.doc.label(t)) {
            return false;
        }
        for &child in self.query.children(q) {
            let ok = match self.query.axis(child) {
                Axis::Child => self
                    .doc
                    .children(t)
                    .iter()
                    .any(|c| self.can_embed[child.index()][c.index()]),
                Axis::Descendant => {
                    let ix = desc_children
                        .iter()
                        .position(|&qc| qc == child)
                        .expect("descendant children were collected above");
                    has_matching_descendant[ix][t.index()]
                }
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// One flag per document node: whether the query selects it. The spine pass works entirely
    /// on flat boolean arrays so that [`count`] never materialises a node set.
    fn selected_flags(&self) -> Vec<bool> {
        let mut current = vec![false; self.doc.size()];
        let root_ok = &self.can_embed[QNodeId::ROOT.index()];
        match self.query.axis(QNodeId::ROOT) {
            // `/label…`: the root query node must map to the document's root element.
            Axis::Child => current[XmlTree::ROOT.index()] = root_ok[XmlTree::ROOT.index()],
            // `//label…`: any element will do.
            Axis::Descendant => {
                for t in self.doc.node_ids() {
                    current[t.index()] = root_ok[t.index()];
                }
            }
        }
        let spine = self.query.spine();
        for window in spine.windows(2) {
            let child_q = window[1];
            let mut next = vec![false; self.doc.size()];
            match self.query.axis(child_q) {
                Axis::Child => {
                    for t in self.doc.node_ids() {
                        if !current[t.index()] {
                            continue;
                        }
                        for &c in self.doc.children(t) {
                            if self.can_embed[child_q.index()][c.index()] {
                                next[c.index()] = true;
                            }
                        }
                    }
                }
                Axis::Descendant => {
                    // One top-down pass marks every node with a proper ancestor in `current`.
                    let mut below_current = vec![false; self.doc.size()];
                    for t in self.doc.preorder(XmlTree::ROOT) {
                        if t == XmlTree::ROOT {
                            continue;
                        }
                        let parent = self.doc.parent(t).expect("non-root node has a parent");
                        below_current[t.index()] =
                            below_current[parent.index()] || current[parent.index()];
                        if below_current[t.index()] && self.can_embed[child_q.index()][t.index()] {
                            next[t.index()] = true;
                        }
                    }
                }
            }
            current = next;
        }
        current
    }

    fn selected_nodes(&self) -> BTreeSet<NodeId> {
        let flags = self.selected_flags();
        self.doc.node_ids().filter(|t| flags[t.index()]).collect()
    }
}

/// Count of selected nodes — convenience for experiments reporting selectivities. Counts the
/// selection flags directly instead of building the full answer set.
pub fn count(query: &TwigQuery, doc: &XmlTree) -> usize {
    let matcher = Matcher::new(query, doc);
    matcher.selected_flags().iter().filter(|&&b| b).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::NodeTest;
    use qbe_xml::TreeBuilder;

    fn doc() -> XmlTree {
        TreeBuilder::new("site")
            .open("people")
            .open("person")
            .attr("id", "p0")
            .leaf("name")
            .leaf("emailaddress")
            .open("profile")
            .leaf("age")
            .close()
            .close()
            .open("person")
            .attr("id", "p1")
            .leaf("name")
            .close()
            .close()
            .open("regions")
            .open("europe")
            .open("item")
            .leaf("name")
            .close()
            .close()
            .close()
            .build()
    }

    fn parse(q: &str) -> TwigQuery {
        crate::xpath::parse_xpath(q).unwrap()
    }

    #[test]
    fn absolute_path_selects_matching_nodes() {
        let d = doc();
        let q = TwigQuery::path([
            (Axis::Child, NodeTest::label("site")),
            (Axis::Child, NodeTest::label("people")),
            (Axis::Child, NodeTest::label("person")),
        ]);
        assert_eq!(select(&q, &d).len(), 2);
    }

    #[test]
    fn descendant_query_selects_across_subtrees() {
        let d = doc();
        let q = TwigQuery::descendant_of_root("name");
        // Three name elements: two under persons, one under the item.
        assert_eq!(select(&q, &d).len(), 3);
    }

    #[test]
    fn child_axis_is_strict() {
        let d = doc();
        let q = TwigQuery::path([
            (Axis::Child, NodeTest::label("site")),
            (Axis::Child, NodeTest::label("person")),
        ]);
        assert!(
            select(&q, &d).is_empty(),
            "person is not a direct child of site"
        );
    }

    #[test]
    fn descendant_axis_skips_levels() {
        let d = doc();
        let q = TwigQuery::path([
            (Axis::Child, NodeTest::label("site")),
            (Axis::Descendant, NodeTest::label("age")),
        ]);
        assert_eq!(select(&q, &d).len(), 1);
    }

    #[test]
    fn filters_restrict_the_selection() {
        let d = doc();
        // Only person p0 has an emailaddress.
        let with_filter = parse("/site/people/person[emailaddress]");
        let selected = select(&with_filter, &d);
        assert_eq!(selected.len(), 1);
        let p = selected.into_iter().next().unwrap();
        assert_eq!(d.attribute(p, "id"), Some("p0"));
    }

    #[test]
    fn descendant_filter_reaches_deep_nodes() {
        let d = doc();
        let q = parse("/site/people/person[.//age]");
        assert_eq!(select(&q, &d).len(), 1);
        let q2 = parse("/site/people/person[age]");
        assert!(
            select(&q2, &d).is_empty(),
            "age is nested under profile, not a direct child"
        );
    }

    #[test]
    fn wildcard_matches_any_label() {
        let d = doc();
        let q = parse("/site/*/person");
        assert_eq!(select(&q, &d).len(), 2);
        let q_any_child_of_site = parse("/site/*");
        assert_eq!(select(&q_any_child_of_site, &d).len(), 2); // people, regions
    }

    #[test]
    fn selected_node_in_the_middle_of_filters() {
        let d = doc();
        // Select the name of persons that have a profile.
        let q = parse("//person[profile]/name");
        let result = select(&q, &d);
        assert_eq!(result.len(), 1);
        let name_node = result.into_iter().next().unwrap();
        let person = d.parent(name_node).unwrap();
        assert_eq!(d.attribute(person, "id"), Some("p0"));
    }

    #[test]
    fn wrong_root_label_selects_nothing() {
        let d = doc();
        let q = parse("/auction//person");
        assert!(select(&q, &d).is_empty());
    }

    #[test]
    fn boolean_matching_and_counting() {
        let d = doc();
        assert!(matches(&parse("//profile/age"), &d));
        assert!(!matches(&parse("//profile/income"), &d));
        assert_eq!(count(&parse("//person"), &d), 2);
    }

    #[test]
    fn membership_check() {
        let d = doc();
        let q = parse("//person");
        let persons = d.nodes_with_label("person");
        assert!(selects(&q, &d, persons[0]));
        assert!(!selects(&q, &d, XmlTree::ROOT));
    }

    #[test]
    fn nested_filters_are_respected() {
        let d = doc();
        let q = parse("//person[profile[age]]");
        assert_eq!(select(&q, &d).len(), 1);
        let q_missing = parse("//person[profile[income]]");
        assert!(select(&q_missing, &d).is_empty());
    }

    #[test]
    fn count_of_empty_match_is_zero() {
        let d = doc();
        assert_eq!(count(&parse("//nonexistent"), &d), 0);
        assert_eq!(count(&parse("/auction//person"), &d), 0);
        assert!(select(&parse("//nonexistent"), &d).is_empty());
    }

    #[test]
    fn count_of_root_only_selection_is_one() {
        let single = TreeBuilder::new("site").build();
        assert_eq!(count(&parse("/site"), &single), 1);
        assert_eq!(count(&parse("//site"), &single), 1);
        let d = doc();
        assert_eq!(count(&parse("/site"), &d), 1);
        assert_eq!(
            select(&parse("/site"), &d).into_iter().collect::<Vec<_>>(),
            vec![XmlTree::ROOT]
        );
    }

    #[test]
    fn descendant_edge_requires_proper_descendant() {
        let d = TreeBuilder::new("a").leaf("a").build();
        // `//a//a` needs two distinct nested `a` elements.
        let q = parse("//a//a");
        assert_eq!(select(&q, &d).len(), 1);
        let single = TreeBuilder::new("a").build();
        assert!(select(&q, &single).is_empty());
    }
}
