//! Learning twig queries from positive examples.
//!
//! This is the workspace's re-implementation of the Staworko–Wieczorek style learner the paper
//! evaluates: from a set of positive examples (documents with one annotated node each) it
//! computes the **most specific anchored twig query** of its hypothesis space that selects every
//! annotated node. The hypothesis space is the practical one used in the paper's experiments:
//!
//! * a **spine** obtained by generalising the root-to-node label paths of all examples
//!   (label mismatches become wildcards/`//` edges via a longest-common-subsequence alignment);
//! * **filters** attached to spine nodes, drawn from the child and grandchild labels observed in
//!   the first example and kept only when compatible with *every* example.
//!
//! Keeping every compatible filter is precisely what produces the *overspecialised* queries the
//! paper describes ("the queries contain many conditions that follow from the schema of the
//! documents"); the schema-aware pruning of [`crate::schema_aware`] removes them again.

use crate::eval_indexed::{self, EvalCache};
use crate::query::{Axis, NodeTest, QNodeId, TwigQuery};
use qbe_xml::{NodeId, NodeIndex, XmlTree};
use std::collections::BTreeSet;
use std::fmt;

/// Error raised by the learners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TwigLearnError {
    /// The positive example set is empty.
    NoExamples,
}

impl fmt::Display for TwigLearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TwigLearnError::NoExamples => write!(f, "cannot learn a twig query from zero examples"),
        }
    }
}

impl std::error::Error for TwigLearnError {}

/// One step of the generalised spine.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SpineStep {
    axis: Axis,
    test: NodeTest,
    /// Index of the corresponding ancestor in the *first* example's root-to-node path; used to
    /// harvest candidate filters. Lost (None) when the step was generalised to a wildcard that
    /// no longer corresponds to a first-example ancestor.
    first_example_index: Option<usize>,
}

/// Learn the most specific **path query** (no filters) selecting every positive example.
pub fn learn_path_from_positives(
    examples: &[(&XmlTree, NodeId)],
) -> Result<TwigQuery, TwigLearnError> {
    let spine = generalise_spines(examples)?;
    Ok(spine_to_query(&spine))
}

/// The generalised spine of a positive-example set, cached across proposals by the interactive
/// session: spine generalisation folds the examples left to right, so the fold over the known
/// positives can be reused and extended by one more example per candidate node — byte-identical
/// to refolding from scratch, without the O(|positives|) rework per proposal.
#[derive(Debug, Clone)]
pub(crate) struct CachedSpine {
    steps: Vec<SpineStep>,
}

/// Fold the examples' label paths into a [`CachedSpine`].
pub(crate) fn generalised_spine(
    examples: &[(&XmlTree, NodeId)],
) -> Result<CachedSpine, TwigLearnError> {
    Ok(CachedSpine {
        steps: generalise_spines(examples)?,
    })
}

impl CachedSpine {
    /// The spine generalised with one more example — exactly one more fold step.
    pub(crate) fn extended(&self, doc: &XmlTree, node: NodeId) -> CachedSpine {
        CachedSpine {
            steps: generalise_with_path(&self.steps, &label_path(doc, node)),
        }
    }

    /// The pure path query of this spine (what [`learn_path_from_positives`] would return for
    /// the folded example sequence).
    pub(crate) fn path_query(&self) -> TwigQuery {
        spine_to_query(&self.steps)
    }
}

/// [`learn_from_positives_shared`] over a precomputed spine (see [`CachedSpine`]): runs only
/// the filter-harvesting phase. The spine must be the fold of `examples`' label paths in order.
pub(crate) fn learn_from_positives_shared_with_spine(
    spine: &CachedSpine,
    examples: &[(usize, NodeId)],
    docs: &[XmlTree],
    indexes: &[NodeIndex],
    caches: &mut [EvalCache],
) -> Result<TwigQuery, TwigLearnError> {
    let refs: Vec<(&XmlTree, NodeId)> = examples
        .iter()
        .map(|&(slot, node)| (&docs[slot], node))
        .collect();
    let mut by_slot: Vec<Vec<NodeId>> = vec![Vec::new(); docs.len()];
    for &(slot, node) in examples {
        by_slot[slot].push(node);
    }
    for targets in &mut by_slot {
        targets.sort_unstable();
        targets.dedup();
    }
    harvest_filters(&refs, spine.steps.clone(), &mut |q| {
        by_slot.iter().enumerate().all(|(slot, targets)| {
            targets.is_empty() || {
                let selected = eval_indexed::select_bits_with(
                    q,
                    &docs[slot],
                    &indexes[slot],
                    &mut caches[slot],
                );
                targets.iter().all(|n| selected.contains(*n))
            }
        })
    })
}

/// Learn the most specific **twig query** (spine + filters) selecting every positive example.
///
/// Filter harvesting evaluates dozens of near-identical candidate queries against the same
/// documents, so each distinct document is indexed once for the duration of the call. Callers
/// that invoke the learner repeatedly over the *same* documents (the interactive session does,
/// once per proposed node) should use [`learn_from_positives_shared`] with prebuilt indexes
/// and long-lived memos instead.
pub fn learn_from_positives(examples: &[(&XmlTree, NodeId)]) -> Result<TwigQuery, TwigLearnError> {
    let mut indexed = IndexedExamples::new(examples);
    learn_with_evaluator(examples, &mut |q| indexed.selects_all(q))
}

/// [`learn_from_positives`] over caller-owned per-document state: `examples` name documents by
/// slot into the parallel `docs`/`indexes`/`caches` slices, so nothing is indexed per call and
/// the sub-twig memos accumulate across the caller's whole lifetime.
pub fn learn_from_positives_shared(
    examples: &[(usize, NodeId)],
    docs: &[XmlTree],
    indexes: &[NodeIndex],
    caches: &mut [EvalCache],
) -> Result<TwigQuery, TwigLearnError> {
    assert_eq!(docs.len(), indexes.len());
    assert_eq!(docs.len(), caches.len());
    let refs: Vec<(&XmlTree, NodeId)> = examples
        .iter()
        .map(|&(slot, node)| (&docs[slot], node))
        .collect();
    let mut by_slot: Vec<Vec<NodeId>> = vec![Vec::new(); docs.len()];
    for &(slot, node) in examples {
        by_slot[slot].push(node);
    }
    for targets in &mut by_slot {
        targets.sort_unstable();
        targets.dedup();
    }
    learn_with_evaluator(&refs, &mut |q| {
        by_slot.iter().enumerate().all(|(slot, targets)| {
            targets.is_empty() || {
                let selected = eval_indexed::select_bits_with(
                    q,
                    &docs[slot],
                    &indexes[slot],
                    &mut caches[slot],
                );
                targets.iter().all(|n| selected.contains(*n))
            }
        })
    })
}

/// Shared body of the twig learners: generalise the spine, then harvest filters, testing each
/// candidate with `selects_all_positives`.
fn learn_with_evaluator(
    examples: &[(&XmlTree, NodeId)],
    selects_all_positives: &mut dyn FnMut(&TwigQuery) -> bool,
) -> Result<TwigQuery, TwigLearnError> {
    let spine = generalise_spines(examples)?;
    harvest_filters(examples, spine, selects_all_positives)
}

/// The filter-harvesting phase over an already generalised spine.
fn harvest_filters(
    examples: &[(&XmlTree, NodeId)],
    spine: Vec<SpineStep>,
    selects_all_positives: &mut dyn FnMut(&TwigQuery) -> bool,
) -> Result<TwigQuery, TwigLearnError> {
    let mut query = spine_to_query(&spine);
    let (first_doc, first_node) = examples[0];
    let first_path = ancestor_path(first_doc, first_node);

    // Candidate filters per spine position, harvested from the first example.
    let spine_ids = query.spine();
    for (pos, step) in spine.iter().enumerate() {
        let Some(first_ix) = step.first_example_index else {
            continue;
        };
        let anchor_node = first_path[first_ix];
        let spine_query_node = spine_ids[pos];
        // The child of `anchor_node` that continues the path towards the annotated node (if
        // any): filters duplicating its label are redundant with the spine itself.
        let path_child_label = first_path
            .get(first_ix + 1)
            .map(|n| first_doc.label(*n).to_string());

        let mut child_labels: Vec<String> = first_doc
            .children(anchor_node)
            .iter()
            .map(|c| first_doc.label(*c).to_string())
            .collect();
        child_labels.sort();
        child_labels.dedup();

        let mut grandchild_labels: BTreeSet<String> = BTreeSet::new();
        for &c in first_doc.children(anchor_node) {
            for &g in first_doc.children(c) {
                grandchild_labels.insert(first_doc.label(g).to_string());
            }
        }

        // Child-axis candidates first (more specific), then descendant-axis candidates for
        // labels only seen deeper.
        for label in &child_labels {
            if Some(label) == path_child_label.as_ref() {
                continue;
            }
            try_add_filter(
                &mut query,
                spine_query_node,
                Axis::Child,
                label,
                selects_all_positives,
            );
        }
        for label in grandchild_labels {
            if child_labels.contains(&label) || Some(&label) == path_child_label.as_ref() {
                continue;
            }
            try_add_filter(
                &mut query,
                spine_query_node,
                Axis::Descendant,
                &label,
                selects_all_positives,
            );
        }
    }
    Ok(query)
}

/// The positive examples regrouped per distinct document, each with its [`NodeIndex`] and
/// sub-twig memo, so every candidate query of the filter-harvesting loop is evaluated once per
/// document (not once per example) through the indexed engine.
struct IndexedExamples<'a> {
    docs: Vec<&'a XmlTree>,
    indexes: Vec<NodeIndex>,
    caches: Vec<EvalCache>,
    /// Annotated nodes per distinct document, sorted.
    targets: Vec<Vec<NodeId>>,
}

impl<'a> IndexedExamples<'a> {
    fn new(examples: &[(&'a XmlTree, NodeId)]) -> IndexedExamples<'a> {
        let mut docs: Vec<&XmlTree> = Vec::new();
        let mut targets: Vec<Vec<NodeId>> = Vec::new();
        for &(doc, node) in examples {
            // Examples overwhelmingly share a handful of documents; pointer identity dedupes
            // them without hashing tree contents.
            let slot = match docs.iter().position(|d| std::ptr::eq(*d, doc)) {
                Some(slot) => slot,
                None => {
                    docs.push(doc);
                    targets.push(Vec::new());
                    docs.len() - 1
                }
            };
            targets[slot].push(node);
        }
        for t in &mut targets {
            t.sort_unstable();
            t.dedup();
        }
        let indexes = docs.iter().map(|d| NodeIndex::build(d)).collect();
        let caches = vec![EvalCache::new(); docs.len()];
        IndexedExamples {
            docs,
            indexes,
            caches,
            targets,
        }
    }

    /// Whether `query` selects every annotated node of every document.
    fn selects_all(&mut self, query: &TwigQuery) -> bool {
        for slot in 0..self.docs.len() {
            let selected = eval_indexed::select_bits_with(
                query,
                self.docs[slot],
                &self.indexes[slot],
                &mut self.caches[slot],
            );
            if !self.targets[slot].iter().all(|n| selected.contains(*n)) {
                return false;
            }
        }
        true
    }
}

/// Tentatively add the filter `[axis label]` under `node`; keep it only if the query still
/// selects every positive example.
fn try_add_filter(
    query: &mut TwigQuery,
    node: QNodeId,
    axis: Axis,
    label: &str,
    selects_all_positives: &mut dyn FnMut(&TwigQuery) -> bool,
) {
    let mut candidate = query.clone();
    candidate.add_node(node, axis, NodeTest::label(label));
    if selects_all_positives(&candidate) {
        *query = candidate;
    }
}

fn ancestor_path(doc: &XmlTree, node: NodeId) -> Vec<NodeId> {
    let mut path = doc.ancestors(node);
    path.reverse();
    path.push(node);
    path
}

fn label_path(doc: &XmlTree, node: NodeId) -> Vec<String> {
    doc.label_path(node)
}

fn generalise_spines(examples: &[(&XmlTree, NodeId)]) -> Result<Vec<SpineStep>, TwigLearnError> {
    let (first_doc, first_node) = *examples.first().ok_or(TwigLearnError::NoExamples)?;
    let first = label_path(first_doc, first_node);
    let mut spine: Vec<SpineStep> = first
        .iter()
        .enumerate()
        .map(|(i, label)| SpineStep {
            axis: Axis::Child,
            test: NodeTest::label(label),
            first_example_index: Some(i),
        })
        .collect();
    for (doc, node) in &examples[1..] {
        let path = label_path(doc, *node);
        spine = generalise_with_path(&spine, &path);
    }
    Ok(spine)
}

/// Generalise the current spine against one more root-to-node label path.
fn generalise_with_path(spine: &[SpineStep], path: &[String]) -> Vec<SpineStep> {
    // Work on the prefixes (everything except the selected step), then handle the selected step
    // separately so that it is always the last spine step.
    let spine_prefix = &spine[..spine.len() - 1];
    let path_prefix = &path[..path.len() - 1];
    let alignment = lcs_alignment(spine_prefix, path_prefix);

    let mut out: Vec<SpineStep> = Vec::with_capacity(alignment.len() + 1);
    let mut prev_spine_ix: Option<usize> = None;
    let mut prev_path_ix: Option<usize> = None;
    for &(si, pi) in &alignment {
        let step = &spine_prefix[si];
        // The step is kept; its axis stays `Child` only if it was `Child` and both sequences are
        // adjacent to the previously kept step (or it is the first kept step at position 0 in
        // both, preserving the absolute root).
        let adjacent = match (prev_spine_ix, prev_path_ix) {
            (None, None) => si == 0 && pi == 0,
            (Some(ps), Some(pp)) => si == ps + 1 && pi == pp + 1,
            _ => false,
        };
        let axis = if step.axis == Axis::Child && adjacent {
            Axis::Child
        } else {
            Axis::Descendant
        };
        out.push(SpineStep {
            axis,
            test: step.test.clone(),
            first_example_index: step.first_example_index,
        });
        prev_spine_ix = Some(si);
        prev_path_ix = Some(pi);
    }

    // Selected step.
    let spine_last = &spine[spine.len() - 1];
    let path_last = &path[path.len() - 1];
    let selected_test = if spine_last.test.matches(path_last) {
        spine_last.test.clone()
    } else {
        NodeTest::Wildcard
    };
    let selected_adjacent = match (prev_spine_ix, prev_path_ix) {
        // Both the spine and the new path reach the selected step directly from the last kept
        // prefix step.
        (Some(ps), Some(pp)) => ps == spine_prefix.len() - 1 && pp == path_prefix.len() - 1,
        (None, None) => spine_prefix.is_empty() && path_prefix.is_empty(),
        _ => false,
    };
    let selected_axis = if spine_last.axis == Axis::Child && selected_adjacent {
        Axis::Child
    } else {
        Axis::Descendant
    };
    let first_example_index = if selected_test == spine_last.test {
        spine_last.first_example_index
    } else {
        None
    };
    out.push(SpineStep {
        axis: selected_axis,
        test: selected_test,
        first_example_index,
    });
    out
}

/// Longest common subsequence between the spine's node tests and a label path; returns the kept
/// `(spine index, path index)` pairs in order. Wildcard spine steps match any label.
fn lcs_alignment(spine: &[SpineStep], path: &[String]) -> Vec<(usize, usize)> {
    let n = spine.len();
    let m = path.len();
    let mut table = vec![vec![0usize; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            table[i][j] = if spine[i].test.matches(&path[j]) {
                table[i + 1][j + 1] + 1
            } else {
                table[i + 1][j].max(table[i][j + 1])
            };
        }
    }
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < n && j < m {
        if spine[i].test.matches(&path[j]) && table[i][j] == table[i + 1][j + 1] + 1 {
            out.push((i, j));
            i += 1;
            j += 1;
        } else if table[i + 1][j] >= table[i][j + 1] {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

fn spine_to_query(spine: &[SpineStep]) -> TwigQuery {
    let mut query = TwigQuery::new(spine[0].axis, spine[0].test.clone());
    let mut cur = QNodeId::ROOT;
    for step in &spine[1..] {
        cur = query.add_node(cur, step.axis, step.test.clone());
    }
    query.set_selected(cur);
    query
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::equivalent_on;
    use crate::eval;
    use crate::xpath::parse_xpath;
    use qbe_xml::TreeBuilder;

    fn site_doc() -> XmlTree {
        TreeBuilder::new("site")
            .open("people")
            .open("person")
            .leaf("name")
            .leaf("emailaddress")
            .open("profile")
            .leaf("age")
            .close()
            .close()
            .open("person")
            .leaf("name")
            .leaf("emailaddress")
            .close()
            .close()
            .open("regions")
            .open("europe")
            .open("item")
            .leaf("name")
            .close()
            .close()
            .close()
            .build()
    }

    #[test]
    fn no_examples_is_an_error() {
        assert_eq!(
            learn_from_positives(&[]).unwrap_err(),
            TwigLearnError::NoExamples
        );
    }

    #[test]
    fn single_example_yields_exact_path_with_filters() {
        let doc = site_doc();
        let email = doc.nodes_with_label("emailaddress")[0];
        let q = learn_from_positives(&[(&doc, email)]).unwrap();
        // The spine is the exact label path, with sibling filters harvested from the example.
        let spine_labels: Vec<String> = q.spine().iter().map(|n| q.test(*n).to_string()).collect();
        assert_eq!(
            spine_labels,
            vec!["site", "people", "person", "emailaddress"]
        );
        assert!(eval::selects(&q, &doc, email));
        assert!(
            q.to_xpath().contains("[name]"),
            "sibling filter expected, got {q}"
        );
    }

    #[test]
    fn learned_query_selects_every_positive() {
        let doc = site_doc();
        let emails = doc.nodes_with_label("emailaddress");
        let examples: Vec<(&XmlTree, NodeId)> = emails.iter().map(|&e| (&doc, e)).collect();
        let q = learn_from_positives(&examples).unwrap();
        for &e in &emails {
            assert!(eval::selects(&q, &doc, e));
        }
    }

    #[test]
    fn generalisation_drops_filters_not_shared_by_all_examples() {
        let doc = site_doc();
        let emails = doc.nodes_with_label("emailaddress");
        // Only the first person has a profile; learning from both emails must not keep a
        // [profile] filter on the `person` spine step (an ancestor-level `.//profile` filter may
        // survive because *some* person of every example document has a profile).
        let examples: Vec<(&XmlTree, NodeId)> = emails.iter().map(|&e| (&doc, e)).collect();
        let q = learn_from_positives(&examples).unwrap();
        let person_step = q
            .spine()
            .into_iter()
            .find(|n| q.test(*n) == &NodeTest::label("person"))
            .unwrap();
        let person_filters: Vec<String> = q
            .children(person_step)
            .iter()
            .filter(|c| q.test(**c) != &NodeTest::label("emailaddress"))
            .map(|c| q.test(*c).to_string())
            .collect();
        assert!(
            !person_filters.contains(&"profile".to_string()),
            "overspecific filter kept: {q}"
        );
        assert!(
            person_filters.contains(&"name".to_string()),
            "shared filter dropped: {q}"
        );
    }

    #[test]
    fn paths_of_different_depth_generalise_to_descendant_edges() {
        // name appears at depth 3 under person and depth 4 under item -> // edge somewhere.
        let doc = site_doc();
        let person_name = doc.nodes_with_label("name")[0];
        let item_name = *doc.nodes_with_label("name").last().unwrap();
        let q = learn_path_from_positives(&[(&doc, person_name), (&doc, item_name)]).unwrap();
        assert!(eval::selects(&q, &doc, person_name));
        assert!(eval::selects(&q, &doc, item_name));
        assert!(q.descendant_edge_count() >= 1);
        assert_eq!(q.test(q.selected()), &NodeTest::label("name"));
    }

    #[test]
    fn mismatched_selected_labels_generalise_to_wildcard() {
        let doc = site_doc();
        let name = doc.nodes_with_label("name")[0];
        let email = doc.nodes_with_label("emailaddress")[0];
        let q = learn_path_from_positives(&[(&doc, name), (&doc, email)]).unwrap();
        assert_eq!(q.test(q.selected()), &NodeTest::Wildcard);
        assert!(eval::selects(&q, &doc, name));
        assert!(eval::selects(&q, &doc, email));
    }

    #[test]
    fn two_examples_recover_a_simple_goal_query() {
        // The paper: "the algorithms are able to learn a query equivalent to the goal query from
        // a small number of examples (generally two)".
        let doc = site_doc();
        let goal = parse_xpath("/site/people/person/emailaddress").unwrap();
        let selected: Vec<NodeId> = eval::select(&goal, &doc).into_iter().collect();
        let examples: Vec<(&XmlTree, NodeId)> = selected.iter().map(|&n| (&doc, n)).collect();
        let learned = learn_from_positives(&examples[..2.min(examples.len())]).unwrap();
        assert!(equivalent_on(&learned, &goal, std::slice::from_ref(&doc)));
    }

    #[test]
    fn learned_query_is_overspecialised_without_schema_knowledge() {
        // Selecting person nodes: every person has a name, so the learner keeps [name] even
        // though (under the real schema) it is implied — the overspecialisation phenomenon.
        let doc = site_doc();
        let persons = doc.nodes_with_label("person");
        let examples: Vec<(&XmlTree, NodeId)> = persons.iter().map(|&p| (&doc, p)).collect();
        let q = learn_from_positives(&examples).unwrap();
        assert!(q.to_xpath().contains("[name]"));
        assert!(
            q.size() > 3,
            "expected filters beyond the bare spine, got {q}"
        );
    }

    #[test]
    fn path_learner_produces_pure_paths() {
        let doc = site_doc();
        let ages = doc.nodes_with_label("age");
        let q = learn_path_from_positives(&[(&doc, ages[0])]).unwrap();
        assert!(q.is_path());
        assert_eq!(q.to_xpath(), "/site/people/person/profile/age");
    }

    #[test]
    fn learning_from_examples_across_documents() {
        let doc_a = TreeBuilder::new("site")
            .open("people")
            .open("person")
            .leaf("name")
            .leaf("phone")
            .close()
            .close()
            .build();
        let doc_b = TreeBuilder::new("site")
            .open("people")
            .open("person")
            .leaf("name")
            .leaf("homepage")
            .close()
            .close()
            .build();
        let pa = doc_a.nodes_with_label("person")[0];
        let pb = doc_b.nodes_with_label("person")[0];
        let q = learn_from_positives(&[(&doc_a, pa), (&doc_b, pb)]).unwrap();
        assert!(eval::selects(&q, &doc_a, pa));
        assert!(eval::selects(&q, &doc_b, pb));
        // Only the shared [name] filter survives.
        assert!(q.to_xpath().contains("[name]"));
        assert!(!q.to_xpath().contains("phone"));
        assert!(!q.to_xpath().contains("homepage"));
    }
}
