//! Interactive twig-query learning: propose nodes, collect labels, prune uninformative nodes.
//!
//! The paper closes its XML section with *"We also want to develop a practical system able to
//! learn twig queries from interaction with the user."* (§2). This module is that system, built
//! on the same protocol the relational and graph crates use: the learner repeatedly proposes an
//! unlabelled document node, the user (an [`NodeOracle`], simulated from a hidden goal query in
//! the experiments) labels it positive or negative, and after every answer the learner prunes
//! every node whose label has become *uninformative*.
//!
//! Two pruning rules exploit the structure of anchored-twig learning from positive examples,
//! both consequences of [`learn_from_positives`](crate::learn::learn_from_positives) returning
//! the *most specific* anchored twig consistent with the positives:
//!
//! * **Certain positives.** Every anchored twig consistent with the positives selects at least
//!   the candidate's answers, so a node already selected by the candidate has a certain
//!   (positive) label under every remaining hypothesis — asking about it cannot shrink the
//!   version space and it is pruned.
//! * **Determined negatives.** For an unlabelled node `n`, consider the most specific anchored
//!   twig selecting `positives ∪ {n}`. Every hypothesis selecting `n` together with the known
//!   positives is at least as general, so it selects at least that query's answers. If that
//!   query selects an already-labelled *negative*, every hypothesis selecting `n` is
//!   inconsistent with the collected labels — `n`'s label is determined to be negative and it is
//!   pruned without asking (see [`TwigSession::is_determined_negative`]).
//!
//! Remaining nodes are informative: a positive label generalises the candidate, a negative label
//! constrains the final query.
//!
//! All candidate evaluations run through the indexed engine ([`crate::eval_indexed`]): the
//! session shares one immutable [`NodeIndex`] per document — documents and indexes can be
//! handed in as `Arc`s by a concurrent workload driver (see [`TwigSession::with_shared`]) — and
//! keeps one [`EvalCache`] per document so structurally repeated sub-twigs across the many
//! candidate queries of a session are matched once.
//!
//! The session stops when every node is labelled or pruned, and reports the learned query, the
//! number of interactions (the quantity the paper wants to minimise) and the number of labels the
//! pruning saved.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use qbe_bitset::DenseSet;
use qbe_strategy::{
    pick_last_max_by, Candidate, CheapestFirst, PaperOrder, PoolView, Random, SessionConfig,
    Strategy,
};
use qbe_xml::{NodeId, NodeIndex, XmlTree};

use crate::eval;
use crate::eval_indexed::{self, EvalCache};
use crate::example::Annotation;
use crate::query::TwigQuery;

/// The answer source for node-labelling questions.
pub trait NodeOracle {
    /// Label the node `node` of document `doc` (index into the session's document list).
    fn label(&mut self, doc: usize, node: NodeId) -> bool;
}

/// Oracle answering according to a hidden goal query, counting the questions it receives.
///
/// The goal's answer set per document is computed once (lazily) so each question is a set
/// lookup rather than a fresh evaluation.
#[derive(Debug, Clone)]
pub struct GoalNodeOracle<'a> {
    docs: &'a [XmlTree],
    goal: TwigQuery,
    answers: Vec<Option<BTreeSet<NodeId>>>,
    questions: usize,
}

impl<'a> GoalNodeOracle<'a> {
    /// Create an oracle for a hidden goal query over the given documents.
    pub fn new(docs: &'a [XmlTree], goal: TwigQuery) -> GoalNodeOracle<'a> {
        GoalNodeOracle {
            docs,
            goal,
            answers: vec![None; docs.len()],
            questions: 0,
        }
    }

    /// Number of questions answered so far.
    pub fn questions_asked(&self) -> usize {
        self.questions
    }

    /// The hidden goal.
    pub fn goal(&self) -> &TwigQuery {
        &self.goal
    }
}

impl NodeOracle for GoalNodeOracle<'_> {
    fn label(&mut self, doc: usize, node: NodeId) -> bool {
        self.questions += 1;
        self.answers[doc]
            .get_or_insert_with(|| eval::select(&self.goal, &self.docs[doc]))
            .contains(&node)
    }
}

/// The paper-era node-selection policies, now thin presets over the model-agnostic
/// [`qbe_strategy::Strategy`] API (see [`NodeStrategy::strategy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeStrategy {
    /// Document order (depth-first, first document first) — the naive baseline
    /// ([`qbe_strategy::PaperOrder`]).
    DocumentOrder,
    /// Uniformly random among the informative nodes ([`qbe_strategy::Random`]).
    ///
    /// Since the strategy API landed this draws from one persistent seeded stream (the
    /// pre-API loop reseeded from `seed + questions asked` and shuffled the pool each round),
    /// so a given seed yields a different — still deterministic — question sequence than
    /// pre-API runs. No count was ever pinned for this preset; path/join `Random` streams are
    /// unchanged.
    Random,
    /// Shallow nodes first: cheap questions whose answers constrain the query's spine early
    /// ([`qbe_strategy::CheapestFirst`] over the depth cost channel).
    ShallowFirst,
    /// Prefer nodes whose label equals the label of an already-known positive node: such nodes
    /// are the most likely to be selected by the goal, and a positive answer generalises the
    /// candidate (the paper's "gather as much information as possible with few interactions").
    LabelAffinity,
}

impl NodeStrategy {
    /// The [`Strategy`] implementing this preset (`seed` feeds [`NodeStrategy::Random`]).
    pub fn strategy(self, seed: u64) -> Box<dyn Strategy> {
        match self {
            NodeStrategy::DocumentOrder => Box::new(PaperOrder),
            NodeStrategy::Random => Box::new(Random::new(seed)),
            NodeStrategy::ShallowFirst => Box::new(CheapestFirst),
            NodeStrategy::LabelAffinity => Box::new(LabelAffinity),
        }
    }
}

/// The session's flagship policy as a [`Strategy`]: highest label affinity first, shallower
/// nodes breaking ties (the exact comparator the paper-era inlined loop used, including its
/// latest-maximum tie resolution, so the regression pins stay byte-identical).
#[derive(Debug, Clone, Copy, Default)]
struct LabelAffinity;

impl Strategy for LabelAffinity {
    fn name(&self) -> &str {
        "label-affinity"
    }

    fn pick(&mut self, pool: &PoolView<'_>) -> Option<usize> {
        pick_last_max_by(pool.candidates, |c| c.informativeness)
    }
}

/// How one document node is currently classified by the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeStatus {
    /// The user labelled it positive.
    LabelledPositive,
    /// The user labelled it negative.
    LabelledNegative,
    /// Selected by the current candidate, hence certainly positive — pruned.
    CertainPositive,
    /// Still informative: asking about it would refine the hypothesis space.
    Informative,
}

/// Outcome of an interactive twig-learning session.
#[derive(Debug, Clone)]
pub struct TwigSessionOutcome {
    /// The learned query (None when no positive node was found at all).
    pub query: Option<TwigQuery>,
    /// Number of questions asked.
    pub interactions: usize,
    /// Number of nodes whose label was inferred (pruned) rather than asked.
    pub pruned: usize,
    /// Total number of nodes across all documents.
    pub total_nodes: usize,
    /// Whether the collected labels remained consistent with some anchored twig.
    pub consistent: bool,
}

impl fmt::Display for TwigSessionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} interactions, {} pruned of {} nodes, query: {}",
            self.interactions,
            self.pruned,
            self.total_nodes,
            self.query
                .as_ref()
                .map(|q| q.to_xpath())
                .unwrap_or_else(|| "(none)".to_string())
        )
    }
}

/// An in-progress interactive twig-learning session.
///
/// All per-round bookkeeping runs on dense bitsets: one [`DenseSet`] per document for the
/// labelled, determined-negative, certain-positive and still-informative node sets, so each
/// proposal round updates the candidate pool by word-level set difference instead of rescanning
/// every node against `BTreeSet`s.
#[derive(Debug)]
pub struct TwigSession {
    docs: Arc<Vec<XmlTree>>,
    indexes: Arc<Vec<NodeIndex>>,
    /// One memo of sub-twig match sets per document, shared by every candidate evaluation of
    /// this session. Interior mutability keeps the read-only query API (`status`,
    /// `informative_nodes`, …) taking `&self`.
    caches: RefCell<Vec<EvalCache>>,
    annotations: Vec<Annotation>,
    /// The pluggable question-selection policy, consulted once per proposal round.
    strategy: Box<dyn Strategy>,
    /// Question cap, if any: once `asked` reaches it, the session completes.
    budget: Option<usize>,
    asked: usize,
    /// Per-document bitset of labelled nodes.
    labelled_bits: Vec<DenseSet<NodeId>>,
    /// Per-document bitset of nodes proven determined-negative so far (never re-analysed).
    determined_bits: Vec<DenseSet<NodeId>>,
    /// Per-document answer bitset of the current candidate, refreshed per positive-count epoch.
    certain_bits: Vec<DenseSet<NodeId>>,
    /// Per-document pool of still-informative nodes: `all ∖ labelled ∖ determined ∖ certain`,
    /// maintained incrementally (full rebuild only when the candidate — and with it the certain
    /// region — changes, i.e. once per positive answer).
    pool: Vec<DenseSet<NodeId>>,
    /// The generalised spine of the current positive set, cached so each determined-negative
    /// check folds in exactly one more example instead of refolding every positive.
    epoch_spine: Option<crate::learn::CachedSpine>,
    /// Positive-label count the `certain_bits`/`epoch_spine` caches were computed for.
    known_positives: usize,
    /// Set once a generalised candidate swallows an earlier negative.
    inconsistent: bool,
}

impl TwigSession {
    /// Start a session over the given documents, building one [`NodeIndex`] per document.
    pub fn new(docs: Vec<XmlTree>, strategy: NodeStrategy, seed: u64) -> TwigSession {
        let indexes: Vec<NodeIndex> = docs.iter().map(NodeIndex::build).collect();
        TwigSession::with_shared(Arc::new(docs), Arc::new(indexes), strategy, seed)
    }

    /// Start a session over documents and indexes shared with other sessions (the
    /// multi-session workload driver hands every session the same two `Arc`s, so N concurrent
    /// sessions hold one copy of the corpus and its index).
    pub fn with_shared(
        docs: Arc<Vec<XmlTree>>,
        indexes: Arc<Vec<NodeIndex>>,
        strategy: NodeStrategy,
        seed: u64,
    ) -> TwigSession {
        TwigSession::with_config(
            docs,
            indexes,
            SessionConfig::new()
                .seed(seed)
                .strategy(strategy.strategy(seed)),
        )
    }

    /// Start a session from a [`SessionConfig`] (strategy, question budget, seed) — the
    /// primary constructor; the [`NodeStrategy`]-taking ones are presets over it. The default
    /// strategy is [`NodeStrategy::LabelAffinity`], the paper's flagship policy.
    pub fn with_config(
        docs: Arc<Vec<XmlTree>>,
        indexes: Arc<Vec<NodeIndex>>,
        config: SessionConfig,
    ) -> TwigSession {
        assert_eq!(
            docs.len(),
            indexes.len(),
            "one index per document is required"
        );
        let resolved = config.resolve(|seed| NodeStrategy::LabelAffinity.strategy(seed));
        let caches = RefCell::new(vec![EvalCache::new(); docs.len()]);
        let empty: Vec<DenseSet<NodeId>> = docs.iter().map(|d| DenseSet::new(d.size())).collect();
        let pool: Vec<DenseSet<NodeId>> = docs.iter().map(|d| DenseSet::full(d.size())).collect();
        TwigSession {
            docs,
            indexes,
            caches,
            annotations: Vec::new(),
            strategy: resolved.strategy,
            budget: resolved.budget,
            asked: 0,
            labelled_bits: empty.clone(),
            determined_bits: empty.clone(),
            certain_bits: empty,
            pool,
            epoch_spine: None,
            known_positives: 0,
            inconsistent: false,
        }
    }

    /// The name of the session's question-selection strategy (what per-strategy workload
    /// aggregates group by).
    pub fn strategy_name(&self) -> &str {
        self.strategy.name()
    }

    /// The documents the session ranges over.
    pub fn documents(&self) -> &[XmlTree] {
        &self.docs
    }

    /// The labels collected so far, in the order they were recorded.
    pub fn annotations(&self) -> &[Annotation] {
        &self.annotations
    }

    /// Indexed evaluation of `query` on document `doc`, through the session's per-document
    /// memo.
    fn eval_select(&self, query: &TwigQuery, doc: usize) -> Vec<NodeId> {
        let mut caches = self.caches.borrow_mut();
        eval_indexed::select_vec_with(query, &self.docs[doc], &self.indexes[doc], &mut caches[doc])
    }

    /// Indexed evaluation into a dense answer bitset, through the session's memo.
    fn eval_bits(&self, query: &TwigQuery, doc: usize) -> DenseSet<NodeId> {
        let mut caches = self.caches.borrow_mut();
        eval_indexed::select_bits_with(query, &self.docs[doc], &self.indexes[doc], &mut caches[doc])
    }

    /// Indexed membership test through the session's memo (the result bitset is recycled into
    /// the document's arena).
    fn eval_selects(&self, query: &TwigQuery, doc: usize, node: NodeId) -> bool {
        let mut caches = self.caches.borrow_mut();
        eval_indexed::selects_with(
            query,
            &self.docs[doc],
            &self.indexes[doc],
            &mut caches[doc],
            node,
        )
    }

    fn positives(&self) -> Vec<(usize, NodeId)> {
        self.annotations
            .iter()
            .filter(|a| a.positive)
            .map(|a| (a.doc, a.node))
            .collect()
    }

    /// Run the learner over the session's documents through its prebuilt indexes and
    /// long-lived sub-twig memos — the learner is invoked once per proposed node, so per-call
    /// index rebuilding would dominate the whole session.
    fn learn_shared(&self, examples: &[(usize, NodeId)]) -> Option<TwigQuery> {
        let mut caches = self.caches.borrow_mut();
        crate::learn::learn_from_positives_shared(examples, &self.docs, &self.indexes, &mut caches)
            .ok()
    }

    /// The current candidate: the most specific anchored twig consistent with the positives.
    pub fn candidate(&self) -> Option<TwigQuery> {
        let positives = self.positives();
        if positives.is_empty() {
            return None;
        }
        self.learn_shared(&positives)
    }

    /// Status of one node under the current candidate and labels.
    pub fn status(&self, doc: usize, node: NodeId) -> NodeStatus {
        for a in &self.annotations {
            if a.doc == doc && a.node == node {
                return if a.positive {
                    NodeStatus::LabelledPositive
                } else {
                    NodeStatus::LabelledNegative
                };
            }
        }
        if let Some(candidate) = self.candidate() {
            if self.eval_selects(&candidate, doc, node) {
                return NodeStatus::CertainPositive;
            }
        }
        NodeStatus::Informative
    }

    /// All still-informative nodes, as `(document index, node)` pairs.
    ///
    /// Conservative: excludes labelled nodes and certain positives but does *not* run the
    /// per-node determined-negative analysis (see [`Self::is_determined_negative`]), which
    /// [`Self::run`] additionally applies lazily to the nodes the strategy proposes. Callers
    /// driving a session by hand can apply the same check to skip further questions.
    pub fn informative_nodes(&self) -> Vec<(usize, NodeId)> {
        let candidate = self.candidate();
        let labelled: BTreeSet<(usize, NodeId)> =
            self.annotations.iter().map(|a| (a.doc, a.node)).collect();
        let mut out = Vec::new();
        for (doc_ix, doc) in self.docs.iter().enumerate() {
            let certain: Vec<NodeId> = match &candidate {
                Some(q) => self.eval_select(q, doc_ix),
                None => Vec::new(),
            };
            for node in doc.node_ids() {
                if !labelled.contains(&(doc_ix, node)) && certain.binary_search(&node).is_err() {
                    out.push((doc_ix, node));
                }
            }
        }
        out
    }

    /// Record a user-provided label.
    pub fn record(&mut self, doc: usize, node: NodeId, positive: bool) {
        assert!(doc < self.docs.len(), "document index out of range");
        assert!(
            node.index() < self.docs[doc].size(),
            "node id out of range for document"
        );
        self.annotations.push(Annotation {
            doc,
            node,
            positive,
        });
        self.labelled_bits[doc].insert(node);
        self.pool[doc].remove(node);
        self.asked += 1;
    }

    /// Whether `query` classifies every collected label correctly.
    fn classifies_all(&self, query: &TwigQuery) -> bool {
        let mut caches = self.caches.borrow_mut();
        (0..self.docs.len()).all(|doc_ix| {
            if self.annotations.iter().all(|a| a.doc != doc_ix) {
                return true;
            }
            eval_indexed::classifies_with(
                query,
                &self.docs[doc_ix],
                &self.indexes[doc_ix],
                &mut caches[doc_ix],
                self.annotations
                    .iter()
                    .filter(|a| a.doc == doc_ix)
                    .map(|a| (a.node, a.positive)),
            )
        })
    }

    /// Whether the labels collected so far admit a consistent anchored twig (the candidate from
    /// the positives must reject every labelled negative).
    pub fn is_consistent(&self) -> bool {
        match self.candidate() {
            None => true,
            Some(q) => self.classifies_all(&q),
        }
    }

    /// Whether `node`'s label is *determined* to be negative by the labels collected so far:
    /// no query of the learner's hypothesis class consistent with the current labels selects
    /// it, so asking about it cannot shrink the version space.
    ///
    /// Soundness: any hypothesis selecting `node` and all known positives is at least as
    /// general as the most specific anchored twig over `positives ∪ {node}`, hence selects all
    /// of that query's answers; if those answers include a labelled negative, every such
    /// hypothesis is inconsistent. The cheap spine-only query (a superset of the most specific
    /// query's answers) is used as a pre-filter so the full filter-harvesting learner only runs
    /// on nodes that might actually be pruned.
    ///
    /// The version space this argues over is the *practical* class
    /// [`learn_from_positives`](crate::learn::learn_from_positives) searches (spine plus single-label child/descendant filters),
    /// in which it returns the most specific element. Goal queries outside that class (e.g.
    /// with nested multi-step predicates) can in principle have answers pruned here — but the
    /// learner could never converge to such a goal anyway, so the session loses nothing it
    /// could have used.
    ///
    /// The check is skipped (returns `false`) until at least one positive *and* one negative
    /// label exist: with no positives there is nothing to generalise against, and with no
    /// negatives nothing can contradict.
    pub fn is_determined_negative(&self, doc: usize, node: NodeId) -> bool {
        let positives = self.positives();
        if positives.is_empty() {
            return false;
        }
        let negatives: Vec<(usize, NodeId)> = self
            .annotations
            .iter()
            .filter(|a| !a.positive)
            .map(|a| (a.doc, a.node))
            .collect();
        if negatives.is_empty() {
            return false;
        }
        // The fold of the positives' label paths: taken from the per-epoch cache when it is
        // current (the hot path — `propose` refreshes it on every positive), refolded from
        // scratch otherwise (callers driving the session by hand between answers).
        let base_spine = match &self.epoch_spine {
            Some(spine) if positives.len() == self.known_positives => spine.clone(),
            _ => {
                let example_refs: Vec<(&XmlTree, NodeId)> =
                    positives.iter().map(|&(d, n)| (&self.docs[d], n)).collect();
                crate::learn::generalised_spine(&example_refs)
                    .expect("learning from a non-empty example set cannot fail")
            }
        };
        // One more fold step gives the spine over `positives ∪ {node}`.
        let extended_spine = base_spine.extended(&self.docs[doc], node);
        let spine_only = extended_spine.path_query();
        if !self.selects_any(&spine_only, &negatives) {
            // Even the loosest consistent generalisation misses every negative: informative.
            return false;
        }
        let mut extended = positives;
        extended.push((doc, node));
        let most_specific = {
            let mut caches = self.caches.borrow_mut();
            crate::learn::learn_from_positives_shared_with_spine(
                &extended_spine,
                &extended,
                &self.docs,
                &self.indexes,
                &mut caches,
            )
            .expect("learning from a non-empty example set cannot fail")
        };
        self.selects_any(&most_specific, &negatives)
    }

    /// Whether `query` selects any of the given `(doc, node)` pairs — one indexed evaluation
    /// per *distinct document* (not per pair), then a bit test per pair. The result bitsets go
    /// back to their documents' arenas afterwards.
    fn selects_any(&self, query: &TwigQuery, pairs: &[(usize, NodeId)]) -> bool {
        let mut evaluated: Vec<Option<DenseSet<NodeId>>> = vec![None; self.docs.len()];
        let hit = pairs.iter().any(|&(d, m)| {
            evaluated[d]
                .get_or_insert_with(|| self.eval_bits(query, d))
                .contains(m)
        });
        let mut caches = self.caches.borrow_mut();
        for (doc_ix, bits) in evaluated.into_iter().enumerate() {
            if let Some(bits) = bits {
                caches[doc_ix].recycle(bits);
            }
        }
        hit
    }

    /// Affinity bonus separating "label matches a known positive" from every depth value in
    /// the informativeness channel (document depths are far below it).
    const AFFINITY_BONUS: f64 = 1e9;

    /// One [`Candidate`] feature row per informative node, aligned with `informative` (which
    /// is in document order — the model's paper order):
    ///
    /// * `informativeness` — the label-affinity score (matching a positive label dominates;
    ///   shallower nodes rank higher within each class), exactly the paper-era comparator;
    /// * `cost` — node depth (shallow nodes are cheap for the user to inspect);
    /// * `coverage` — how many informative nodes share the candidate's label: a proxy for the
    ///   matches one answer determines, since same-labelled nodes under the same spine become
    ///   certain positives (or determined negatives) together once this one is labelled.
    fn candidate_features(&self, informative: &[(usize, NodeId)]) -> Vec<Candidate> {
        let positive_labels: BTreeSet<&str> = self
            .annotations
            .iter()
            .filter(|a| a.positive)
            .map(|a| self.docs[a.doc].label(a.node))
            .collect();
        let mut label_counts: BTreeMap<&str, usize> = BTreeMap::new();
        for &(doc, node) in informative {
            *label_counts.entry(self.docs[doc].label(node)).or_insert(0) += 1;
        }
        informative
            .iter()
            .map(|&(doc, node)| {
                let label = self.docs[doc].label(node);
                let depth = self.indexes[doc].depth(node) as f64;
                let bonus = if positive_labels.contains(label) {
                    Self::AFFINITY_BONUS
                } else {
                    0.0
                };
                Candidate {
                    informativeness: bonus - depth,
                    cost: depth,
                    coverage: label_counts[label] as f64,
                    specificity: 0.0,
                    prior: 0.0,
                }
            })
            .collect()
    }

    /// Propose the next node to ask the user about, or `None` when the session is over (every
    /// node is labelled or pruned, or the labels became inconsistent).
    ///
    /// Each call recomputes the still-informative nodes (pruning certain positives and
    /// determined negatives) and returns the strategy's preferred one. The candidate — and with
    /// it the certain-positive set — only changes when a new positive arrives, so it is cached
    /// per positive-count epoch; determined-negative checks run lazily, only on nodes the
    /// strategy actually proposes. Callers alternate `propose` and [`Self::record`]: drivers
    /// serving one question at a time (the `qbe-core` session adapters, the `qbe-server` wire
    /// protocol) call them round by round, [`Self::run`] loops to completion.
    pub fn propose(&mut self) -> Option<(usize, NodeId)> {
        if self.inconsistent {
            return None;
        }
        if self.budget.is_some_and(|cap| self.asked >= cap) {
            return None;
        }
        let positives_now = self.annotations.iter().filter(|a| a.positive).count();
        if positives_now != self.known_positives {
            self.known_positives = positives_now;
            // Refresh the per-epoch caches: the candidate's answer region and the generalised
            // spine its determined-negative checks extend.
            let candidate = self.candidate();
            for doc_ix in 0..self.docs.len() {
                match &candidate {
                    Some(q) => {
                        let bits = self.eval_bits(q, doc_ix);
                        self.certain_bits[doc_ix] = bits;
                    }
                    None => self.certain_bits[doc_ix].clear(),
                }
            }
            let example_refs: Vec<(&XmlTree, NodeId)> = self
                .annotations
                .iter()
                .filter(|a| a.positive)
                .map(|a| (&self.docs[a.doc], a.node))
                .collect();
            self.epoch_spine = crate::learn::generalised_spine(&example_refs).ok();
            // A generalised candidate may have swallowed an earlier negative: the labels no
            // longer admit a consistent anchored twig, matching `is_consistent`.
            if self
                .annotations
                .iter()
                .any(|a| !a.positive && self.certain_bits[a.doc].contains(a.node))
            {
                self.inconsistent = true;
                return None;
            }
            // The certain region moved, so the pool is rebuilt by set difference:
            // `all ∖ labelled ∖ determined ∖ certain`, a few words per document.
            for (doc_ix, doc) in self.docs.iter().enumerate() {
                let pool = &mut self.pool[doc_ix];
                *pool = DenseSet::full(doc.size());
                pool.and_not_with(&self.labelled_bits[doc_ix]);
                pool.and_not_with(&self.determined_bits[doc_ix]);
                pool.and_not_with(&self.certain_bits[doc_ix]);
            }
        }

        let mut informative: Vec<(usize, NodeId)> = Vec::new();
        for (doc_ix, pool) in self.pool.iter().enumerate() {
            informative.extend(pool.iter().map(|node| (doc_ix, node)));
        }

        // Consult the pluggable strategy; determined-negative analysis runs lazily, only on
        // the nodes it actually proposes, and proven-negative nodes are pruned from the pool
        // before asking again.
        loop {
            let candidates = self.candidate_features(&informative);
            let view = PoolView {
                asked: self.asked,
                candidates: &candidates,
            };
            let pick_ix = self.strategy.pick(&view)?;
            // An out-of-range pick (a strategy bug, or a deliberate early stop) ends the
            // session rather than panicking the service.
            let pick = *informative.get(pick_ix)?;
            if self.is_determined_negative(pick.0, pick.1) {
                self.determined_bits[pick.0].insert(pick.1);
                self.pool[pick.0].remove(pick.1);
                informative.remove(pick_ix);
                continue;
            }
            return Some(pick);
        }
    }

    /// The session's *incremental* candidate pool: the nodes [`Self::propose`] currently offers
    /// its strategy, i.e. [`Self::informative_nodes`] minus the determined negatives proven so
    /// far (the incremental path discovers those lazily, only on proposed nodes). Exposed so
    /// the differential suites can pin the incremental pool against the from-scratch
    /// specification round by round.
    pub fn informative_pool(&self) -> Vec<(usize, NodeId)> {
        let mut out = Vec::new();
        for (doc_ix, pool) in self.pool.iter().enumerate() {
            out.extend(pool.iter().map(|node| (doc_ix, node)));
        }
        out
    }

    /// The nodes proven determined-negative so far (lazily, on proposal), as
    /// `(document, node)` pairs — the exact difference between [`Self::informative_nodes`] and
    /// [`Self::informative_pool`].
    pub fn determined_negative_nodes(&self) -> Vec<(usize, NodeId)> {
        let mut out = Vec::new();
        for (doc_ix, bits) in self.determined_bits.iter().enumerate() {
            out.extend(bits.iter().map(|node| (doc_ix, node)));
        }
        out
    }

    /// Total node count across the session's documents (the denominator of the pruning ratio).
    pub fn total_nodes(&self) -> usize {
        self.docs.iter().map(XmlTree::size).sum()
    }

    /// Answer-set size of the current candidate over the whole corpus, through the indexed
    /// evaluator (0 when no positive has been labelled yet).
    pub fn candidate_answer_count(&self) -> usize {
        match self.candidate() {
            None => 0,
            Some(q) => (0..self.docs.len())
                .map(|doc_ix| self.eval_select(&q, doc_ix).len())
                .sum(),
        }
    }

    /// Whether the collected labels still admit a consistent anchored twig — the `consistent`
    /// field of [`Self::outcome`] without materialising the whole outcome (callers polling
    /// consistency per round, like the serving layer, avoid the extra candidate relearn the
    /// outcome's `query` field would cost).
    pub fn consistent(&self) -> bool {
        !self.inconsistent && self.is_consistent()
    }

    /// The session's result so far. Final once [`Self::propose`] has returned `None`.
    pub fn outcome(&self) -> TwigSessionOutcome {
        let total_nodes = self.total_nodes();
        let interactions = self.asked;
        TwigSessionOutcome {
            query: self.candidate(),
            interactions,
            pruned: total_nodes - interactions,
            total_nodes,
            consistent: self.consistent(),
        }
    }

    /// Run the session to completion against an oracle: alternate [`Self::propose`] and
    /// [`Self::record`] until no informative node remains.
    pub fn run(mut self, oracle: &mut dyn NodeOracle) -> TwigSessionOutcome {
        while let Some((doc, node)) = self.propose() {
            let label = oracle.label(doc, node);
            self.record(doc, node, label);
        }
        self.outcome()
    }
}

/// Convenience wrapper: learn a hidden goal query interactively over the given documents.
pub fn interactive_twig_learn(
    docs: &[XmlTree],
    goal: &TwigQuery,
    strategy: NodeStrategy,
    seed: u64,
) -> TwigSessionOutcome {
    let mut oracle = GoalNodeOracle::new(docs, goal.clone());
    let session = TwigSession::new(docs.to_vec(), strategy, seed);
    session.run(&mut oracle)
}

/// [`interactive_twig_learn`] with a full [`SessionConfig`] (pluggable strategy, question
/// budget) instead of a [`NodeStrategy`] preset.
pub fn interactive_twig_learn_config(
    docs: &[XmlTree],
    goal: &TwigQuery,
    config: SessionConfig,
) -> TwigSessionOutcome {
    let mut oracle = GoalNodeOracle::new(docs, goal.clone());
    let owned = docs.to_vec();
    let indexes: Vec<NodeIndex> = owned.iter().map(NodeIndex::build).collect();
    let session = TwigSession::with_config(Arc::new(owned), Arc::new(indexes), config);
    session.run(&mut oracle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::equivalent_on;
    use crate::xpath::parse_xpath;
    use qbe_xml::parse_xml;

    fn auction_doc() -> XmlTree {
        parse_xml(
            "<site><regions><europe><item><name>i1</name><payment>cash</payment></item>\
             <item><name>i2</name></item></europe><asia><item><name>i3</name>\
             <payment>card</payment></item></asia></regions>\
             <people><person><name>p1</name></person></people></site>",
        )
        .unwrap()
    }

    fn goal() -> TwigQuery {
        parse_xpath("//item/name").unwrap()
    }

    #[test]
    fn session_learns_goal_equivalent_query() {
        let docs = vec![auction_doc()];
        let outcome = interactive_twig_learn(&docs, &goal(), NodeStrategy::LabelAffinity, 7);
        assert!(outcome.consistent);
        let learned = outcome.query.expect("a query must be learned");
        assert!(
            equivalent_on(&learned, &goal(), &docs),
            "learned {}",
            learned.to_xpath()
        );
    }

    #[test]
    fn every_strategy_terminates_and_stays_consistent() {
        let docs = vec![auction_doc()];
        for strategy in [
            NodeStrategy::DocumentOrder,
            NodeStrategy::Random,
            NodeStrategy::ShallowFirst,
            NodeStrategy::LabelAffinity,
        ] {
            let outcome = interactive_twig_learn(&docs, &goal(), strategy, 3);
            assert!(outcome.consistent, "{strategy:?}");
            assert!(outcome.interactions <= outcome.total_nodes, "{strategy:?}");
            assert!(outcome.query.is_some(), "{strategy:?}");
        }
    }

    #[test]
    fn pruning_saves_interactions() {
        let docs = vec![auction_doc()];
        let outcome = interactive_twig_learn(&docs, &goal(), NodeStrategy::LabelAffinity, 11);
        assert!(
            outcome.pruned > 0,
            "at least the certainly-positive nodes must be pruned: {outcome}"
        );
        assert!(outcome.interactions < outcome.total_nodes);
    }

    #[test]
    fn interactions_never_exceed_total_nodes() {
        let docs = vec![auction_doc(), auction_doc()];
        let outcome = interactive_twig_learn(&docs, &goal(), NodeStrategy::DocumentOrder, 0);
        assert!(outcome.interactions <= outcome.total_nodes);
        assert_eq!(
            outcome.total_nodes,
            docs.iter().map(XmlTree::size).sum::<usize>()
        );
    }

    #[test]
    fn status_reflects_labels_and_candidate() {
        let docs = vec![auction_doc()];
        let mut session = TwigSession::new(docs.clone(), NodeStrategy::DocumentOrder, 0);
        let selected: Vec<NodeId> = eval::select(&goal(), &docs[0]).into_iter().collect();
        let first = selected[0];
        assert_eq!(session.status(0, first), NodeStatus::Informative);
        session.record(0, first, true);
        assert_eq!(session.status(0, first), NodeStatus::LabelledPositive);
        // After one positive the candidate is the most specific description of that node: the
        // node itself is labelled, other selected nodes may or may not be certain yet, but a
        // clearly unrelated node (the root) must stay informative or be labelled.
        assert_ne!(
            session.status(0, XmlTree::ROOT),
            NodeStatus::CertainPositive
        );
    }

    #[test]
    fn empty_goal_answer_set_yields_no_query() {
        let docs = vec![auction_doc()];
        let goal = parse_xpath("//nonexistent").unwrap();
        let outcome = interactive_twig_learn(&docs, &goal, NodeStrategy::DocumentOrder, 0);
        assert!(outcome.query.is_none());
        assert!(outcome.consistent);
        assert_eq!(
            outcome.interactions, outcome.total_nodes,
            "nothing can be pruned"
        );
    }

    #[test]
    fn oracle_counts_questions() {
        let docs = vec![auction_doc()];
        let mut oracle = GoalNodeOracle::new(&docs, goal());
        let session = TwigSession::new(docs.clone(), NodeStrategy::ShallowFirst, 5);
        let outcome = session.run(&mut oracle);
        assert_eq!(oracle.questions_asked(), outcome.interactions);
    }

    #[test]
    fn interactive_beats_exhaustive_labelling_on_larger_corpora() {
        let docs = vec![auction_doc(), auction_doc(), auction_doc()];
        let outcome = interactive_twig_learn(&docs, &goal(), NodeStrategy::LabelAffinity, 1);
        let exhaustive: usize = docs.iter().map(XmlTree::size).sum();
        assert!(
            outcome.interactions < exhaustive,
            "interactive ({}) must ask fewer questions than labelling every node ({})",
            outcome.interactions,
            exhaustive
        );
    }

    #[test]
    fn shared_documents_and_indexes_are_not_recopied() {
        let docs = Arc::new(vec![auction_doc()]);
        let indexes = Arc::new(docs.iter().map(NodeIndex::build).collect::<Vec<_>>());
        let s1 = TwigSession::with_shared(
            docs.clone(),
            indexes.clone(),
            NodeStrategy::LabelAffinity,
            1,
        );
        let s2 = TwigSession::with_shared(
            docs.clone(),
            indexes.clone(),
            NodeStrategy::DocumentOrder,
            2,
        );
        // Three owners: the two sessions and the local handle.
        assert_eq!(Arc::strong_count(&docs), 3);
        let mut oracle = GoalNodeOracle::new(&docs, goal());
        let o1 = s1.run(&mut oracle);
        let o2 = s2.run(&mut oracle);
        assert!(o1.consistent && o2.consistent);
        assert!(o1.query.is_some() && o2.query.is_some());
    }
}
