//! Interactive twig-query learning: propose nodes, collect labels, prune uninformative nodes.
//!
//! The paper closes its XML section with *"We also want to develop a practical system able to
//! learn twig queries from interaction with the user."* (§2). This module is that system, built
//! on the same protocol the relational and graph crates use: the learner repeatedly proposes an
//! unlabelled document node, the user (an [`NodeOracle`], simulated from a hidden goal query in
//! the experiments) labels it positive or negative, and after every answer the learner prunes
//! every node whose label has become *uninformative*.
//!
//! The pruning rule exploits the structure of anchored-twig learning from positive examples: the
//! candidate returned by [`learn_from_positives`](crate::learn::learn_from_positives) is the
//! *most specific* anchored twig consistent with the positives, so **every** anchored twig
//! consistent with them selects at least the candidate's answers. A node already selected by the
//! candidate therefore has a certain (positive) label under every remaining hypothesis and asking
//! about it cannot shrink the version space — it is pruned. Nodes outside the candidate's answer
//! set remain informative: a positive label generalises the candidate, a negative label constrains
//! the final query.
//!
//! The session stops when every node is labelled or pruned, and reports the learned query, the
//! number of interactions (the quantity the paper wants to minimise) and the number of labels the
//! pruning saved.

use std::collections::BTreeSet;
use std::fmt;

use qbe_xml::{NodeId, XmlTree};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::eval;
use crate::example::ExampleSet;
use crate::learn::learn_from_positives;
use crate::query::TwigQuery;

/// The answer source for node-labelling questions.
pub trait NodeOracle {
    /// Label the node `node` of document `doc` (index into the session's document list).
    fn label(&mut self, doc: usize, node: NodeId) -> bool;
}

/// Oracle answering according to a hidden goal query, counting the questions it receives.
#[derive(Debug, Clone)]
pub struct GoalNodeOracle<'a> {
    docs: &'a [XmlTree],
    goal: TwigQuery,
    questions: usize,
}

impl<'a> GoalNodeOracle<'a> {
    /// Create an oracle for a hidden goal query over the given documents.
    pub fn new(docs: &'a [XmlTree], goal: TwigQuery) -> GoalNodeOracle<'a> {
        GoalNodeOracle { docs, goal, questions: 0 }
    }

    /// Number of questions answered so far.
    pub fn questions_asked(&self) -> usize {
        self.questions
    }

    /// The hidden goal.
    pub fn goal(&self) -> &TwigQuery {
        &self.goal
    }
}

impl NodeOracle for GoalNodeOracle<'_> {
    fn label(&mut self, doc: usize, node: NodeId) -> bool {
        self.questions += 1;
        eval::selects(&self.goal, &self.docs[doc], node)
    }
}

/// Strategy used to pick the next informative node to ask about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeStrategy {
    /// Document order (depth-first, first document first) — the naive baseline.
    DocumentOrder,
    /// Uniformly random among the informative nodes.
    Random,
    /// Shallow nodes first: cheap questions whose answers constrain the query's spine early.
    ShallowFirst,
    /// Prefer nodes whose label equals the label of an already-known positive node: such nodes
    /// are the most likely to be selected by the goal, and a positive answer generalises the
    /// candidate (the paper's "gather as much information as possible with few interactions").
    LabelAffinity,
}

/// How one document node is currently classified by the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeStatus {
    /// The user labelled it positive.
    LabelledPositive,
    /// The user labelled it negative.
    LabelledNegative,
    /// Selected by the current candidate, hence certainly positive — pruned.
    CertainPositive,
    /// Still informative: asking about it would refine the hypothesis space.
    Informative,
}

/// Outcome of an interactive twig-learning session.
#[derive(Debug, Clone)]
pub struct TwigSessionOutcome {
    /// The learned query (None when no positive node was found at all).
    pub query: Option<TwigQuery>,
    /// Number of questions asked.
    pub interactions: usize,
    /// Number of nodes whose label was inferred (pruned) rather than asked.
    pub pruned: usize,
    /// Total number of nodes across all documents.
    pub total_nodes: usize,
    /// Whether the collected labels remained consistent with some anchored twig.
    pub consistent: bool,
}

impl fmt::Display for TwigSessionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} interactions, {} pruned of {} nodes, query: {}",
            self.interactions,
            self.pruned,
            self.total_nodes,
            self.query.as_ref().map(|q| q.to_xpath()).unwrap_or_else(|| "(none)".to_string())
        )
    }
}

/// An in-progress interactive twig-learning session.
#[derive(Debug, Clone)]
pub struct TwigSession {
    docs: Vec<XmlTree>,
    examples: ExampleSet,
    strategy: NodeStrategy,
    seed: u64,
    asked: usize,
}

impl TwigSession {
    /// Start a session over the given documents.
    pub fn new(docs: Vec<XmlTree>, strategy: NodeStrategy, seed: u64) -> TwigSession {
        let mut examples = ExampleSet::new();
        let mut stored = Vec::with_capacity(docs.len());
        for doc in docs {
            let ix = examples.add_document(doc.clone());
            debug_assert_eq!(ix, stored.len());
            stored.push(doc);
        }
        TwigSession { docs: stored, examples, strategy, seed, asked: 0 }
    }

    /// The documents the session ranges over.
    pub fn documents(&self) -> &[XmlTree] {
        &self.docs
    }

    /// The labels collected so far.
    pub fn examples(&self) -> &ExampleSet {
        &self.examples
    }

    /// The current candidate: the most specific anchored twig consistent with the positives.
    pub fn candidate(&self) -> Option<TwigQuery> {
        let positives = self.examples.positives();
        if positives.is_empty() {
            return None;
        }
        learn_from_positives(&positives).ok()
    }

    /// Status of one node under the current candidate and labels.
    pub fn status(&self, doc: usize, node: NodeId) -> NodeStatus {
        for a in self.examples.annotations() {
            if a.doc == doc && a.node == node {
                return if a.positive {
                    NodeStatus::LabelledPositive
                } else {
                    NodeStatus::LabelledNegative
                };
            }
        }
        if let Some(candidate) = self.candidate() {
            if eval::selects(&candidate, &self.docs[doc], node) {
                return NodeStatus::CertainPositive;
            }
        }
        NodeStatus::Informative
    }

    /// All still-informative nodes, as `(document index, node)` pairs.
    pub fn informative_nodes(&self) -> Vec<(usize, NodeId)> {
        let candidate = self.candidate();
        let labelled: BTreeSet<(usize, NodeId)> =
            self.examples.annotations().iter().map(|a| (a.doc, a.node)).collect();
        let mut out = Vec::new();
        for (doc_ix, doc) in self.docs.iter().enumerate() {
            let certain: BTreeSet<NodeId> = match &candidate {
                Some(q) => eval::select(q, doc),
                None => BTreeSet::new(),
            };
            for node in doc.node_ids() {
                if !labelled.contains(&(doc_ix, node)) && !certain.contains(&node) {
                    out.push((doc_ix, node));
                }
            }
        }
        out
    }

    /// Record a user-provided label.
    pub fn record(&mut self, doc: usize, node: NodeId, positive: bool) {
        self.examples.annotate(doc, node, positive);
        self.asked += 1;
    }

    /// Whether the labels collected so far admit a consistent anchored twig (the candidate from
    /// the positives must reject every labelled negative).
    pub fn is_consistent(&self) -> bool {
        match self.candidate() {
            None => true,
            Some(q) => self.examples.consistent_with(&q),
        }
    }

    fn pick_next(&self, informative: &[(usize, NodeId)]) -> Option<(usize, NodeId)> {
        if informative.is_empty() {
            return None;
        }
        match self.strategy {
            NodeStrategy::DocumentOrder => Some(informative[0]),
            NodeStrategy::Random => {
                let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(self.asked as u64));
                let mut pool: Vec<(usize, NodeId)> = informative.to_vec();
                pool.shuffle(&mut rng);
                pool.first().copied()
            }
            NodeStrategy::ShallowFirst => informative
                .iter()
                .min_by_key(|(doc, node)| self.docs[*doc].depth(*node))
                .copied(),
            NodeStrategy::LabelAffinity => {
                let positive_labels: BTreeSet<&str> = self
                    .examples
                    .annotations()
                    .iter()
                    .filter(|a| a.positive)
                    .map(|a| self.docs[a.doc].label(a.node))
                    .collect();
                informative
                    .iter()
                    .max_by_key(|(doc, node)| {
                        let label = self.docs[*doc].label(*node);
                        (positive_labels.contains(label), std::cmp::Reverse(self.docs[*doc].depth(*node)))
                    })
                    .copied()
            }
        }
    }

    /// Run the session to completion against an oracle.
    pub fn run(mut self, oracle: &mut dyn NodeOracle) -> TwigSessionOutcome {
        let total_nodes: usize = self.docs.iter().map(XmlTree::size).sum();
        loop {
            let informative = self.informative_nodes();
            let Some((doc, node)) = self.pick_next(&informative) else { break };
            let label = oracle.label(doc, node);
            self.record(doc, node, label);
            if !self.is_consistent() {
                break;
            }
        }
        let consistent = self.is_consistent();
        let interactions = self.asked;
        let pruned = total_nodes - interactions;
        TwigSessionOutcome {
            query: self.candidate(),
            interactions,
            pruned,
            total_nodes,
            consistent,
        }
    }
}

/// Convenience wrapper: learn a hidden goal query interactively over the given documents.
pub fn interactive_twig_learn(
    docs: &[XmlTree],
    goal: &TwigQuery,
    strategy: NodeStrategy,
    seed: u64,
) -> TwigSessionOutcome {
    let mut oracle = GoalNodeOracle::new(docs, goal.clone());
    let session = TwigSession::new(docs.to_vec(), strategy, seed);
    session.run(&mut oracle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::equivalent_on;
    use crate::xpath::parse_xpath;
    use qbe_xml::parse_xml;

    fn auction_doc() -> XmlTree {
        parse_xml(
            "<site><regions><europe><item><name>i1</name><payment>cash</payment></item>\
             <item><name>i2</name></item></europe><asia><item><name>i3</name>\
             <payment>card</payment></item></asia></regions>\
             <people><person><name>p1</name></person></people></site>",
        )
        .unwrap()
    }

    fn goal() -> TwigQuery {
        parse_xpath("//item/name").unwrap()
    }

    #[test]
    fn session_learns_goal_equivalent_query() {
        let docs = vec![auction_doc()];
        let outcome = interactive_twig_learn(&docs, &goal(), NodeStrategy::LabelAffinity, 7);
        assert!(outcome.consistent);
        let learned = outcome.query.expect("a query must be learned");
        assert!(equivalent_on(&learned, &goal(), &docs), "learned {}", learned.to_xpath());
    }

    #[test]
    fn every_strategy_terminates_and_stays_consistent() {
        let docs = vec![auction_doc()];
        for strategy in [
            NodeStrategy::DocumentOrder,
            NodeStrategy::Random,
            NodeStrategy::ShallowFirst,
            NodeStrategy::LabelAffinity,
        ] {
            let outcome = interactive_twig_learn(&docs, &goal(), strategy, 3);
            assert!(outcome.consistent, "{strategy:?}");
            assert!(outcome.interactions <= outcome.total_nodes, "{strategy:?}");
            assert!(outcome.query.is_some(), "{strategy:?}");
        }
    }

    #[test]
    fn pruning_saves_interactions() {
        let docs = vec![auction_doc()];
        let outcome = interactive_twig_learn(&docs, &goal(), NodeStrategy::LabelAffinity, 11);
        assert!(
            outcome.pruned > 0,
            "at least the certainly-positive nodes must be pruned: {outcome}"
        );
        assert!(outcome.interactions < outcome.total_nodes);
    }

    #[test]
    fn interactions_never_exceed_total_nodes() {
        let docs = vec![auction_doc(), auction_doc()];
        let outcome = interactive_twig_learn(&docs, &goal(), NodeStrategy::DocumentOrder, 0);
        assert!(outcome.interactions <= outcome.total_nodes);
        assert_eq!(outcome.total_nodes, docs.iter().map(XmlTree::size).sum::<usize>());
    }

    #[test]
    fn status_reflects_labels_and_candidate() {
        let docs = vec![auction_doc()];
        let mut session = TwigSession::new(docs.clone(), NodeStrategy::DocumentOrder, 0);
        let selected: Vec<NodeId> = eval::select(&goal(), &docs[0]).into_iter().collect();
        let first = selected[0];
        assert_eq!(session.status(0, first), NodeStatus::Informative);
        session.record(0, first, true);
        assert_eq!(session.status(0, first), NodeStatus::LabelledPositive);
        // After one positive the candidate is the most specific description of that node: the
        // node itself is labelled, other selected nodes may or may not be certain yet, but a
        // clearly unrelated node (the root) must stay informative or be labelled.
        assert_ne!(session.status(0, XmlTree::ROOT), NodeStatus::CertainPositive);
    }

    #[test]
    fn empty_goal_answer_set_yields_no_query() {
        let docs = vec![auction_doc()];
        let goal = parse_xpath("//nonexistent").unwrap();
        let outcome = interactive_twig_learn(&docs, &goal, NodeStrategy::DocumentOrder, 0);
        assert!(outcome.query.is_none());
        assert!(outcome.consistent);
        assert_eq!(outcome.interactions, outcome.total_nodes, "nothing can be pruned");
    }

    #[test]
    fn oracle_counts_questions() {
        let docs = vec![auction_doc()];
        let mut oracle = GoalNodeOracle::new(&docs, goal());
        let session = TwigSession::new(docs.clone(), NodeStrategy::ShallowFirst, 5);
        let outcome = session.run(&mut oracle);
        assert_eq!(oracle.questions_asked(), outcome.interactions);
    }

    #[test]
    fn interactive_beats_exhaustive_labelling_on_larger_corpora() {
        let docs = vec![auction_doc(), auction_doc(), auction_doc()];
        let outcome = interactive_twig_learn(&docs, &goal(), NodeStrategy::LabelAffinity, 1);
        let exhaustive: usize = docs.iter().map(XmlTree::size).sum();
        assert!(
            outcome.interactions < exhaustive,
            "interactive ({}) must ask fewer questions than labelling every node ({})",
            outcome.interactions,
            exhaustive
        );
    }
}
