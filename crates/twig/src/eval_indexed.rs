//! Indexed twig-query evaluation: postings intersection with memoised sub-twig matches.
//!
//! [`crate::eval`] answers each query by filling a dense `|query| × |document|` boolean table —
//! robust, but every evaluation walks the whole document even when the query's labels are rare.
//! The interactive learners evaluate thousands of candidate queries against the same documents,
//! which makes that walk the hot path of the whole reproduction.
//!
//! This module evaluates against a prebuilt [`NodeIndex`] instead:
//!
//! * each query node starts from the **postings list** of its label (all nodes for `*`), so the
//!   work is proportional to the number of *candidate* nodes, not the document size;
//! * child/descendant structure is enforced by **sorted-list intersection**: a child-axis edge
//!   intersects with the parents of the child's matches, a descendant-axis edge with their
//!   proper-ancestor closure (computed once per edge with a visited bitmap);
//! * structurally identical sub-twigs (the same filter attached at several spine positions, or
//!   re-asked across calls) are **memoised** by their canonical encoding in an [`EvalCache`],
//!   so a session that evaluates many near-identical candidates pays for each distinct filter
//!   once per document.
//!
//! The differential property suites (`crates/twig/tests/prop_eval_indexed.rs`) pin
//! `select`/`selects`/`count` here to be extensionally equal to [`crate::eval`] on hundreds of
//! random documents and queries.

use crate::query::{Axis, QNodeId, TwigQuery};
use qbe_xml::{NodeId, NodeIndex, XmlTree};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Cross-call memo of sub-twig match sets for **one document**.
///
/// Keys are canonical sub-twig encodings (label + sorted children with axes), values the sorted
/// list of document nodes where that sub-twig can embed. The cache never needs invalidation:
/// documents and indexes are immutable. Reusing a cache with a different document is a logic
/// error; [`Evaluator`] ties the three together so callers cannot mix them up.
#[derive(Debug, Clone, Default)]
pub struct EvalCache {
    /// `Arc` so a cache hit is a reference bump, not a copy of the match list — and so the
    /// cache stays `Send` for sessions handed across `SessionPool` worker threads.
    match_sets: HashMap<String, Arc<Vec<NodeId>>>,
}

impl EvalCache {
    /// An empty cache.
    pub fn new() -> EvalCache {
        EvalCache::default()
    }

    /// Number of memoised sub-twig match sets.
    pub fn len(&self) -> usize {
        self.match_sets.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.match_sets.is_empty()
    }
}

/// One document, its index, and the memo of sub-twig matches — the unit a session keeps per
/// document and reuses across every candidate evaluation.
#[derive(Debug, Clone)]
pub struct Evaluator<'a> {
    doc: &'a XmlTree,
    index: &'a NodeIndex,
    cache: EvalCache,
}

impl<'a> Evaluator<'a> {
    /// Wrap a document and its prebuilt index.
    pub fn new(doc: &'a XmlTree, index: &'a NodeIndex) -> Evaluator<'a> {
        debug_assert_eq!(
            doc.size(),
            index.node_count(),
            "index built for another tree"
        );
        Evaluator {
            doc,
            index,
            cache: EvalCache::new(),
        }
    }

    /// The document this evaluator answers for.
    pub fn document(&self) -> &'a XmlTree {
        self.doc
    }

    /// Evaluate: all document nodes selected by some embedding (ascending id order).
    pub fn select_vec(&mut self, query: &TwigQuery) -> Vec<NodeId> {
        select_spine(query, self.doc, self.index, &mut self.cache)
    }

    /// Evaluate into the same set type [`crate::eval::select`] returns.
    pub fn select(&mut self, query: &TwigQuery) -> BTreeSet<NodeId> {
        self.select_vec(query).into_iter().collect()
    }

    /// Whether the query selects the given node.
    pub fn selects(&mut self, query: &TwigQuery, node: NodeId) -> bool {
        self.select_vec(query).binary_search(&node).is_ok()
    }

    /// Number of selected nodes, without materialising a set.
    pub fn count(&mut self, query: &TwigQuery) -> usize {
        self.select_vec(query).len()
    }

    /// Whether the query selects at least one node.
    pub fn matches(&mut self, query: &TwigQuery) -> bool {
        !self.select_vec(query).is_empty()
    }
}

/// Indexed evaluation against an externally owned memo: the sorted answer list. This is the
/// entry point for sessions that keep one [`EvalCache`] per document across many candidate
/// queries without holding a borrow of the document (see `TwigSession`).
pub fn select_vec_with(
    query: &TwigQuery,
    doc: &XmlTree,
    index: &NodeIndex,
    cache: &mut EvalCache,
) -> Vec<NodeId> {
    select_spine(query, doc, index, cache)
}

/// Membership variant of [`select_vec_with`].
pub fn selects_with(
    query: &TwigQuery,
    doc: &XmlTree,
    index: &NodeIndex,
    cache: &mut EvalCache,
    node: NodeId,
) -> bool {
    select_vec_with(query, doc, index, cache)
        .binary_search(&node)
        .is_ok()
}

/// Whether `query` classifies every `(node, expected)` label of one document correctly: one
/// indexed evaluation, then a binary search per label. The consistency checkers
/// (`ExampleSet::consistent_with`, `TwigSession`) all funnel through this.
pub fn classifies_with(
    query: &TwigQuery,
    doc: &XmlTree,
    index: &NodeIndex,
    cache: &mut EvalCache,
    labels: impl IntoIterator<Item = (NodeId, bool)>,
) -> bool {
    let selected = select_vec_with(query, doc, index, cache);
    labels
        .into_iter()
        .all(|(node, expected)| selected.binary_search(&node).is_ok() == expected)
}

/// One-shot indexed evaluation (fresh memo). Sessions should hold an [`Evaluator`] or an
/// [`EvalCache`] instead so the memo survives across candidate queries.
pub fn select(query: &TwigQuery, doc: &XmlTree, index: &NodeIndex) -> BTreeSet<NodeId> {
    Evaluator::new(doc, index).select(query)
}

/// One-shot indexed membership test.
pub fn selects(query: &TwigQuery, doc: &XmlTree, index: &NodeIndex, node: NodeId) -> bool {
    Evaluator::new(doc, index).selects(query, node)
}

/// One-shot indexed count.
pub fn count(query: &TwigQuery, doc: &XmlTree, index: &NodeIndex) -> usize {
    Evaluator::new(doc, index).count(query)
}

/// One-shot indexed Boolean match.
pub fn matches(query: &TwigQuery, doc: &XmlTree, index: &NodeIndex) -> bool {
    Evaluator::new(doc, index).matches(query)
}

/// Canonical encoding of the sub-twig rooted at `q`, *excluding* its incoming axis (the match
/// set of a subtree does not depend on how it hangs off its parent). Children are sorted so
/// structurally equal filters built in different orders share one cache entry.
///
/// Labels are arbitrary strings, so the encoding must be injective rather than merely
/// readable: a label test is length-prefixed (`L3:abc`) so a label spelled `*` — or one
/// containing the structural characters `(`, `)`, `,`, `/` — can never collide with the
/// wildcard marker `W` or with a differently shaped sub-twig.
fn subtwig_key(query: &TwigQuery, q: QNodeId) -> String {
    use crate::query::NodeTest;
    let test = match query.test(q) {
        NodeTest::Wildcard => "W".to_string(),
        NodeTest::Label(l) => format!("L{}:{}", l.len(), l),
    };
    let mut child_keys: Vec<String> = query
        .children(q)
        .iter()
        .map(|&c| {
            let axis = match query.axis(c) {
                Axis::Child => "/",
                Axis::Descendant => "//",
            };
            format!("{axis}{}", subtwig_key(query, c))
        })
        .collect();
    child_keys.sort();
    format!("{}({})", test, child_keys.join(","))
}

/// Sorted list of nodes where the sub-twig rooted at `q` can embed (with `q` mapped to them).
/// Cache hits cost one `Arc` clone.
fn match_set(
    query: &TwigQuery,
    q: QNodeId,
    doc: &XmlTree,
    index: &NodeIndex,
    cache: &mut EvalCache,
) -> Arc<Vec<NodeId>> {
    let key = subtwig_key(query, q);
    if let Some(hit) = cache.match_sets.get(&key) {
        return hit.clone();
    }
    // Children first (postorder); each child's set is cached under its own key, so the
    // recursion re-pays nothing for repeated filters.
    let mut constraints: Vec<Vec<NodeId>> = Vec::with_capacity(query.children(q).len());
    for &child in query.children(q) {
        let child_matches = match_set(query, child, doc, index, cache);
        let relatives = match query.axis(child) {
            Axis::Child => parent_set(&child_matches, index),
            Axis::Descendant => ancestor_closure(&child_matches, index),
        };
        constraints.push(relatives);
    }
    let mut result = candidate_nodes(query, q, doc, index, &constraints);
    for constraint in &constraints {
        intersect_sorted(&mut result, constraint);
        if result.is_empty() {
            break;
        }
    }
    let result = Arc::new(result);
    cache.match_sets.insert(key, result.clone());
    result
}

/// Initial candidates for a query node: its postings list, or — for a wildcard — the smallest
/// structural constraint when one exists (intersecting the others against it), falling back to
/// every node only for an unconstrained `*` leaf.
fn candidate_nodes(
    query: &TwigQuery,
    q: QNodeId,
    doc: &XmlTree,
    index: &NodeIndex,
    constraints: &[Vec<NodeId>],
) -> Vec<NodeId> {
    use crate::query::NodeTest;
    match query.test(q) {
        NodeTest::Label(l) => index.postings(l).to_vec(),
        NodeTest::Wildcard => match constraints.iter().min_by_key(|c| c.len()) {
            Some(smallest) => smallest.clone(),
            None => doc.node_ids().collect(),
        },
    }
}

/// Sorted, deduplicated parents of a sorted node list.
fn parent_set(nodes: &[NodeId], index: &NodeIndex) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = nodes.iter().filter_map(|&n| index.parent(n)).collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Sorted set of **proper** ancestors of any node in a sorted list. The visited bitmap makes
/// the total work linear in the output plus the input: each upward walk stops at the first
/// already-collected ancestor.
fn ancestor_closure(nodes: &[NodeId], index: &NodeIndex) -> Vec<NodeId> {
    let mut seen = vec![false; index.node_count()];
    let mut out = Vec::new();
    for &n in nodes {
        let mut cur = index.parent(n);
        while let Some(p) = cur {
            if seen[p.index()] {
                break;
            }
            seen[p.index()] = true;
            out.push(p);
            cur = index.parent(p);
        }
    }
    out.sort_unstable();
    out
}

/// In-place intersection of two sorted lists (galloping on the shorter side is unnecessary at
/// the sizes the learners see; a linear merge keeps the code obvious).
fn intersect_sorted(target: &mut Vec<NodeId>, other: &[NodeId]) {
    let mut write = 0;
    let mut j = 0;
    for read in 0..target.len() {
        let v = target[read];
        while j < other.len() && other[j] < v {
            j += 1;
        }
        if j < other.len() && other[j] == v {
            target[write] = v;
            write += 1;
        }
    }
    target.truncate(write);
}

/// The top-down spine pass: restrict the bottom-up match sets to nodes actually reachable from
/// an admissible image of the query root, and return the images of the selected node.
fn select_spine(
    query: &TwigQuery,
    doc: &XmlTree,
    index: &NodeIndex,
    cache: &mut EvalCache,
) -> Vec<NodeId> {
    let root_matches = match_set(query, QNodeId::ROOT, doc, index, cache);
    let mut current: Vec<NodeId> = match query.axis(QNodeId::ROOT) {
        // `/label…`: the query root must map to the document's root element.
        Axis::Child => {
            if root_matches.binary_search(&XmlTree::ROOT).is_ok() {
                vec![XmlTree::ROOT]
            } else {
                Vec::new()
            }
        }
        // `//label…`: any matching element. The one unavoidable copy out of the memo: the
        // spine pass filters `current` in place while the cached set must stay intact.
        Axis::Descendant => root_matches.as_ref().clone(),
    };
    let spine = query.spine();
    for window in spine.windows(2) {
        if current.is_empty() {
            break;
        }
        let child_q = window[1];
        let child_matches = match_set(query, child_q, doc, index, cache);
        current = match query.axis(child_q) {
            Axis::Child => {
                let mut next: Vec<NodeId> = Vec::new();
                for &t in &current {
                    for &c in doc.children(t) {
                        if child_matches.binary_search(&c).is_ok() {
                            next.push(c);
                        }
                    }
                }
                next.sort_unstable();
                next.dedup();
                next
            }
            Axis::Descendant => below_any(&current, &child_matches, index),
        };
    }
    current
}

/// Nodes of `candidates` having a **proper** ancestor in `current`, via merged preorder
/// intervals: ancestors' intervals are either nested or disjoint, so after dropping intervals
/// contained in a previously kept one, membership is a single binary search per candidate.
fn below_any(current: &[NodeId], candidates: &[NodeId], index: &NodeIndex) -> Vec<NodeId> {
    let mut intervals: Vec<(u32, u32)> =
        current.iter().map(|&n| index.subtree_interval(n)).collect();
    intervals.sort_unstable();
    let mut merged: Vec<(u32, u32)> = Vec::with_capacity(intervals.len());
    for (lo, hi) in intervals {
        match merged.last() {
            Some(&(_, prev_hi)) if hi <= prev_hi => {} // nested inside the previous interval
            _ => merged.push((lo, hi)),
        }
    }
    candidates
        .iter()
        .copied()
        .filter(|&m| {
            let rank = index.preorder_rank(m);
            // Last kept interval starting strictly before `rank`: equality would mean the
            // interval is `m`'s own subtree, which only witnesses improper descent.
            let pos = merged.partition_point(|&(lo, _)| lo < rank);
            pos > 0 && merged[pos - 1].1 > rank
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;
    use crate::query::NodeTest;
    use crate::xpath::parse_xpath;
    use qbe_xml::TreeBuilder;

    fn doc() -> XmlTree {
        TreeBuilder::new("site")
            .open("people")
            .open("person")
            .leaf("name")
            .leaf("emailaddress")
            .open("profile")
            .leaf("age")
            .close()
            .close()
            .open("person")
            .leaf("name")
            .close()
            .close()
            .open("regions")
            .open("europe")
            .open("item")
            .leaf("name")
            .close()
            .close()
            .close()
            .build()
    }

    fn check(xpath: &str, d: &XmlTree) {
        let q = parse_xpath(xpath).unwrap();
        let ix = NodeIndex::build(d);
        assert_eq!(
            select(&q, d, &ix),
            eval::select(&q, d),
            "indexed ≠ naive for {xpath}"
        );
        assert_eq!(count(&q, d, &ix), eval::count(&q, d), "count for {xpath}");
        assert_eq!(
            matches(&q, d, &ix),
            eval::matches(&q, d),
            "matches for {xpath}"
        );
    }

    #[test]
    fn agrees_with_naive_on_representative_queries() {
        let d = doc();
        for xpath in [
            "/site/people/person",
            "//name",
            "/site/person",
            "/site//age",
            "/site/people/person[emailaddress]",
            "/site/people/person[.//age]",
            "/site/people/person[age]",
            "/site/*/person",
            "/site/*",
            "//person[profile]/name",
            "/auction//person",
            "//person[profile[age]]",
            "//person[profile[income]]",
            "//*",
            "/*",
        ] {
            check(xpath, &d);
        }
    }

    #[test]
    fn proper_descendant_semantics() {
        let nested = TreeBuilder::new("a").leaf("a").build();
        check("//a//a", &nested);
        let single = XmlTree::new("a");
        check("//a//a", &single);
    }

    #[test]
    fn selects_matches_membership() {
        let d = doc();
        let ix = NodeIndex::build(&d);
        let q = parse_xpath("//person").unwrap();
        for node in d.node_ids() {
            assert_eq!(
                selects(&q, &d, &ix, node),
                eval::selects(&q, &d, node),
                "{node}"
            );
        }
    }

    #[test]
    fn evaluator_memoises_repeated_filters() {
        let d = doc();
        let ix = NodeIndex::build(&d);
        let mut ev = Evaluator::new(&d, &ix);
        // Two queries sharing the `[name]` filter sub-twig: the second must hit the memo.
        ev.select(&parse_xpath("//person[name]").unwrap());
        let after_first = ev.cache.len();
        ev.select(&parse_xpath("//item[name]").unwrap());
        assert!(!ev.cache.is_empty());
        // `name(…)` is one shared entry; only the new roots are added.
        assert!(ev.cache.len() < after_first * 2, "filter was recomputed");
        // And results stay correct after cache hits.
        assert_eq!(
            ev.select(&parse_xpath("//person[name]").unwrap()),
            eval::select(&parse_xpath("//person[name]").unwrap(), &d)
        );
    }

    #[test]
    fn wildcard_and_literal_star_label_do_not_share_cache_entries() {
        // A document whose labels are exactly the strings the key encoding must not confuse
        // with its own structural characters.
        let d = TreeBuilder::new("*").leaf("(").leaf("a,b").build();
        let ix = NodeIndex::build(&d);
        let mut ev = Evaluator::new(&d, &ix);
        let star_label = TwigQuery::new(Axis::Descendant, NodeTest::label("*"));
        let wildcard = TwigQuery::new(Axis::Descendant, NodeTest::Wildcard);
        // Warm the cache with the literal-label query, then the wildcard query must still see
        // every node (and vice versa on a fresh evaluator).
        assert_eq!(ev.select(&star_label), eval::select(&star_label, &d));
        assert_eq!(ev.select(&wildcard), eval::select(&wildcard, &d));
        assert_eq!(ev.count(&wildcard), d.size());
        let mut fresh = Evaluator::new(&d, &ix);
        assert_eq!(fresh.select(&wildcard), eval::select(&wildcard, &d));
        assert_eq!(fresh.select(&star_label), eval::select(&star_label, &d));
        // Filters over the weird labels keep working through the shared memo too.
        let mut q = TwigQuery::new(Axis::Descendant, NodeTest::label("*"));
        q.add_node(
            crate::query::QNodeId::ROOT,
            Axis::Child,
            NodeTest::label("("),
        );
        assert_eq!(ev.select(&q), eval::select(&q, &d));
    }

    #[test]
    fn wildcard_spine_with_filters() {
        let d = doc();
        check("//*[name]", &d);
        check("/site/*[person[profile]]", &d);
    }

    #[test]
    fn path_constructor_queries_agree() {
        let d = doc();
        let q = TwigQuery::path([
            (Axis::Child, NodeTest::label("site")),
            (Axis::Descendant, NodeTest::Wildcard),
            (Axis::Child, NodeTest::label("name")),
        ]);
        let ix = NodeIndex::build(&d);
        assert_eq!(select(&q, &d, &ix), eval::select(&q, &d));
    }
}
