//! Indexed twig-query evaluation: dense-bitset match sets with memoised sub-twig matches.
//!
//! [`crate::eval`] answers each query by filling a dense `|query| × |document|` boolean table —
//! robust, but every evaluation walks the whole document even when the query's labels are rare.
//! The interactive learners evaluate thousands of candidate queries against the same documents,
//! which makes that walk the hot path of the whole reproduction.
//!
//! This module evaluates against a prebuilt [`NodeIndex`] instead, with every match set held as
//! a [`DenseSet<NodeId>`] (a u64-word bitset over the document's node universe):
//!
//! * each query node starts from the **posting bitset** of its label (all nodes for `*`), so
//!   the work is proportional to the document's word count, not its node count;
//! * child/descendant structure is enforced by **word-level intersection** (`AND`): a
//!   child-axis edge intersects with the parents of the child's matches, a descendant-axis edge
//!   with their proper-ancestor closure (computed once per edge, the output bitset doubling as
//!   the visited map);
//! * structurally identical sub-twigs (the same filter attached at several spine positions, or
//!   re-asked across calls) are **memoised** by their canonical encoding in an [`EvalCache`],
//!   so a session that evaluates many near-identical candidates pays for each distinct filter
//!   once per document — and the cache's [`SetArena`] recycles every transient bitset, so the
//!   steady state allocates nothing;
//! * results iterate in ascending [`NodeId`] order, exactly the order of the sorted
//!   representations this kernel replaced.
//!
//! The differential property suites (`crates/twig/tests/prop_eval_indexed.rs` and the
//! workspace-root `tests/prop_bitset.rs`) pin `select`/`selects`/`count` here to be
//! extensionally equal to [`crate::eval`] on hundreds of random documents and queries; the
//! naive evaluator stays in-tree as the executable specification.

use crate::query::{Axis, QNodeId, TwigQuery};
use qbe_bitset::{DenseSet, SetArena};
use qbe_xml::{NodeId, NodeIndex, XmlTree};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Canonical identity of a sub-twig, as interned components: the node test (0 for `*`, label
/// id + 1 otherwise) plus the sorted `(axis, child shape id)` pairs. Hash-consing these in the
/// [`EvalCache`] replaces the string-encoded canonical keys the memo used to build on every
/// probe — identity checks become small integer hashes, with injectivity by construction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ShapeKey {
    /// 0 for the wildcard, `label id + 1` for a label test.
    test: u32,
    /// `(axis, child shape id)` per child (0 = child axis, 1 = descendant), sorted so
    /// structurally equal filters built in different orders intern to one shape.
    children: Vec<(u8, u32)>,
}

/// Cross-call memo of sub-twig match sets for **one document**.
///
/// Sub-twigs are identified by hash-consed shape keys (label and shape interners live in the
/// cache), values are the bitsets of document nodes where each sub-twig can embed. The cache
/// never needs invalidation: documents and indexes are immutable. Reusing a cache with a
/// different document is a logic error; [`Evaluator`] ties the three together so callers cannot
/// mix them up.
#[derive(Debug, Clone, Default)]
pub struct EvalCache {
    /// Interned query labels (document-independent; grows with the distinct labels queried).
    label_ids: HashMap<String, u32>,
    /// Interned sub-twig shapes → dense shape ids.
    shapes: HashMap<ShapeKey, u32>,
    /// Match bitset per interned shape id (`None` until first computed). `Arc` so a cache hit
    /// is a reference bump, not a copy — and so the cache stays `Send` for sessions handed
    /// across `SessionPool` worker threads.
    match_sets: Vec<Option<Arc<DenseSet<NodeId>>>>,
    /// Recycler for the transient bitsets of each evaluation (constraint sets, spine frontier).
    arena: SetArena,
}

impl EvalCache {
    /// An empty cache.
    pub fn new() -> EvalCache {
        EvalCache::default()
    }

    /// Number of memoised sub-twig match sets.
    pub fn len(&self) -> usize {
        self.match_sets.iter().filter(|m| m.is_some()).count()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hand a result bitset obtained from this cache's evaluations back to its arena, so the
    /// next evaluation reuses the buffer. Callers that keep the result alive simply skip this.
    pub fn recycle(&mut self, bits: DenseSet<NodeId>) {
        self.arena.put(bits);
    }

    /// Intern a query label.
    fn label_id(&mut self, label: &str) -> u32 {
        if let Some(&id) = self.label_ids.get(label) {
            return id;
        }
        let id = self.label_ids.len() as u32;
        self.label_ids.insert(label.to_string(), id);
        id
    }

    /// Intern one shape, registering a match-set slot for new shapes.
    fn shape_id(&mut self, key: ShapeKey) -> u32 {
        if let Some(&id) = self.shapes.get(&key) {
            return id;
        }
        let id = self.match_sets.len() as u32;
        self.shapes.insert(key, id);
        self.match_sets.push(None);
        id
    }
}

/// One document, its index, and the memo of sub-twig matches — the unit a session keeps per
/// document and reuses across every candidate evaluation.
#[derive(Debug, Clone)]
pub struct Evaluator<'a> {
    doc: &'a XmlTree,
    index: &'a NodeIndex,
    cache: EvalCache,
}

impl<'a> Evaluator<'a> {
    /// Wrap a document and its prebuilt index.
    pub fn new(doc: &'a XmlTree, index: &'a NodeIndex) -> Evaluator<'a> {
        debug_assert_eq!(
            doc.size(),
            index.node_count(),
            "index built for another tree"
        );
        Evaluator {
            doc,
            index,
            cache: EvalCache::new(),
        }
    }

    /// The document this evaluator answers for.
    pub fn document(&self) -> &'a XmlTree {
        self.doc
    }

    /// Evaluate into a dense bitset over the document's nodes.
    pub fn select_bits(&mut self, query: &TwigQuery) -> DenseSet<NodeId> {
        select_spine(query, self.doc, self.index, &mut self.cache)
    }

    /// Evaluate: all document nodes selected by some embedding (ascending id order).
    pub fn select_vec(&mut self, query: &TwigQuery) -> Vec<NodeId> {
        self.select_bits(query).iter().collect()
    }

    /// Evaluate into the same set type [`crate::eval::select`] returns.
    pub fn select(&mut self, query: &TwigQuery) -> BTreeSet<NodeId> {
        self.select_bits(query).iter().collect()
    }

    /// Whether the query selects the given node.
    pub fn selects(&mut self, query: &TwigQuery, node: NodeId) -> bool {
        self.select_bits(query).contains(node)
    }

    /// Number of selected nodes, without materialising a set (one popcount pass).
    pub fn count(&mut self, query: &TwigQuery) -> usize {
        self.select_bits(query).len()
    }

    /// Whether the query selects at least one node.
    pub fn matches(&mut self, query: &TwigQuery) -> bool {
        !self.select_bits(query).is_empty()
    }
}

/// Indexed evaluation against an externally owned memo, as a dense bitset — the entry point for
/// sessions that keep one [`EvalCache`] per document across many candidate queries without
/// holding a borrow of the document (see `TwigSession`).
pub fn select_bits_with(
    query: &TwigQuery,
    doc: &XmlTree,
    index: &NodeIndex,
    cache: &mut EvalCache,
) -> DenseSet<NodeId> {
    select_spine(query, doc, index, cache)
}

/// [`select_bits_with`] materialised as the sorted answer list.
pub fn select_vec_with(
    query: &TwigQuery,
    doc: &XmlTree,
    index: &NodeIndex,
    cache: &mut EvalCache,
) -> Vec<NodeId> {
    let bits = select_spine(query, doc, index, cache);
    let out = bits.iter().collect();
    cache.arena.put(bits);
    out
}

/// Membership variant of [`select_bits_with`].
pub fn selects_with(
    query: &TwigQuery,
    doc: &XmlTree,
    index: &NodeIndex,
    cache: &mut EvalCache,
    node: NodeId,
) -> bool {
    let bits = select_spine(query, doc, index, cache);
    let hit = bits.contains(node);
    cache.arena.put(bits);
    hit
}

/// Whether `query` classifies every `(node, expected)` label of one document correctly: one
/// indexed evaluation, then a bit test per label. The consistency checkers
/// (`ExampleSet::consistent_with`, `TwigSession`) all funnel through this.
pub fn classifies_with(
    query: &TwigQuery,
    doc: &XmlTree,
    index: &NodeIndex,
    cache: &mut EvalCache,
    labels: impl IntoIterator<Item = (NodeId, bool)>,
) -> bool {
    let selected = select_spine(query, doc, index, cache);
    let ok = labels
        .into_iter()
        .all(|(node, expected)| selected.contains(node) == expected);
    cache.arena.put(selected);
    ok
}

/// One-shot indexed evaluation (fresh memo). Sessions should hold an [`Evaluator`] or an
/// [`EvalCache`] instead so the memo survives across candidate queries.
pub fn select(query: &TwigQuery, doc: &XmlTree, index: &NodeIndex) -> BTreeSet<NodeId> {
    Evaluator::new(doc, index).select(query)
}

/// One-shot indexed membership test.
pub fn selects(query: &TwigQuery, doc: &XmlTree, index: &NodeIndex, node: NodeId) -> bool {
    Evaluator::new(doc, index).selects(query, node)
}

/// One-shot indexed count.
pub fn count(query: &TwigQuery, doc: &XmlTree, index: &NodeIndex) -> usize {
    Evaluator::new(doc, index).count(query)
}

/// One-shot indexed Boolean match.
pub fn matches(query: &TwigQuery, doc: &XmlTree, index: &NodeIndex) -> bool {
    Evaluator::new(doc, index).matches(query)
}

/// Interned shape ids of the sub-twig rooted at every query node, *excluding* incoming axes
/// (the match set of a subtree does not depend on how it hangs off its parent). Children are
/// sorted so structurally equal filters built in different orders intern to one shape.
///
/// Computed for the whole query in one reverse-id pass (children always carry higher ids than
/// their parent, so their shape ids are ready when the parent is interned); the evaluator calls
/// this once per evaluation, and every memo probe afterwards is a dense index.
fn subtwig_shapes(query: &TwigQuery, cache: &mut EvalCache) -> Vec<u32> {
    use crate::query::NodeTest;
    let n = query.node_ids().count();
    let mut shapes = vec![0u32; n];
    for ix in (0..n).rev() {
        let q = QNodeId(ix as u32);
        let test = match query.test(q) {
            NodeTest::Wildcard => 0,
            NodeTest::Label(l) => cache.label_id(l) + 1,
        };
        let mut children: Vec<(u8, u32)> = query
            .children(q)
            .iter()
            .map(|&c| {
                let axis = match query.axis(c) {
                    Axis::Child => 0u8,
                    Axis::Descendant => 1u8,
                };
                (axis, shapes[c.index()])
            })
            .collect();
        children.sort_unstable();
        shapes[ix] = cache.shape_id(ShapeKey { test, children });
    }
    shapes
}

/// Bitset of nodes where the sub-twig rooted at `q` can embed (with `q` mapped to them).
/// Cache hits cost one `Arc` clone.
fn match_set(
    query: &TwigQuery,
    q: QNodeId,
    shapes: &[u32],
    index: &NodeIndex,
    cache: &mut EvalCache,
) -> Arc<DenseSet<NodeId>> {
    if let Some(hit) = &cache.match_sets[shapes[q.index()] as usize] {
        return hit.clone();
    }
    // Children first (postorder); each child's set is cached under its own shape, so the
    // recursion re-pays nothing for repeated filters.
    let mut constraints: Vec<DenseSet<NodeId>> = Vec::with_capacity(query.children(q).len());
    for &child in query.children(q) {
        let child_matches = match_set(query, child, shapes, index, cache);
        let relatives = match query.axis(child) {
            Axis::Child => parent_set(&child_matches, index, &mut cache.arena),
            Axis::Descendant => ancestor_closure(&child_matches, index, &mut cache.arena),
        };
        constraints.push(relatives);
    }
    let mut result = candidate_nodes(query, q, index, &constraints, &mut cache.arena);
    for constraint in &constraints {
        result.and_with(constraint);
        if result.is_empty() {
            break;
        }
    }
    for constraint in constraints {
        cache.arena.put(constraint);
    }
    let result = Arc::new(result);
    cache.match_sets[shapes[q.index()] as usize] = Some(result.clone());
    result
}

/// Initial candidates for a query node: its posting bitset, or — for a wildcard — the smallest
/// structural constraint when one exists (intersecting the others against it), falling back to
/// every node only for an unconstrained `*` leaf.
fn candidate_nodes(
    query: &TwigQuery,
    q: QNodeId,
    index: &NodeIndex,
    constraints: &[DenseSet<NodeId>],
    arena: &mut SetArena,
) -> DenseSet<NodeId> {
    use crate::query::NodeTest;
    match query.test(q) {
        NodeTest::Label(l) => match index.postings_bits(l) {
            Some(bits) => arena.take_copy(bits),
            None => arena.take(index.node_count()),
        },
        NodeTest::Wildcard => match constraints.iter().min_by_key(|c| c.len()) {
            Some(smallest) => arena.take_copy(smallest),
            None => arena.take_copy(index.all_bits()),
        },
    }
}

/// Bitset of parents of any node in the set.
fn parent_set(
    nodes: &DenseSet<NodeId>,
    index: &NodeIndex,
    arena: &mut SetArena,
) -> DenseSet<NodeId> {
    let mut out = arena.take(index.node_count());
    for n in nodes.iter() {
        if let Some(p) = index.parent(n) {
            out.insert(p);
        }
    }
    out
}

/// Bitset of **proper** ancestors of any node in the set. The output bitset doubles as the
/// visited map, so the total work is linear in the output plus the input: each upward walk
/// stops at the first already-collected ancestor.
fn ancestor_closure(
    nodes: &DenseSet<NodeId>,
    index: &NodeIndex,
    arena: &mut SetArena,
) -> DenseSet<NodeId> {
    let mut out = arena.take(index.node_count());
    for n in nodes.iter() {
        let mut cur = index.parent(n);
        while let Some(p) = cur {
            if !out.insert(p) {
                break;
            }
            cur = index.parent(p);
        }
    }
    out
}

/// The top-down spine pass: restrict the bottom-up match sets to nodes actually reachable from
/// an admissible image of the query root, and return the images of the selected node.
fn select_spine(
    query: &TwigQuery,
    doc: &XmlTree,
    index: &NodeIndex,
    cache: &mut EvalCache,
) -> DenseSet<NodeId> {
    let shapes = subtwig_shapes(query, cache);
    let root_matches = match_set(query, QNodeId::ROOT, &shapes, index, cache);
    let mut current: DenseSet<NodeId> = match query.axis(QNodeId::ROOT) {
        // `/label…`: the query root must map to the document's root element.
        Axis::Child => {
            let mut only_root = cache.arena.take(index.node_count());
            if root_matches.contains(XmlTree::ROOT) {
                only_root.insert(XmlTree::ROOT);
            }
            only_root
        }
        // `//label…`: any matching element. The one unavoidable copy out of the memo: the
        // spine pass filters `current` in place while the cached set must stay intact.
        Axis::Descendant => cache.arena.take_copy(root_matches.as_ref()),
    };
    let spine = query.spine();
    for window in spine.windows(2) {
        if current.is_empty() {
            break;
        }
        let child_q = window[1];
        let child_matches = match_set(query, child_q, &shapes, index, cache);
        let next = match query.axis(child_q) {
            Axis::Child => {
                let mut next = cache.arena.take(index.node_count());
                for t in current.iter() {
                    for &c in doc.children(t) {
                        if child_matches.contains(c) {
                            next.insert(c);
                        }
                    }
                }
                next
            }
            Axis::Descendant => below_any(&current, &child_matches, index, &mut cache.arena),
        };
        cache.arena.put(current);
        current = next;
    }
    current
}

/// Nodes of `candidates` having a **proper** ancestor in `current`, via merged preorder
/// intervals: ancestors' intervals are either nested or disjoint, so after dropping intervals
/// contained in a previously kept one, membership is a single binary search per candidate.
fn below_any(
    current: &DenseSet<NodeId>,
    candidates: &DenseSet<NodeId>,
    index: &NodeIndex,
    arena: &mut SetArena,
) -> DenseSet<NodeId> {
    let mut intervals: Vec<(u32, u32)> =
        current.iter().map(|n| index.subtree_interval(n)).collect();
    intervals.sort_unstable();
    let mut merged: Vec<(u32, u32)> = Vec::with_capacity(intervals.len());
    for (lo, hi) in intervals {
        match merged.last() {
            Some(&(_, prev_hi)) if hi <= prev_hi => {} // nested inside the previous interval
            _ => merged.push((lo, hi)),
        }
    }
    let mut out = arena.take(index.node_count());
    for m in candidates.iter() {
        let rank = index.preorder_rank(m);
        // Last kept interval starting strictly before `rank`: equality would mean the
        // interval is `m`'s own subtree, which only witnesses improper descent.
        let pos = merged.partition_point(|&(lo, _)| lo < rank);
        if pos > 0 && merged[pos - 1].1 > rank {
            out.insert(m);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;
    use crate::query::NodeTest;
    use crate::xpath::parse_xpath;
    use qbe_xml::TreeBuilder;

    fn doc() -> XmlTree {
        TreeBuilder::new("site")
            .open("people")
            .open("person")
            .leaf("name")
            .leaf("emailaddress")
            .open("profile")
            .leaf("age")
            .close()
            .close()
            .open("person")
            .leaf("name")
            .close()
            .close()
            .open("regions")
            .open("europe")
            .open("item")
            .leaf("name")
            .close()
            .close()
            .close()
            .build()
    }

    fn check(xpath: &str, d: &XmlTree) {
        let q = parse_xpath(xpath).unwrap();
        let ix = NodeIndex::build(d);
        assert_eq!(
            select(&q, d, &ix),
            eval::select(&q, d),
            "indexed ≠ naive for {xpath}"
        );
        assert_eq!(count(&q, d, &ix), eval::count(&q, d), "count for {xpath}");
        assert_eq!(
            matches(&q, d, &ix),
            eval::matches(&q, d),
            "matches for {xpath}"
        );
    }

    #[test]
    fn agrees_with_naive_on_representative_queries() {
        let d = doc();
        for xpath in [
            "/site/people/person",
            "//name",
            "/site/person",
            "/site//age",
            "/site/people/person[emailaddress]",
            "/site/people/person[.//age]",
            "/site/people/person[age]",
            "/site/*/person",
            "/site/*",
            "//person[profile]/name",
            "/auction//person",
            "//person[profile[age]]",
            "//person[profile[income]]",
            "//*",
            "/*",
        ] {
            check(xpath, &d);
        }
    }

    #[test]
    fn proper_descendant_semantics() {
        let nested = TreeBuilder::new("a").leaf("a").build();
        check("//a//a", &nested);
        let single = XmlTree::new("a");
        check("//a//a", &single);
    }

    #[test]
    fn selects_matches_membership() {
        let d = doc();
        let ix = NodeIndex::build(&d);
        let q = parse_xpath("//person").unwrap();
        for node in d.node_ids() {
            assert_eq!(
                selects(&q, &d, &ix, node),
                eval::selects(&q, &d, node),
                "{node}"
            );
        }
    }

    #[test]
    fn evaluator_memoises_repeated_filters() {
        let d = doc();
        let ix = NodeIndex::build(&d);
        let mut ev = Evaluator::new(&d, &ix);
        // Two queries sharing the `[name]` filter sub-twig: the second must hit the memo.
        ev.select(&parse_xpath("//person[name]").unwrap());
        let after_first = ev.cache.len();
        ev.select(&parse_xpath("//item[name]").unwrap());
        assert!(!ev.cache.is_empty());
        // `name(…)` is one shared entry; only the new roots are added.
        assert!(ev.cache.len() < after_first * 2, "filter was recomputed");
        // And results stay correct after cache hits.
        assert_eq!(
            ev.select(&parse_xpath("//person[name]").unwrap()),
            eval::select(&parse_xpath("//person[name]").unwrap(), &d)
        );
    }

    #[test]
    fn transient_bitsets_are_recycled_across_evaluations() {
        let d = doc();
        let ix = NodeIndex::build(&d);
        let mut ev = Evaluator::new(&d, &ix);
        ev.select(&parse_xpath("//person[name]").unwrap());
        ev.select(&parse_xpath("//person[name]").unwrap());
        ev.select(&parse_xpath("//item[name]").unwrap());
        assert!(
            ev.cache.arena.recycled() > 0,
            "steady-state evaluations must reuse arena buffers"
        );
    }

    #[test]
    fn wildcard_and_literal_star_label_do_not_share_cache_entries() {
        // A document whose labels are exactly the strings the key encoding must not confuse
        // with its own structural characters.
        let d = TreeBuilder::new("*").leaf("(").leaf("a,b").build();
        let ix = NodeIndex::build(&d);
        let mut ev = Evaluator::new(&d, &ix);
        let star_label = TwigQuery::new(Axis::Descendant, NodeTest::label("*"));
        let wildcard = TwigQuery::new(Axis::Descendant, NodeTest::Wildcard);
        // Warm the cache with the literal-label query, then the wildcard query must still see
        // every node (and vice versa on a fresh evaluator).
        assert_eq!(ev.select(&star_label), eval::select(&star_label, &d));
        assert_eq!(ev.select(&wildcard), eval::select(&wildcard, &d));
        assert_eq!(ev.count(&wildcard), d.size());
        let mut fresh = Evaluator::new(&d, &ix);
        assert_eq!(fresh.select(&wildcard), eval::select(&wildcard, &d));
        assert_eq!(fresh.select(&star_label), eval::select(&star_label, &d));
        // Filters over the weird labels keep working through the shared memo too.
        let mut q = TwigQuery::new(Axis::Descendant, NodeTest::label("*"));
        q.add_node(
            crate::query::QNodeId::ROOT,
            Axis::Child,
            NodeTest::label("("),
        );
        assert_eq!(ev.select(&q), eval::select(&q, &d));
    }

    #[test]
    fn wildcard_spine_with_filters() {
        let d = doc();
        check("//*[name]", &d);
        check("/site/*[person[profile]]", &d);
    }

    #[test]
    fn path_constructor_queries_agree() {
        let d = doc();
        let q = TwigQuery::path([
            (Axis::Child, NodeTest::label("site")),
            (Axis::Descendant, NodeTest::Wildcard),
            (Axis::Child, NodeTest::label("name")),
        ]);
        let ix = NodeIndex::build(&d);
        assert_eq!(select(&q, &d, &ix), eval::select(&q, &d));
    }
}
