//! Parser for the XPath fragment corresponding to twig queries.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query      ::= ('/' | '//') step (('/' | '//') step)*
//! step       ::= nodetest predicate*
//! nodetest   ::= NAME | '*'
//! predicate  ::= '[' relpath ']'
//! relpath    ::= ('.//')? step (('/' | '//') step)*
//! ```
//!
//! The selected node of the resulting [`TwigQuery`] is the last step of the outermost path.
//! This covers the twig-expressible queries of XPathMark; features outside the fragment
//! (attributes, functions, value comparisons, reverse axes, unions) are rejected with a
//! descriptive error so the XPathMark module can classify queries as twig-expressible or not.

use crate::query::{Axis, NodeTest, QNodeId, TwigQuery};
use std::fmt;

/// Error raised while parsing an XPath expression into a twig query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathError {
    /// Byte position of the error.
    pub position: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XPath parse error at {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for XPathError {}

/// Parse an XPath string into a [`TwigQuery`].
///
/// ```
/// let q = qbe_twig::parse_xpath("/site//person[profile[age]]/name").unwrap();
/// assert_eq!(q.to_xpath(), "/site//person[profile[age]]/name");
/// ```
pub fn parse_xpath(input: &str) -> Result<TwigQuery, XPathError> {
    Parser {
        input: input.as_bytes(),
        pos: 0,
    }
    .parse_query()
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, XPathError> {
        Err(XPathError {
            position: self.pos,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_axis(&mut self) -> Result<Axis, XPathError> {
        if !self.eat(b'/') {
            return self.err("expected `/` or `//`");
        }
        if self.eat(b'/') {
            Ok(Axis::Descendant)
        } else {
            Ok(Axis::Child)
        }
    }

    fn parse_nodetest(&mut self) -> Result<NodeTest, XPathError> {
        self.skip_ws();
        if self.eat(b'*') {
            return Ok(NodeTest::Wildcard);
        }
        if self.peek() == Some(b'@') {
            return self.err("attribute steps are outside the twig fragment");
        }
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected an element name or `*`");
        }
        let name = std::str::from_utf8(&self.input[start..self.pos]).unwrap();
        if name.contains('(') {
            return self.err("function calls are outside the twig fragment");
        }
        Ok(NodeTest::label(name))
    }

    fn parse_query(mut self) -> Result<TwigQuery, XPathError> {
        self.skip_ws();
        let axis = self.parse_axis()?;
        let test = self.parse_nodetest()?;
        let mut query = TwigQuery::new(axis, test);
        self.parse_predicates(&mut query, QNodeId::ROOT)?;
        let mut current = QNodeId::ROOT;
        loop {
            self.skip_ws();
            match self.peek() {
                None => break,
                Some(b'/') => {
                    let axis = self.parse_axis()?;
                    let test = self.parse_nodetest()?;
                    current = query.add_node(current, axis, test);
                    self.parse_predicates(&mut query, current)?;
                }
                Some(other) => {
                    return self.err(format!(
                        "unexpected character `{}` (unsupported XPath feature?)",
                        other as char
                    ));
                }
            }
        }
        query.set_selected(current);
        Ok(query)
    }

    fn parse_predicates(&mut self, query: &mut TwigQuery, node: QNodeId) -> Result<(), XPathError> {
        loop {
            self.skip_ws();
            if !self.eat(b'[') {
                return Ok(());
            }
            self.parse_relative_path(query, node)?;
            self.skip_ws();
            if !self.eat(b']') {
                return self.err("expected `]` closing a predicate");
            }
        }
    }

    fn parse_relative_path(
        &mut self,
        query: &mut TwigQuery,
        parent: QNodeId,
    ) -> Result<(), XPathError> {
        self.skip_ws();
        if self.peek() == Some(b'@') {
            return self.err("attribute predicates are outside the twig fragment");
        }
        // Optional leading `.//` or `./`.
        let mut first_axis = Axis::Child;
        if self.peek() == Some(b'.') {
            self.pos += 1;
            first_axis = self.parse_axis()?;
        } else if self.peek() == Some(b'/') {
            return self.err("absolute paths are not allowed inside predicates");
        }
        let test = self.parse_nodetest()?;
        let mut current = query.add_node(parent, first_axis, test);
        self.parse_predicates(query, current)?;
        loop {
            self.skip_ws();
            if self.peek() == Some(b'/') {
                let axis = self.parse_axis()?;
                let test = self.parse_nodetest()?;
                current = query.add_node(current, axis, test);
                self.parse_predicates(query, current)?;
            } else {
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(s: &str) {
        let q = parse_xpath(s).unwrap();
        assert_eq!(q.to_xpath(), s, "round-trip failed for {s}");
    }

    #[test]
    fn parses_simple_absolute_path() {
        let q = parse_xpath("/site/people/person").unwrap();
        assert_eq!(q.size(), 3);
        assert!(q.is_path());
        assert_eq!(q.test(q.selected()), &NodeTest::label("person"));
    }

    #[test]
    fn parses_descendant_axes() {
        let q = parse_xpath("//person//age").unwrap();
        assert_eq!(q.size(), 2);
        assert_eq!(q.axis(QNodeId::ROOT), Axis::Descendant);
        assert_eq!(q.descendant_edge_count(), 2);
    }

    #[test]
    fn parses_predicates_into_filters() {
        let q = parse_xpath("/site/people/person[name][emailaddress]/profile").unwrap();
        assert_eq!(q.filter_roots().len(), 2);
        assert_eq!(q.test(q.selected()), &NodeTest::label("profile"));
    }

    #[test]
    fn parses_nested_predicates() {
        let q = parse_xpath("//person[profile[age][education]]").unwrap();
        assert_eq!(q.size(), 4);
        assert_eq!(q.to_xpath(), "//person[profile[age][education]]");
    }

    #[test]
    fn parses_descendant_predicates() {
        let q = parse_xpath("//person[.//age]").unwrap();
        assert_eq!(q.to_xpath(), "//person[.//age]");
    }

    #[test]
    fn parses_wildcards() {
        let q = parse_xpath("/site/*/person").unwrap();
        assert_eq!(q.wildcard_count(), 1);
    }

    #[test]
    fn parses_multi_step_predicates() {
        let q = parse_xpath("//open_auction[bidder/increase]").unwrap();
        assert_eq!(q.size(), 3);
        assert_eq!(q.to_xpath(), "//open_auction[bidder[increase]]");
    }

    #[test]
    fn roundtrips_canonical_forms() {
        roundtrip("/site/people/person[name][.//age]/emailaddress");
        roundtrip("//person");
        roundtrip("/site//open_auction[bidder]/current");
        roundtrip("//*[name]");
    }

    #[test]
    fn rejects_attributes_functions_and_unions() {
        assert!(parse_xpath("//person/@id").is_err());
        assert!(parse_xpath("//person[@id='p0']").is_err());
        assert!(parse_xpath("//person | //item").is_err());
        assert!(parse_xpath("//person[count(watches)>1]").is_err());
    }

    #[test]
    fn rejects_relative_queries_and_garbage() {
        assert!(parse_xpath("person/name").is_err());
        assert!(parse_xpath("").is_err());
        assert!(parse_xpath("///").is_err());
        assert!(parse_xpath("/site[").is_err());
    }

    #[test]
    fn selected_node_is_last_outer_step_even_with_predicates() {
        let q = parse_xpath("//person[name]/profile[age]/education").unwrap();
        assert_eq!(q.test(q.selected()), &NodeTest::label("education"));
        let spine_labels: Vec<String> = q.spine().iter().map(|n| q.test(*n).to_string()).collect();
        assert_eq!(spine_labels, vec!["person", "profile", "education"]);
    }
}
