//! # qbe-twig — twig/path queries and their learners
//!
//! The semi-structured half of the paper: twig queries (the practical subclass of XPath),
//! their evaluation, and the learning algorithms the thesis builds on and extends.
//!
//! * [`query`] — the twig query model (node tests, child/descendant axes, spine, filters,
//!   anchoring) and XPath serialisation;
//! * [`xpath`] — parser for the corresponding XPath fragment;
//! * [`eval`] — embedding-based evaluation (polynomial);
//! * [`eval_indexed`] — the production evaluator: postings intersection against a prebuilt
//!   [`qbe_xml::NodeIndex`] with memoised sub-twig matches, differentially tested against
//!   [`eval`];
//! * [`containment`] — homomorphism-based containment/equivalence;
//! * [`example`] — annotated-document examples;
//! * [`learn`] — the positive-example learner (most specific anchored twig);
//! * [`consistency`] — positive+negative examples: polynomial heuristic, exact exponential
//!   search, the tractable path case, and unions of twigs;
//! * [`interactive`] — the interactive node-labelling protocol ("a practical system able to
//!   learn twig queries from interaction with the user") with uninformative-node pruning;
//! * [`pac`] — approximate (PAC) learning;
//! * [`schema_aware`] — query satisfiability/implication w.r.t. a multiplicity schema and the
//!   overspecialisation pruning the paper proposes;
//! * [`xpathmark`] — the XPathMark-like benchmark suite used by the coverage experiment.

#![warn(missing_docs)]

pub mod consistency;
pub mod containment;
pub mod eval;
pub mod eval_indexed;
pub mod example;
pub mod interactive;
pub mod learn;
pub mod pac;
pub mod query;
pub mod schema_aware;
pub mod xpath;
pub mod xpathmark;

pub use consistency::{learn_union, most_specific_consistent, Consistency, UnionQuery};
pub use containment::{contained_in, equivalent, equivalent_on};
pub use eval::{count, matches, select, selects};
pub use eval_indexed::{EvalCache, Evaluator};
pub use example::{Annotation, ExampleSet};
pub use interactive::{
    interactive_twig_learn, interactive_twig_learn_config, GoalNodeOracle, NodeOracle, NodeStatus,
    NodeStrategy, TwigSession, TwigSessionOutcome,
};
pub use learn::{
    learn_from_positives, learn_from_positives_shared, learn_path_from_positives, TwigLearnError,
};
pub use pac::{pac_learn, pac_sample_size, PacOutcome, QueryQuality};
pub use query::{Axis, NodeTest, QNodeId, TwigQuery};
pub use schema_aware::{learn_with_schema, prune_implied_filters, query_satisfiable, PruneReport};
pub use xpath::{parse_xpath, XPathError};

#[cfg(test)]
mod proptests {
    use crate::{contained_in, eval, learn_from_positives, parse_xpath, select};
    use proptest::prelude::*;
    use qbe_xml::random::{RandomTreeConfig, RandomTreeGenerator};
    use qbe_xml::XmlTree;

    fn tree(seed: u64) -> XmlTree {
        let cfg = RandomTreeConfig {
            alphabet: ('a'..='e').map(|c| c.to_string()).collect(),
            max_depth: 4,
            max_children: 3,
            ..Default::default()
        };
        let mut t = RandomTreeGenerator::new(cfg, seed).generate();
        t.set_label(XmlTree::ROOT, "root");
        t
    }

    proptest! {
        /// The learned query always selects every node it was trained on.
        #[test]
        fn learner_is_consistent_with_positives(seed in 0u64..200, picks in proptest::collection::vec(0usize..50, 1..4)) {
            let doc = tree(seed);
            let nodes: Vec<_> = doc.node_ids().collect();
            let examples: Vec<(&XmlTree, qbe_xml::NodeId)> =
                picks.iter().map(|p| (&doc, nodes[p % nodes.len()])).collect();
            let q = learn_from_positives(&examples).unwrap();
            for (d, n) in examples {
                prop_assert!(eval::selects(&q, d, n), "query {q} misses a training node");
            }
        }

        /// Parsing the XPath serialisation of a learned query is the identity.
        #[test]
        fn learned_query_xpath_roundtrips(seed in 0u64..200, pick in 0usize..50) {
            let doc = tree(seed);
            let nodes: Vec<_> = doc.node_ids().collect();
            let node = nodes[pick % nodes.len()];
            let q = learn_from_positives(&[(&doc, node)]).unwrap();
            let reparsed = parse_xpath(&q.to_xpath()).unwrap();
            prop_assert_eq!(reparsed.to_xpath(), q.to_xpath());
            prop_assert_eq!(select(&reparsed, &doc), select(&q, &doc));
        }

        /// Homomorphism containment is sound w.r.t. evaluation on random documents.
        #[test]
        fn containment_is_sound(seed in 0u64..150) {
            let doc = tree(seed);
            let pairs = [
                ("//a", "//*"),
                ("/root//b", "//b"),
                ("//a[b]", "//a"),
                ("//a[b][c]", "//a[b]"),
                ("/root/a/b", "/root//b"),
            ];
            for (sub, sup) in pairs {
                let qs = parse_xpath(sub).unwrap();
                let qp = parse_xpath(sup).unwrap();
                prop_assert!(contained_in(&qs, &qp), "{sub} ⊆ {sup} should hold syntactically");
                let ss = select(&qs, &doc);
                let sp = select(&qp, &doc);
                prop_assert!(ss.is_subset(&sp), "evaluation contradicts containment for {sub} ⊆ {sup}");
            }
        }

        /// Adding a filter never enlarges the answer set.
        #[test]
        fn filters_are_monotone_restrictions(seed in 0u64..150) {
            let doc = tree(seed);
            let base = parse_xpath("//a").unwrap();
            let filtered = parse_xpath("//a[b]").unwrap();
            prop_assert!(select(&filtered, &doc).is_subset(&select(&base, &doc)));
        }
    }
}
