//! Schema-aware query analysis and the overspecialisation fix.
//!
//! The paper's §2 proposes to "add a filter present in all the positive examples to the learned
//! query only if it is not implied by the schema", because query implication w.r.t. the
//! multiplicity schemas is tractable (embedding into the dependency graph) while full query
//! containment under a schema is not. This module implements:
//!
//! * [`query_satisfiable`] — can the query select anything on *some* document valid for the
//!   schema? (embedding of the query into the dependency graph, PTIME);
//! * [`filter_implied`] — is a single filter implied by the schema at a given query node?
//! * [`prune_implied_filters`] — the optimisation itself: drop every schema-implied filter from
//!   a learned query, reporting before/after sizes (experiment E3);
//! * [`learn_with_schema`] — the schema-aware learner: run the positive-example learner, then
//!   prune.

use crate::learn::{learn_from_positives, TwigLearnError};
use crate::query::{Axis, NodeTest, QNodeId, TwigQuery};
use qbe_schema::{DependencyGraph, Dms};
use qbe_xml::{NodeId, XmlTree};
use std::collections::BTreeSet;

/// Result of pruning: the optimised query plus the size accounting used by experiment E3.
#[derive(Debug, Clone)]
pub struct PruneReport {
    /// The query after removing schema-implied filters.
    pub query: TwigQuery,
    /// Size (number of query nodes) before pruning.
    pub size_before: usize,
    /// Size after pruning.
    pub size_after: usize,
    /// XPath of the removed filters, for reporting.
    pub removed: Vec<String>,
}

impl PruneReport {
    /// Relative size reduction in percent (0 when nothing was removed).
    pub fn reduction_percent(&self) -> f64 {
        if self.size_before == 0 {
            return 0.0;
        }
        100.0 * (self.size_before - self.size_after) as f64 / self.size_before as f64
    }
}

/// Whether the query can select at least one node of at least one document valid for the schema.
///
/// Decided by embedding the query into the schema's dependency graph: every query node is mapped
/// to an element label such that the root constraint, child edges, descendant edges and node
/// tests are all realisable. This matches the paper's reduction for disjunction-free schemas and
/// is a sound over-approximation for disjunctive ones (the dependency graph keeps all possible
/// edges).
pub fn query_satisfiable(schema: &Dms, query: &TwigQuery) -> bool {
    let graph = DependencyGraph::from_schema(schema);
    let candidates: Vec<String> = match query.axis(QNodeId::ROOT) {
        Axis::Child => vec![schema.root().to_string()],
        Axis::Descendant => {
            let mut labels: BTreeSet<String> = graph.reachable_from(schema.root());
            labels.insert(schema.root().to_string());
            labels.into_iter().collect()
        }
    };
    candidates
        .iter()
        .any(|label| embeds_at(&graph, query, QNodeId::ROOT, label))
}

fn embeds_at(graph: &DependencyGraph, query: &TwigQuery, node: QNodeId, label: &str) -> bool {
    if !query.test(node).matches(label) {
        return false;
    }
    for &child in query.children(node) {
        let candidate_labels: Vec<String> = match query.axis(child) {
            Axis::Child => graph
                .possible_children(label)
                .iter()
                .map(|s| s.to_string())
                .collect(),
            Axis::Descendant => graph.reachable_from(label).into_iter().collect(),
        };
        if !candidate_labels
            .iter()
            .any(|cl| embeds_at(graph, query, child, cl))
        {
            return false;
        }
    }
    true
}

/// Whether the filter rooted at `filter_root` is implied by the schema at its attachment point.
///
/// A filter is implied when every schema-valid element that its parent query node can denote is
/// guaranteed to satisfy it. The check walks the filter against the *required* edges of the
/// dependency graph:
///
/// * a child-axis filter node labelled `b` under a parent denoting label `a` is implied when the
///   schema requires at least one `b` child of every `a`;
/// * a descendant-axis filter node is implied when `b` is in the required-descendant closure of
///   `a`;
/// * wildcard filter nodes are implied when the parent is required to have *some* child;
/// * nested filter structure must be implied recursively.
///
/// The parent's possible labels are computed from the spine (conservatively: if the spine node
/// is a wildcard or reached by `//`, all labels it could denote are considered and the filter
/// must be implied for every one of them).
pub fn filter_implied(schema: &Dms, query: &TwigQuery, filter_root: QNodeId) -> bool {
    let graph = DependencyGraph::from_schema(schema);
    let parent = match query.parent(filter_root) {
        Some(p) => p,
        None => return false,
    };
    let parent_labels = possible_labels_of(schema, &graph, query, parent);
    if parent_labels.is_empty() {
        // The spine is unsatisfiable under the schema; treat nothing as implied.
        return false;
    }
    parent_labels
        .iter()
        .all(|label| filter_implied_for_label(&graph, query, filter_root, label))
}

fn filter_implied_for_label(
    graph: &DependencyGraph,
    query: &TwigQuery,
    node: QNodeId,
    parent_label: &str,
) -> bool {
    let target_labels: Vec<String> = match (query.axis(node), query.test(node)) {
        (Axis::Child, NodeTest::Label(l)) => {
            if graph.requires_child(parent_label, l) {
                vec![l.clone()]
            } else {
                return false;
            }
        }
        (Axis::Descendant, NodeTest::Label(l)) => {
            if graph.implied_descendants(parent_label).contains(l) {
                vec![l.clone()]
            } else {
                return false;
            }
        }
        (Axis::Child, NodeTest::Wildcard) => {
            let required = graph.required_children(parent_label);
            if required.is_empty() {
                return false;
            }
            required.into_iter().map(str::to_string).collect()
        }
        (Axis::Descendant, NodeTest::Wildcard) => {
            let required: Vec<String> = graph
                .implied_descendants(parent_label)
                .into_iter()
                .collect();
            if required.is_empty() {
                return false;
            }
            required
        }
    };
    // Nested structure below the filter node must be implied for at least one of the labels the
    // implied element can carry (for labelled tests there is exactly one).
    target_labels.iter().any(|label| {
        query
            .children(node)
            .iter()
            .all(|&child| filter_implied_for_label(graph, query, child, label))
    })
}

/// The element labels a spine node can denote under the schema (conservative superset).
fn possible_labels_of(
    schema: &Dms,
    graph: &DependencyGraph,
    query: &TwigQuery,
    node: QNodeId,
) -> BTreeSet<String> {
    // Walk down the spine from the root, tracking the possible labels at each step.
    let spine = query.spine();
    let mut labels: BTreeSet<String> = match query.axis(QNodeId::ROOT) {
        Axis::Child => BTreeSet::from([schema.root().to_string()]),
        Axis::Descendant => {
            let mut all = graph.reachable_from(schema.root());
            all.insert(schema.root().to_string());
            all
        }
    };
    labels.retain(|l| query.test(QNodeId::ROOT).matches(l));
    if spine[0] == node {
        return labels;
    }
    for window in spine.windows(2) {
        let child = window[1];
        let mut next = BTreeSet::new();
        for l in &labels {
            let step_labels: Vec<String> = match query.axis(child) {
                Axis::Child => graph
                    .possible_children(l)
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                Axis::Descendant => graph.reachable_from(l).into_iter().collect(),
            };
            for sl in step_labels {
                if query.test(child).matches(&sl) {
                    next.insert(sl);
                }
            }
        }
        labels = next;
        if child == node {
            return labels;
        }
    }
    labels
}

/// Remove every filter implied by the schema from the query.
pub fn prune_implied_filters(schema: &Dms, query: &TwigQuery) -> PruneReport {
    let mut pruned = query.clone();
    let mut removed = Vec::new();
    loop {
        let implied = pruned
            .filter_roots()
            .into_iter()
            .find(|&f| filter_implied(schema, &pruned, f));
        match implied {
            Some(f) => {
                removed.push(format!("[{}]", subquery_xpath(&pruned, f)));
                pruned.remove_subtree(f);
            }
            None => break,
        }
    }
    PruneReport {
        size_before: query.size(),
        size_after: pruned.size(),
        query: pruned,
        removed,
    }
}

fn subquery_xpath(query: &TwigQuery, node: QNodeId) -> String {
    let mut out = String::new();
    if query.axis(node) == Axis::Descendant {
        out.push_str(".//");
    }
    out.push_str(&query.test(node).to_string());
    for &child in query.children(node) {
        out.push('[');
        out.push_str(&subquery_xpath(query, child));
        out.push(']');
    }
    out
}

/// The schema-aware learner of the paper's proposed optimisation: learn from positive examples,
/// then drop every filter the schema already implies.
pub fn learn_with_schema(
    examples: &[(&XmlTree, NodeId)],
    schema: &Dms,
) -> Result<PruneReport, TwigLearnError> {
    let query = learn_from_positives(examples)?;
    Ok(prune_implied_filters(schema, &query))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;
    use crate::xpath::parse_xpath;
    use qbe_schema::dms::{Clause, Rule};
    use qbe_schema::Multiplicity::*;
    use qbe_xml::TreeBuilder;

    /// site -> people^1 ; people -> person+ ; person -> name^1 || emailaddress^1 || profile? ;
    /// profile -> age?
    fn schema() -> Dms {
        Dms::new("site")
            .rule("site", Rule::new(vec![Clause::single("people", One)]))
            .rule("people", Rule::new(vec![Clause::single("person", Plus)]))
            .rule(
                "person",
                Rule::new(vec![
                    Clause::single("name", One),
                    Clause::single("emailaddress", One),
                    Clause::single("profile", Optional),
                ]),
            )
            .rule("profile", Rule::new(vec![Clause::single("age", Optional)]))
    }

    fn doc() -> XmlTree {
        TreeBuilder::new("site")
            .open("people")
            .open("person")
            .leaf("name")
            .leaf("emailaddress")
            .open("profile")
            .leaf("age")
            .close()
            .close()
            .open("person")
            .leaf("name")
            .leaf("emailaddress")
            .close()
            .close()
            .build()
    }

    #[test]
    fn satisfiable_queries_embed_into_dependency_graph() {
        let s = schema();
        assert!(query_satisfiable(
            &s,
            &parse_xpath("/site/people/person/name").unwrap()
        ));
        assert!(query_satisfiable(
            &s,
            &parse_xpath("//person[profile[age]]").unwrap()
        ));
        assert!(query_satisfiable(
            &s,
            &parse_xpath("//profile/age").unwrap()
        ));
    }

    #[test]
    fn unsatisfiable_queries_are_detected() {
        let s = schema();
        // `address` is not part of the schema at all.
        assert!(!query_satisfiable(
            &s,
            &parse_xpath("//person/address").unwrap()
        ));
        // `age` is never a child of `person` (only of `profile`).
        assert!(!query_satisfiable(
            &s,
            &parse_xpath("//person/age").unwrap()
        ));
        // Wrong root.
        assert!(!query_satisfiable(
            &s,
            &parse_xpath("/people/person").unwrap()
        ));
    }

    #[test]
    fn required_child_filters_are_implied() {
        let s = schema();
        let q = parse_xpath("//person[name]/emailaddress").unwrap();
        let name_filter = q.filter_roots()[0];
        assert!(filter_implied(&s, &q, name_filter));
    }

    #[test]
    fn optional_child_filters_are_not_implied() {
        let s = schema();
        let q = parse_xpath("//person[profile]/emailaddress").unwrap();
        let profile_filter = q.filter_roots()[0];
        assert!(!filter_implied(&s, &q, profile_filter));
    }

    #[test]
    fn descendant_filters_follow_required_chains() {
        let s = schema();
        // Every site has people, and every people has a person, hence site implies .//person.
        let q = parse_xpath("/site[.//person]/people").unwrap();
        let filter = q.filter_roots()[0];
        assert!(filter_implied(&s, &q, filter));
        // But .//age is not implied (profile and age are optional).
        let q2 = parse_xpath("/site[.//age]/people").unwrap();
        assert!(!filter_implied(&s, &q2, q2.filter_roots()[0]));
    }

    #[test]
    fn pruning_removes_exactly_the_implied_filters() {
        let s = schema();
        let q = parse_xpath("//person[name][emailaddress][profile]/name").unwrap();
        let report = prune_implied_filters(&s, &q);
        // name and emailaddress are required by the schema; profile is optional and must stay.
        assert_eq!(report.query.to_xpath(), "//person[profile]/name");
        assert_eq!(report.size_before, 5);
        assert_eq!(report.size_after, 3);
        assert_eq!(report.removed.len(), 2);
        assert!(report.reduction_percent() > 0.0);
    }

    #[test]
    fn pruning_preserves_semantics_on_valid_documents() {
        let s = schema();
        let d = doc();
        assert!(s.accepts(&d));
        let q = parse_xpath("//person[name][emailaddress]/profile").unwrap();
        let report = prune_implied_filters(&s, &q);
        assert_eq!(eval::select(&q, &d), eval::select(&report.query, &d));
    }

    #[test]
    fn schema_aware_learner_produces_smaller_queries() {
        // The overspecialisation experiment in miniature: learn person-selecting queries with
        // and without the schema.
        let d = doc();
        let persons = d.nodes_with_label("person");
        let examples: Vec<(&XmlTree, NodeId)> = persons.iter().map(|&p| (&d, p)).collect();
        let plain = learn_from_positives(&examples).unwrap();
        let report = learn_with_schema(&examples, &schema()).unwrap();
        assert!(
            report.size_after < plain.size(),
            "pruning had no effect: {plain}"
        );
        // Both select exactly the annotated nodes on the example document.
        for &p in &persons {
            assert!(eval::selects(&report.query, &d, p));
        }
    }

    #[test]
    fn nested_filters_prune_recursively() {
        // people[person[name]] : person is required under people and name under person, so the
        // whole nested filter is implied.
        let s = schema();
        let q = parse_xpath("/site/people[person[name]]/person").unwrap();
        let report = prune_implied_filters(&s, &q);
        assert_eq!(report.query.to_xpath(), "/site/people/person");
    }

    #[test]
    fn wildcard_filters_are_implied_only_when_some_child_is_required() {
        let s = schema();
        let q = parse_xpath("//person[*]/name").unwrap();
        // person requires name and emailaddress children, so [*] is implied.
        assert!(filter_implied(&s, &q, q.filter_roots()[0]));
        let q2 = parse_xpath("//profile[*]/age").unwrap();
        // profile's only child (age) is optional: [*] is not implied.
        assert!(!filter_implied(&s, &q2, q2.filter_roots()[0]));
    }
}
