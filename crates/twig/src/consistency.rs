//! Consistency checking and learning with positive **and** negative examples.
//!
//! The paper recalls that deciding whether *some* twig query selects all positive examples and
//! no negative one is NP-complete in general, that it becomes tractable when the number of
//! examples is bounded, and that for *unions* of twig queries consistency is trivial. This
//! module provides all three regimes plus the practical learner used by the interactive
//! experiments:
//!
//! * [`most_specific_consistent`] — polynomial heuristic: the most specific query of the
//!   learner's hypothesis space (spine + compatible filters) either witnesses consistency or no
//!   query of that space does;
//! * [`exhaustive_consistent`] — exact search over all twig queries up to a size bound built
//!   from the example alphabet (exponential; exhibits the NP-hardness shape in the benchmarks);
//! * [`path_consistent`] — exact polynomial check for the path-query class;
//! * [`UnionQuery`] / [`learn_union`] — unions of twigs, for which a consistent hypothesis
//!   always exists unless the same node is annotated both positive and negative.

use crate::eval;
use crate::example::ExampleSet;
use crate::learn::{learn_from_positives, learn_path_from_positives};
use crate::query::{Axis, NodeTest, QNodeId, TwigQuery};
use qbe_xml::{NodeId, XmlTree};
use std::collections::BTreeSet;
use std::fmt;

/// Outcome of a consistency check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Consistency {
    /// A consistent query was found.
    Consistent(Box<TwigQuery>),
    /// No query of the explored hypothesis space is consistent.
    Inconsistent,
}

impl Consistency {
    /// The witnessing query, if consistent.
    pub fn query(&self) -> Option<&TwigQuery> {
        match self {
            Consistency::Consistent(q) => Some(q),
            Consistency::Inconsistent => None,
        }
    }

    /// Whether a consistent query exists (in the explored space).
    pub fn is_consistent(&self) -> bool {
        matches!(self, Consistency::Consistent(_))
    }
}

impl fmt::Display for Consistency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Consistency::Consistent(q) => write!(f, "consistent, witness {q}"),
            Consistency::Inconsistent => write!(f, "inconsistent"),
        }
    }
}

/// Polynomial heuristic check: learn the most specific query of the practical hypothesis space
/// from the positives and test it against the negatives.
///
/// Because every other query of that space is more general (selects a superset of nodes on every
/// document), the most specific one selects a negative only if *every* query of the space does —
/// so within the space the answer is exact; a query outside the space could still separate the
/// examples (see [`exhaustive_consistent`]).
pub fn most_specific_consistent(examples: &ExampleSet) -> Consistency {
    let positives = examples.positives();
    if positives.is_empty() {
        // With no positives, the unsatisfiable-on-these-documents query `//⊥` (a label that
        // never occurs) is consistent; represent it with a fresh improbable label.
        let q = TwigQuery::descendant_of_root("__no_such_label__");
        return if examples.consistent_with(&q) {
            Consistency::Consistent(Box::new(q))
        } else {
            Consistency::Inconsistent
        };
    }
    let candidate = learn_from_positives(&positives).expect("non-empty positives");
    if examples.consistent_with(&candidate) {
        Consistency::Consistent(Box::new(candidate))
    } else {
        Consistency::Inconsistent
    }
}

/// Exact polynomial consistency for **path queries**: the most specific consistent path is the
/// generalisation of the positives' paths; it is consistent iff it avoids every negative.
pub fn path_consistent(examples: &ExampleSet) -> Consistency {
    let positives = examples.positives();
    if positives.is_empty() {
        return most_specific_consistent(examples);
    }
    let candidate = learn_path_from_positives(&positives).expect("non-empty positives");
    if examples.consistent_with(&candidate) {
        Consistency::Consistent(Box::new(candidate))
    } else {
        Consistency::Inconsistent
    }
}

/// Exact (exponential) consistency: enumerate every twig query with at most `max_nodes` nodes
/// over the label alphabet of the examples (plus the wildcard), in increasing size, and return
/// the first consistent one.
///
/// This is the brute-force witness of the NP-complete general problem; the benchmarks use it to
/// show the running-time blow-up that motivates the paper's restriction to anchored twigs,
/// bounded example sets and unions.
pub fn exhaustive_consistent(examples: &ExampleSet, max_nodes: usize) -> Consistency {
    let mut alphabet: BTreeSet<String> = BTreeSet::new();
    for doc in examples.documents() {
        alphabet.extend(doc.alphabet());
    }
    let mut tests: Vec<NodeTest> = alphabet.iter().map(NodeTest::label).collect();
    tests.push(NodeTest::Wildcard);

    // Enumerate queries by structure: start from single-node queries and grow by attaching one
    // node at a time to any existing node (BFS over sizes).
    let mut frontier: Vec<TwigQuery> = Vec::new();
    for test in &tests {
        for axis in [Axis::Child, Axis::Descendant] {
            let q = TwigQuery::new(axis, test.clone());
            if examples.consistent_with(&q) {
                return Consistency::Consistent(Box::new(q));
            }
            frontier.push(q);
        }
    }
    for _size in 2..=max_nodes {
        let mut next = Vec::new();
        for q in &frontier {
            for parent in q.node_ids() {
                for test in &tests {
                    for axis in [Axis::Child, Axis::Descendant] {
                        let mut candidate = q.clone();
                        let new = candidate.add_node(parent, axis, test.clone());
                        // Try both keeping the old selected node and selecting the new node.
                        for selected in [candidate.selected(), new] {
                            let mut variant = candidate.clone();
                            variant.set_selected(selected);
                            if examples.consistent_with(&variant) {
                                return Consistency::Consistent(Box::new(variant));
                            }
                        }
                        next.push(candidate);
                    }
                }
            }
        }
        frontier = next;
    }
    Consistency::Inconsistent
}

/// A finite union of twig queries, selecting the union of their answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnionQuery {
    members: Vec<TwigQuery>,
}

impl UnionQuery {
    /// Build a union from member queries.
    pub fn new(members: Vec<TwigQuery>) -> UnionQuery {
        UnionQuery { members }
    }

    /// The member queries.
    pub fn members(&self) -> &[TwigQuery] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the union is empty (selects nothing).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Evaluate the union on a document, building a fresh index and memo for this one call.
    /// Callers evaluating many hypotheses against the same document should build the
    /// [`qbe_xml::NodeIndex`] once and use [`Self::select_with`] instead.
    pub fn select(&self, doc: &XmlTree) -> BTreeSet<NodeId> {
        self.select_with(
            doc,
            &qbe_xml::NodeIndex::build(doc),
            &mut crate::eval_indexed::EvalCache::new(),
        )
    }

    /// Evaluate the union through a caller-owned index and sub-twig memo.
    ///
    /// Members are evaluated over the one shared memo — union members produced by
    /// [`learn_union`] share most of their structure, so the memo collapses the repeated
    /// filters to a single match-set computation, and across calls nothing is recomputed.
    pub fn select_with(
        &self,
        doc: &XmlTree,
        index: &qbe_xml::NodeIndex,
        cache: &mut crate::eval_indexed::EvalCache,
    ) -> BTreeSet<NodeId> {
        self.select_bits_with(doc, index, cache).iter().collect()
    }

    /// [`Self::select_with`] as a dense bitset: the member answers are combined by word-level
    /// union (`OR`) instead of per-element set insertion.
    pub fn select_bits_with(
        &self,
        doc: &XmlTree,
        index: &qbe_xml::NodeIndex,
        cache: &mut crate::eval_indexed::EvalCache,
    ) -> qbe_bitset::DenseSet<NodeId> {
        let mut out = qbe_bitset::DenseSet::new(doc.size());
        for m in &self.members {
            let member = crate::eval_indexed::select_bits_with(m, doc, index, cache);
            out.or_with(&member);
        }
        out
    }

    /// Whether the union selects a given node.
    pub fn selects(&self, doc: &XmlTree, node: NodeId) -> bool {
        self.members.iter().any(|m| eval::selects(m, doc, node))
    }

    /// Whether the union is consistent with an example set: one indexed evaluation of the
    /// union per annotated document (through the set's persistent per-document state), then a
    /// lookup per annotation.
    pub fn consistent_with(&self, examples: &ExampleSet) -> bool {
        (0..examples.documents().len()).all(|doc_ix| {
            let on_doc: Vec<(NodeId, bool)> = examples
                .annotations()
                .iter()
                .filter(|a| a.doc == doc_ix)
                .map(|a| (a.node, a.positive))
                .collect();
            on_doc.is_empty()
                || examples.with_eval_state(doc_ix, |doc, index, cache| {
                    let selected = self.select_with(doc, index, cache);
                    on_doc
                        .iter()
                        .all(|&(node, positive)| selected.contains(&node) == positive)
                })
        })
    }

    /// Total size (sum of member sizes).
    pub fn size(&self) -> usize {
        self.members.iter().map(TwigQuery::size).sum()
    }
}

impl fmt::Display for UnionQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.members.iter().map(|m| m.to_xpath()).collect();
        write!(f, "{}", parts.join(" | "))
    }
}

/// Learn a union of twig queries consistent with the examples.
///
/// Strategy (which makes consistency checking for unions trivial, as the paper notes):
/// each positive example gets a member query; the member starts as the practical learner's
/// single-example query and falls back to the example's *exact* root path with all child filters
/// when the general one captures a negative. The union is consistent unless some positive
/// example's most specific description still selects an annotated negative — which only happens
/// when the negatives contradict the positives outright.
pub fn learn_union(examples: &ExampleSet) -> Option<UnionQuery> {
    let mut members = Vec::new();
    for (doc, node) in examples.positives() {
        let general = learn_from_positives(&[(doc, node)]).expect("single positive");
        let member = if member_rejects_negatives(&general, examples) {
            general
        } else {
            let exact = most_specific_description(doc, node);
            if !member_rejects_negatives(&exact, examples) {
                return None;
            }
            exact
        };
        members.push(member);
    }
    let union = UnionQuery::new(members);
    union.consistent_with(examples).then_some(union)
}

/// Whether the member query avoids every annotated negative — indexed, one evaluation per
/// annotated document through the example set's persistent state.
fn member_rejects_negatives(query: &TwigQuery, examples: &ExampleSet) -> bool {
    (0..examples.documents().len()).all(|doc_ix| {
        let negatives: Vec<(NodeId, bool)> = examples
            .annotations()
            .iter()
            .filter(|a| !a.positive && a.doc == doc_ix)
            .map(|a| (a.node, false))
            .collect();
        negatives.is_empty()
            || examples.with_eval_state(doc_ix, |doc, index, cache| {
                crate::eval_indexed::classifies_with(query, doc, index, cache, negatives)
            })
    })
}

/// The most specific twig describing one annotated node: the exact root path with every subtree
/// of every ancestor attached as a (child-axis, fully expanded) filter.
pub fn most_specific_description(doc: &XmlTree, node: NodeId) -> TwigQuery {
    let mut ancestors = doc.ancestors(node);
    ancestors.reverse();
    ancestors.push(node);
    let mut query = TwigQuery::new(Axis::Child, NodeTest::label(doc.label(ancestors[0])));
    let mut prev_q = QNodeId::ROOT;
    for window in ancestors.windows(2) {
        let (parent_doc_node, child_doc_node) = (window[0], window[1]);
        // Attach every sibling subtree of the path child as an exact filter.
        for &sibling in doc.children(parent_doc_node) {
            if sibling == child_doc_node {
                continue;
            }
            copy_subtree_as_filter(doc, sibling, &mut query, prev_q);
        }
        prev_q = query.add_node(
            prev_q,
            Axis::Child,
            NodeTest::label(doc.label(child_doc_node)),
        );
    }
    // Children of the annotated node itself.
    for &child in doc.children(node) {
        copy_subtree_as_filter(doc, child, &mut query, prev_q);
    }
    query.set_selected(prev_q);
    query
}

fn copy_subtree_as_filter(doc: &XmlTree, doc_node: NodeId, query: &mut TwigQuery, under: QNodeId) {
    let q = query.add_node(under, Axis::Child, NodeTest::label(doc.label(doc_node)));
    for &child in doc.children(doc_node) {
        copy_subtree_as_filter(doc, child, query, q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xpath::parse_xpath;
    use qbe_xml::TreeBuilder;

    fn doc() -> XmlTree {
        TreeBuilder::new("site")
            .open("people")
            .open("person")
            .leaf("name")
            .leaf("emailaddress")
            .close()
            .open("person")
            .leaf("name")
            .close()
            .close()
            .build()
    }

    fn example_set(pos: &[NodeId], neg: &[NodeId], d: &XmlTree) -> ExampleSet {
        let mut set = ExampleSet::new();
        let ix = set.add_document(d.clone());
        for &p in pos {
            set.add_positive(ix, p);
        }
        for &n in neg {
            set.add_negative(ix, n);
        }
        set
    }

    #[test]
    fn separable_examples_are_consistent() {
        let d = doc();
        let persons = d.nodes_with_label("person");
        let names = d.nodes_with_label("name");
        // positives: the person with an email; negatives: a name node.
        let set = example_set(&[persons[0]], &[names[1]], &d);
        let result = most_specific_consistent(&set);
        assert!(result.is_consistent());
        assert!(set.consistent_with(result.query().unwrap()));
    }

    #[test]
    fn filters_separate_positives_from_negatives() {
        let d = doc();
        let persons = d.nodes_with_label("person");
        // positive: person with email; negative: person without email.
        let set = example_set(&[persons[0]], &[persons[1]], &d);
        let result = most_specific_consistent(&set);
        assert!(result.is_consistent());
        let q = result.query().unwrap();
        assert!(q.to_xpath().contains("emailaddress"), "got {q}");
    }

    #[test]
    fn contradictory_annotations_are_inconsistent() {
        let d = doc();
        let persons = d.nodes_with_label("person");
        // The same node annotated positive and negative can never be separated.
        let set = example_set(&[persons[0]], &[persons[0]], &d);
        assert!(!most_specific_consistent(&set).is_consistent());
        assert!(!exhaustive_consistent(&set, 3).is_consistent());
        assert!(learn_union(&set).is_none());
    }

    #[test]
    fn no_positives_yields_empty_query() {
        let d = doc();
        let names = d.nodes_with_label("name");
        let set = example_set(&[], &[names[0]], &d);
        let result = most_specific_consistent(&set);
        assert!(result.is_consistent());
    }

    #[test]
    fn path_consistency_is_exact_for_path_separable_examples() {
        let d = doc();
        let names = d.nodes_with_label("name");
        let emails = d.nodes_with_label("emailaddress");
        let set = example_set(&[names[0], names[1]], &[emails[0]], &d);
        let result = path_consistent(&set);
        assert!(result.is_consistent());
        assert!(result.query().unwrap().is_path());
    }

    #[test]
    fn path_consistency_fails_when_filters_are_needed() {
        let d = doc();
        let persons = d.nodes_with_label("person");
        let set = example_set(&[persons[0]], &[persons[1]], &d);
        // No pure path distinguishes the two person nodes...
        assert!(!path_consistent(&set).is_consistent());
        // ...but a twig with a filter does.
        assert!(most_specific_consistent(&set).is_consistent());
    }

    #[test]
    fn exhaustive_search_finds_small_witnesses() {
        let d = doc();
        let persons = d.nodes_with_label("person");
        let set = example_set(&[persons[0]], &[persons[1]], &d);
        let result = exhaustive_consistent(&set, 3);
        assert!(result.is_consistent());
        let q = result.query().unwrap();
        assert!(set.consistent_with(q));
        assert!(q.size() <= 3);
    }

    #[test]
    fn exhaustive_search_respects_size_bound() {
        let d = doc();
        let persons = d.nodes_with_label("person");
        let set = example_set(&[persons[0]], &[persons[1]], &d);
        // Size 1 queries cannot distinguish the two person nodes.
        assert!(!exhaustive_consistent(&set, 1).is_consistent());
    }

    #[test]
    fn union_learner_is_consistent_when_possible() {
        let d = doc();
        let persons = d.nodes_with_label("person");
        let names = d.nodes_with_label("name");
        let set = example_set(
            &[persons[0], names[1]],
            &[d.nodes_with_label("people")[0]],
            &d,
        );
        let union = learn_union(&set).expect("a consistent union exists");
        assert!(union.consistent_with(&set));
        assert_eq!(union.len(), 2);
    }

    #[test]
    fn union_evaluation_is_the_union_of_members() {
        let d = doc();
        let union = UnionQuery::new(vec![
            parse_xpath("//name").unwrap(),
            parse_xpath("//emailaddress").unwrap(),
        ]);
        let selected = union.select(&d);
        assert_eq!(selected.len(), 3);
        assert!(union.selects(&d, d.nodes_with_label("emailaddress")[0]));
        assert!(!union.selects(&d, qbe_xml::XmlTree::ROOT));
    }

    #[test]
    fn most_specific_description_selects_only_isomorphic_contexts() {
        let d = doc();
        let persons = d.nodes_with_label("person");
        let q = most_specific_description(&d, persons[0]);
        assert!(eval::selects(&q, &d, persons[0]));
        assert!(
            !eval::selects(&q, &d, persons[1]),
            "person without email must not match: {q}"
        );
    }
}
