//! Twig queries — the tree-pattern subclass of XPath whose learnability the paper builds on.
//!
//! A twig query is a rooted tree of *query nodes*. Every query node carries a [`NodeTest`]
//! (a label or the wildcard `*`) and is connected to its parent by an [`Axis`]: `Child` (`/`)
//! or `Descendant` (`//`). The query root itself has an axis relating it to a *virtual document
//! root* sitting above the document's root element, so `/site/people` (root element must be
//! `site`) and `//person` (any `person` element) are both representable. One query node is the
//! **selected node**; the query is unary and returns the set of document nodes the selected node
//! can be mapped to by some embedding.
//!
//! The path from the query root to the selected node is the **spine**; subtrees hanging off the
//! spine are **filters** (XPath predicates).
//!
//! A twig is **anchored** (the learnable class identified by Staworko & Wieczorek) when no
//! wildcard node is the target of a descendant edge — intuitively every `*` is "anchored" to a
//! labelled context immediately above it.

use std::collections::BTreeSet;
use std::fmt;

/// Node test of a query node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeTest {
    /// Matches only elements with this label.
    Label(String),
    /// Matches any element (`*`).
    Wildcard,
}

impl NodeTest {
    /// Convenience constructor for a label test.
    pub fn label(l: impl Into<String>) -> NodeTest {
        NodeTest::Label(l.into())
    }

    /// Whether the test matches the given element label.
    pub fn matches(&self, label: &str) -> bool {
        match self {
            NodeTest::Label(l) => l == label,
            NodeTest::Wildcard => true,
        }
    }

    /// Whether this test is at least as general as `other` (matches every label `other` does).
    pub fn generalises(&self, other: &NodeTest) -> bool {
        match (self, other) {
            (NodeTest::Wildcard, _) => true,
            (NodeTest::Label(a), NodeTest::Label(b)) => a == b,
            (NodeTest::Label(_), NodeTest::Wildcard) => false,
        }
    }
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Label(l) => write!(f, "{l}"),
            NodeTest::Wildcard => write!(f, "*"),
        }
    }
}

/// Axis connecting a query node to its parent (or the query root to the virtual document root).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Axis {
    /// `/` — the node must be a child.
    Child,
    /// `//` — the node must be a proper descendant.
    Descendant,
}

impl Axis {
    /// Whether this axis is at least as general as `other` (`//` generalises `/`).
    pub fn generalises(self, other: Axis) -> bool {
        self == Axis::Descendant || other == Axis::Child
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::Child => write!(f, "/"),
            Axis::Descendant => write!(f, "//"),
        }
    }
}

/// Identifier of a node within a [`TwigQuery`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QNodeId(pub(crate) u32);

impl QNodeId {
    /// The query root.
    pub const ROOT: QNodeId = QNodeId(0);

    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct QNode {
    test: NodeTest,
    axis: Axis,
    parent: Option<QNodeId>,
    children: Vec<QNodeId>,
}

/// A unary twig query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwigQuery {
    nodes: Vec<QNode>,
    selected: QNodeId,
}

impl TwigQuery {
    /// Create a query consisting of a single (root and selected) node.
    ///
    /// `axis` relates the root to the virtual document root: `Child` forces it to match the
    /// document's root element, `Descendant` lets it match any element.
    pub fn new(axis: Axis, test: NodeTest) -> TwigQuery {
        TwigQuery {
            nodes: vec![QNode {
                test,
                axis,
                parent: None,
                children: Vec::new(),
            }],
            selected: QNodeId::ROOT,
        }
    }

    /// Build a pure path query `axis0 l0 axis1 l1 … axisn ln` whose selected node is the last
    /// step.
    pub fn path(steps: impl IntoIterator<Item = (Axis, NodeTest)>) -> TwigQuery {
        let mut iter = steps.into_iter();
        let (axis, test) = iter.next().expect("a path query needs at least one step");
        let mut q = TwigQuery::new(axis, test);
        let mut cur = QNodeId::ROOT;
        for (axis, test) in iter {
            cur = q.add_node(cur, axis, test);
        }
        q.selected = cur;
        q
    }

    /// Parse-free helper for the common `//label` query.
    pub fn descendant_of_root(label: impl Into<String>) -> TwigQuery {
        TwigQuery::new(Axis::Descendant, NodeTest::label(label))
    }

    /// Add a node under `parent`, returning its id. The selected node is unchanged.
    pub fn add_node(&mut self, parent: QNodeId, axis: Axis, test: NodeTest) -> QNodeId {
        assert!(parent.index() < self.nodes.len(), "parent out of bounds");
        let id = QNodeId(self.nodes.len() as u32);
        self.nodes.push(QNode {
            test,
            axis,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Number of query nodes — the "size of the query" reported in the experiments.
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// The selected (output) node.
    pub fn selected(&self) -> QNodeId {
        self.selected
    }

    /// Change the selected node.
    pub fn set_selected(&mut self, node: QNodeId) {
        assert!(node.index() < self.nodes.len());
        self.selected = node;
    }

    /// Node test of a query node.
    pub fn test(&self, node: QNodeId) -> &NodeTest {
        &self.nodes[node.index()].test
    }

    /// Replace the node test of a query node.
    pub fn set_test(&mut self, node: QNodeId, test: NodeTest) {
        self.nodes[node.index()].test = test;
    }

    /// Incoming axis of a query node.
    pub fn axis(&self, node: QNodeId) -> Axis {
        self.nodes[node.index()].axis
    }

    /// Replace the incoming axis of a query node.
    pub fn set_axis(&mut self, node: QNodeId, axis: Axis) {
        self.nodes[node.index()].axis = axis;
    }

    /// Parent of a query node.
    pub fn parent(&self, node: QNodeId) -> Option<QNodeId> {
        self.nodes[node.index()].parent
    }

    /// Children of a query node.
    pub fn children(&self, node: QNodeId) -> &[QNodeId] {
        &self.nodes[node.index()].children
    }

    /// All query node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = QNodeId> {
        (0..self.nodes.len() as u32).map(QNodeId)
    }

    /// The spine: query nodes from the root down to (and including) the selected node.
    pub fn spine(&self) -> Vec<QNodeId> {
        let mut path = vec![self.selected];
        let mut cur = self.selected;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Query nodes that are *not* on the spine but whose parent is — the roots of the filters.
    pub fn filter_roots(&self) -> Vec<QNodeId> {
        let spine: BTreeSet<QNodeId> = self.spine().into_iter().collect();
        self.node_ids()
            .filter(|n| !spine.contains(n) && self.parent(*n).is_some_and(|p| spine.contains(&p)))
            .collect()
    }

    /// Whether the query is a pure path query (no filters).
    pub fn is_path(&self) -> bool {
        self.filter_roots().is_empty() && self.children(self.selected).is_empty()
    }

    /// Whether the query is **anchored**: no wildcard node is the target of a descendant edge.
    pub fn is_anchored(&self) -> bool {
        self.node_ids().all(|n| {
            !(matches!(self.test(n), NodeTest::Wildcard) && self.axis(n) == Axis::Descendant)
        })
    }

    /// Remove the subtree rooted at `node` (which must not be on the spine); ids are renumbered.
    pub fn remove_subtree(&mut self, node: QNodeId) {
        let spine: BTreeSet<QNodeId> = self.spine().into_iter().collect();
        assert!(!spine.contains(&node), "cannot remove a spine node");
        // Collect the ids to drop (node and its descendants).
        let mut to_drop = BTreeSet::new();
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            to_drop.insert(n);
            stack.extend(self.children(n).iter().copied());
        }
        self.retain(|n| !to_drop.contains(&n));
    }

    /// Keep only nodes satisfying the predicate (the root and the spine must be kept);
    /// ids are renumbered, parent/child links and the selected node are remapped.
    fn retain(&mut self, keep: impl Fn(QNodeId) -> bool) {
        let mut mapping = vec![None; self.nodes.len()];
        let mut new_nodes: Vec<QNode> = Vec::new();
        for (ix, node) in self.nodes.iter().enumerate() {
            let id = QNodeId(ix as u32);
            if !keep(id) {
                continue;
            }
            // A kept node must have a kept parent (the root has none).
            let parent = node.parent.map(|p| {
                mapping[p.index()]
                    .expect("kept node has a dropped ancestor — remove whole subtrees only")
            });
            mapping[ix] = Some(QNodeId(new_nodes.len() as u32));
            new_nodes.push(QNode {
                test: node.test.clone(),
                axis: node.axis,
                parent,
                children: Vec::new(),
            });
        }
        // Rebuild child lists from the remapped parent links.
        let parents: Vec<Option<QNodeId>> = new_nodes.iter().map(|n| n.parent).collect();
        for (new_ix, parent) in parents.iter().enumerate() {
            if let Some(p) = parent {
                new_nodes[p.index()].children.push(QNodeId(new_ix as u32));
            }
        }
        self.selected = mapping[self.selected.index()].expect("the selected node must be kept");
        self.nodes = new_nodes;
    }

    /// Serialise to XPath syntax.
    ///
    /// Spine steps become location steps; filters become predicates. A filter child reached by
    /// a descendant edge is printed as `[.//…]`.
    pub fn to_xpath(&self) -> String {
        let spine = self.spine();
        let spine_set: BTreeSet<QNodeId> = spine.iter().copied().collect();
        let mut out = String::new();
        for &node in &spine {
            out.push_str(&self.axis(node).to_string());
            out.push_str(&self.test(node).to_string());
            for &child in self.children(node) {
                if !spine_set.contains(&child) {
                    out.push('[');
                    out.push_str(&self.filter_to_xpath(child));
                    out.push(']');
                }
            }
        }
        out
    }

    fn filter_to_xpath(&self, node: QNodeId) -> String {
        let mut out = String::new();
        match self.axis(node) {
            Axis::Child => {}
            Axis::Descendant => out.push_str(".//"),
        }
        out.push_str(&self.test(node).to_string());
        for &child in self.children(node) {
            out.push('[');
            out.push_str(&self.filter_to_xpath(child));
            out.push(']');
        }
        out
    }

    /// Deep structural clone with a fresh subtree grafted below `parent`, copying `other`'s
    /// subtree rooted at `other_node`. Returns the id of the new copy of `other_node`.
    pub fn graft_subtree(
        &mut self,
        parent: QNodeId,
        axis: Axis,
        other: &TwigQuery,
        other_node: QNodeId,
    ) -> QNodeId {
        let new = self.add_node(parent, axis, other.test(other_node).clone());
        for &child in other.children(other_node) {
            self.graft_subtree(new, other.axis(child), other, child);
        }
        new
    }

    /// Labels mentioned in the query (excluding wildcards), sorted.
    pub fn labels(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .node_ids()
            .filter_map(|n| match self.test(n) {
                NodeTest::Label(l) => Some(l.clone()),
                NodeTest::Wildcard => None,
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Number of descendant (`//`) edges.
    pub fn descendant_edge_count(&self) -> usize {
        self.node_ids()
            .filter(|n| self.axis(*n) == Axis::Descendant)
            .count()
    }

    /// Number of wildcard nodes.
    pub fn wildcard_count(&self) -> usize {
        self.node_ids()
            .filter(|n| matches!(self.test(*n), NodeTest::Wildcard))
            .count()
    }
}

impl fmt::Display for TwigQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_xpath())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `/site/people/person[name][.//age]/emailaddress` — selected node `emailaddress`.
    fn sample() -> TwigQuery {
        let mut q = TwigQuery::new(Axis::Child, NodeTest::label("site"));
        let people = q.add_node(QNodeId::ROOT, Axis::Child, NodeTest::label("people"));
        let person = q.add_node(people, Axis::Child, NodeTest::label("person"));
        q.add_node(person, Axis::Child, NodeTest::label("name"));
        q.add_node(person, Axis::Descendant, NodeTest::label("age"));
        let email = q.add_node(person, Axis::Child, NodeTest::label("emailaddress"));
        q.set_selected(email);
        q
    }

    #[test]
    fn path_constructor_selects_last_step() {
        let q = TwigQuery::path([
            (Axis::Child, NodeTest::label("site")),
            (Axis::Descendant, NodeTest::label("person")),
            (Axis::Child, NodeTest::label("name")),
        ]);
        assert_eq!(q.size(), 3);
        assert_eq!(q.test(q.selected()), &NodeTest::label("name"));
        assert!(q.is_path());
    }

    #[test]
    fn spine_runs_from_root_to_selected() {
        let q = sample();
        let spine_labels: Vec<String> = q.spine().iter().map(|n| q.test(*n).to_string()).collect();
        assert_eq!(
            spine_labels,
            vec!["site", "people", "person", "emailaddress"]
        );
    }

    #[test]
    fn filter_roots_are_off_spine_children_of_spine() {
        let q = sample();
        let filters: Vec<String> = q
            .filter_roots()
            .iter()
            .map(|n| q.test(*n).to_string())
            .collect();
        assert_eq!(filters, vec!["name", "age"]);
        assert!(!q.is_path());
    }

    #[test]
    fn xpath_serialisation() {
        let q = sample();
        assert_eq!(
            q.to_xpath(),
            "/site/people/person[name][.//age]/emailaddress"
        );
    }

    #[test]
    fn xpath_of_descendant_root_query() {
        let q = TwigQuery::descendant_of_root("person");
        assert_eq!(q.to_xpath(), "//person");
    }

    #[test]
    fn anchoring_detects_wildcard_under_descendant() {
        let mut ok = TwigQuery::new(Axis::Child, NodeTest::label("a"));
        ok.add_node(QNodeId::ROOT, Axis::Child, NodeTest::Wildcard);
        assert!(ok.is_anchored());

        let mut bad = TwigQuery::new(Axis::Child, NodeTest::label("a"));
        bad.add_node(QNodeId::ROOT, Axis::Descendant, NodeTest::Wildcard);
        assert!(!bad.is_anchored());

        let root_wildcard_desc = TwigQuery::new(Axis::Descendant, NodeTest::Wildcard);
        assert!(!root_wildcard_desc.is_anchored());
    }

    #[test]
    fn node_test_generalisation() {
        assert!(NodeTest::Wildcard.generalises(&NodeTest::label("a")));
        assert!(NodeTest::label("a").generalises(&NodeTest::label("a")));
        assert!(!NodeTest::label("a").generalises(&NodeTest::label("b")));
        assert!(!NodeTest::label("a").generalises(&NodeTest::Wildcard));
    }

    #[test]
    fn axis_generalisation() {
        assert!(Axis::Descendant.generalises(Axis::Child));
        assert!(Axis::Descendant.generalises(Axis::Descendant));
        assert!(Axis::Child.generalises(Axis::Child));
        assert!(!Axis::Child.generalises(Axis::Descendant));
    }

    #[test]
    fn remove_subtree_drops_filter_and_renumbers() {
        let mut q = sample();
        let name_filter = q
            .node_ids()
            .find(|n| q.test(*n) == &NodeTest::label("name"))
            .unwrap();
        let before = q.size();
        q.remove_subtree(name_filter);
        assert_eq!(q.size(), before - 1);
        assert_eq!(q.to_xpath(), "/site/people/person[.//age]/emailaddress");
        // Selected node still points at emailaddress.
        assert_eq!(q.test(q.selected()), &NodeTest::label("emailaddress"));
    }

    #[test]
    fn remove_nested_filter_subtree() {
        let mut q = TwigQuery::new(Axis::Child, NodeTest::label("r"));
        let a = q.add_node(QNodeId::ROOT, Axis::Child, NodeTest::label("a"));
        q.add_node(a, Axis::Child, NodeTest::label("b"));
        let sel = q.add_node(QNodeId::ROOT, Axis::Child, NodeTest::label("c"));
        q.set_selected(sel);
        assert_eq!(q.to_xpath(), "/r[a[b]]/c");
        q.remove_subtree(a);
        assert_eq!(q.to_xpath(), "/r/c");
        assert_eq!(q.size(), 2);
    }

    #[test]
    #[should_panic]
    fn removing_a_spine_node_panics() {
        let mut q = sample();
        let spine = q.spine();
        q.remove_subtree(spine[1]);
    }

    #[test]
    fn graft_subtree_copies_structure() {
        let donor = sample();
        let person_in_donor = donor
            .node_ids()
            .find(|n| donor.test(*n) == &NodeTest::label("person"))
            .unwrap();
        let mut q = TwigQuery::new(Axis::Child, NodeTest::label("root"));
        q.graft_subtree(QNodeId::ROOT, Axis::Descendant, &donor, person_in_donor);
        assert_eq!(q.to_xpath(), "/root[.//person[name][.//age][emailaddress]]");
    }

    #[test]
    fn statistics_helpers() {
        let q = sample();
        assert_eq!(q.descendant_edge_count(), 1);
        assert_eq!(q.wildcard_count(), 0);
        assert_eq!(
            q.labels(),
            vec!["age", "emailaddress", "name", "people", "person", "site"]
        );
    }
}
