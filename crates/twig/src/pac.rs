//! Approximate (PAC-style) learning of twig queries.
//!
//! Because exact learning from positive *and* negative examples is intractable, the paper
//! proposes to "study an approximate learning framework, such as PAC": the learned query may
//! select some negative examples and miss some positive ones, as long as its error under the
//! example distribution is small with high probability.
//!
//! This module provides the sampling arithmetic and a practical agnostic learner:
//!
//! * [`pac_sample_size`] — the standard `m ≥ (1/ε)(ln|H| + ln(1/δ))` bound for a finite
//!   hypothesis class;
//! * [`QueryQuality`] — precision / recall / F1 / error of a query against labelled nodes;
//! * [`pac_learn`] — draw a training sample from the documents, learn candidate queries from
//!   subsets of the positives (plus the union fallback), pick the candidate with the lowest
//!   empirical error, and report its quality on a held-out evaluation sample.

use crate::consistency::{learn_union, UnionQuery};
use crate::eval;
use crate::example::ExampleSet;
use crate::learn::learn_from_positives;
use crate::query::TwigQuery;
use qbe_xml::{NodeId, XmlTree};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Number of examples sufficient for PAC-learning a finite hypothesis class.
///
/// `m ≥ (ln hypothesis_count + ln(1/δ)) / ε`, rounded up.
pub fn pac_sample_size(epsilon: f64, delta: f64, hypothesis_count: f64) -> usize {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    assert!(hypothesis_count >= 1.0);
    ((hypothesis_count.ln() + (1.0 / delta).ln()) / epsilon).ceil() as usize
}

/// A coarse upper bound on the number of anchored twig queries with at most `max_nodes` nodes
/// over an alphabet of `alphabet` labels: each node picks a parent (≤ max_nodes), an axis (2)
/// and a test (alphabet + 1). Used only to size PAC samples.
pub fn twig_hypothesis_count(alphabet: usize, max_nodes: usize) -> f64 {
    let per_node = (max_nodes as f64) * 2.0 * (alphabet as f64 + 1.0);
    per_node.powi(max_nodes as i32)
}

/// Classification quality of a query against labelled nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryQuality {
    /// True positives.
    pub true_positives: usize,
    /// False positives (selected negatives).
    pub false_positives: usize,
    /// False negatives (missed positives).
    pub false_negatives: usize,
    /// True negatives.
    pub true_negatives: usize,
}

impl QueryQuality {
    /// Precision (1.0 when nothing is selected).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall (1.0 when there are no positives).
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Overall error rate (misclassified fraction).
    pub fn error(&self) -> f64 {
        let total =
            self.true_positives + self.false_positives + self.false_negatives + self.true_negatives;
        if total == 0 {
            0.0
        } else {
            (self.false_positives + self.false_negatives) as f64 / total as f64
        }
    }
}

/// Measure a query against a labelled sample of `(document index, node, label)` triples.
///
/// The query is evaluated once per referenced document through the indexed engine; each sample
/// item is then a set-membership test.
pub fn evaluate_quality(
    query: &TwigQuery,
    docs: &[XmlTree],
    sample: &[(usize, NodeId, bool)],
) -> QueryQuality {
    let mut selected_cache: Vec<Option<BTreeSet<NodeId>>> = vec![None; docs.len()];
    let mut q = QueryQuality {
        true_positives: 0,
        false_positives: 0,
        false_negatives: 0,
        true_negatives: 0,
    };
    for &(doc_ix, node, positive) in sample {
        let selected = selected_cache[doc_ix]
            .get_or_insert_with(|| {
                let index = qbe_xml::NodeIndex::build(&docs[doc_ix]);
                crate::eval_indexed::select(query, &docs[doc_ix], &index)
            })
            .contains(&node);
        match (positive, selected) {
            (true, true) => q.true_positives += 1,
            (true, false) => q.false_negatives += 1,
            (false, true) => q.false_positives += 1,
            (false, false) => q.true_negatives += 1,
        }
    }
    q
}

/// The learner returned by [`pac_learn`].
#[derive(Debug, Clone)]
pub enum PacHypothesis {
    /// A single twig query.
    Twig(TwigQuery),
    /// A union of twig queries.
    Union(UnionQuery),
}

impl PacHypothesis {
    /// Whether the hypothesis selects the node.
    pub fn selects(&self, doc: &XmlTree, node: NodeId) -> bool {
        match self {
            PacHypothesis::Twig(q) => eval::selects(q, doc, node),
            PacHypothesis::Union(u) => u.selects(doc, node),
        }
    }

    /// Size of the hypothesis (total query nodes).
    pub fn size(&self) -> usize {
        match self {
            PacHypothesis::Twig(q) => q.size(),
            PacHypothesis::Union(u) => u.size(),
        }
    }
}

/// Outcome of a PAC-learning run.
#[derive(Debug, Clone)]
pub struct PacOutcome {
    /// The selected hypothesis.
    pub hypothesis: PacHypothesis,
    /// Quality on the training sample.
    pub training: QueryQuality,
    /// Quality on the held-out evaluation sample.
    pub evaluation: QueryQuality,
    /// Number of labelled training examples used.
    pub training_examples: usize,
}

/// PAC-learn a query for the hidden `goal` over the given documents.
///
/// The oracle labels nodes according to `goal` (noise-free). `epsilon`/`delta` size the training
/// sample via [`pac_sample_size`] with a hypothesis bound derived from the documents' alphabet;
/// the remaining labelled nodes form the evaluation sample.
pub fn pac_learn(
    goal: &TwigQuery,
    docs: &[XmlTree],
    epsilon: f64,
    delta: f64,
    seed: u64,
) -> PacOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    // Label every node of every document according to the goal query.
    let mut labelled: Vec<(usize, NodeId, bool)> = Vec::new();
    for (ix, doc) in docs.iter().enumerate() {
        let selected = eval::select(goal, doc);
        for node in doc.node_ids() {
            labelled.push((ix, node, selected.contains(&node)));
        }
    }
    labelled.shuffle(&mut rng);
    let alphabet: BTreeSet<String> = docs.iter().flat_map(|d| d.alphabet()).collect();
    let hypothesis_count = twig_hypothesis_count(alphabet.len(), 6);
    let m = pac_sample_size(epsilon, delta, hypothesis_count).min(labelled.len());
    let (train, eval_sample) = labelled.split_at(m);

    // Candidate hypotheses: the single-twig learner on all training positives, and the union
    // learner as an agnostic fallback.
    let mut training_set = ExampleSet::new();
    let doc_ixs: Vec<usize> = docs
        .iter()
        .map(|d| training_set.add_document(d.clone()))
        .collect();
    for &(doc_ix, node, positive) in train {
        training_set.annotate(doc_ixs[doc_ix], node, positive);
    }
    let positives = training_set.positives();
    let mut candidates: Vec<PacHypothesis> = Vec::new();
    if !positives.is_empty() {
        if let Ok(q) = learn_from_positives(&positives) {
            candidates.push(PacHypothesis::Twig(q));
        }
    }
    if let Some(u) = learn_union(&training_set) {
        candidates.push(PacHypothesis::Union(u));
    }
    if candidates.is_empty() {
        candidates.push(PacHypothesis::Twig(TwigQuery::descendant_of_root(
            "__no_such_label__",
        )));
    }

    // Pick the candidate with the lowest empirical (training) error. Documents never change
    // across candidates, so each is indexed once here and every hypothesis is measured
    // through the same per-document state (hypotheses share filter structure, so even the
    // sub-twig memos carry over between candidates).
    let indexes: Vec<qbe_xml::NodeIndex> = docs.iter().map(qbe_xml::NodeIndex::build).collect();
    let mut caches: Vec<crate::eval_indexed::EvalCache> =
        vec![crate::eval_indexed::EvalCache::new(); docs.len()];
    let best = candidates
        .into_iter()
        .map(|c| {
            let quality = quality_of(&c, docs, &indexes, &mut caches, train);
            (quality.error(), c, quality)
        })
        .min_by(|a, b| a.0.partial_cmp(&b.0).expect("error rates are finite"))
        .expect("at least one candidate");

    let evaluation = quality_of(&best.1, docs, &indexes, &mut caches, eval_sample);
    PacOutcome {
        hypothesis: best.1,
        training: best.2,
        evaluation,
        training_examples: m,
    }
}

/// One indexed evaluation per referenced document (through the caller's persistent state),
/// then a set lookup per sample item.
fn quality_of(
    h: &PacHypothesis,
    docs: &[XmlTree],
    indexes: &[qbe_xml::NodeIndex],
    caches: &mut [crate::eval_indexed::EvalCache],
    sample: &[(usize, NodeId, bool)],
) -> QueryQuality {
    let mut selected_cache: Vec<Option<qbe_bitset::DenseSet<NodeId>>> = vec![None; docs.len()];
    let mut quality = QueryQuality {
        true_positives: 0,
        false_positives: 0,
        false_negatives: 0,
        true_negatives: 0,
    };
    for &(doc_ix, node, positive) in sample {
        let selected = selected_cache[doc_ix]
            .get_or_insert_with(|| match h {
                PacHypothesis::Twig(q) => crate::eval_indexed::select_bits_with(
                    q,
                    &docs[doc_ix],
                    &indexes[doc_ix],
                    &mut caches[doc_ix],
                ),
                PacHypothesis::Union(u) => {
                    u.select_bits_with(&docs[doc_ix], &indexes[doc_ix], &mut caches[doc_ix])
                }
            })
            .contains(node);
        match (positive, selected) {
            (true, true) => quality.true_positives += 1,
            (true, false) => quality.false_negatives += 1,
            (false, true) => quality.false_positives += 1,
            (false, false) => quality.true_negatives += 1,
        }
    }
    quality
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xpath::parse_xpath;
    use qbe_xml::xmark::{generate, XmarkConfig};
    use qbe_xml::TreeBuilder;

    #[test]
    fn sample_size_grows_with_tighter_parameters() {
        let loose = pac_sample_size(0.2, 0.2, 1e6);
        let tight_eps = pac_sample_size(0.05, 0.2, 1e6);
        let tight_delta = pac_sample_size(0.2, 0.01, 1e6);
        assert!(tight_eps > loose);
        assert!(tight_delta > loose);
    }

    #[test]
    #[should_panic]
    fn invalid_epsilon_is_rejected() {
        pac_sample_size(0.0, 0.1, 10.0);
    }

    #[test]
    fn quality_metrics_are_consistent() {
        let q = QueryQuality {
            true_positives: 8,
            false_positives: 2,
            false_negatives: 4,
            true_negatives: 86,
        };
        assert!((q.precision() - 0.8).abs() < 1e-9);
        assert!((q.recall() - 8.0 / 12.0).abs() < 1e-9);
        assert!((q.error() - 0.06).abs() < 1e-9);
        assert!(q.f1() > 0.0 && q.f1() < 1.0);
    }

    #[test]
    fn perfect_query_has_zero_error() {
        let doc = TreeBuilder::new("site")
            .open("people")
            .open("person")
            .leaf("name")
            .close()
            .close()
            .build();
        let goal = parse_xpath("//person").unwrap();
        let sample: Vec<(usize, NodeId, bool)> = doc
            .node_ids()
            .map(|n| (0usize, n, eval::selects(&goal, &doc, n)))
            .collect();
        let quality = evaluate_quality(&goal, &[doc], &sample);
        assert_eq!(quality.error(), 0.0);
        assert_eq!(quality.f1(), 1.0);
    }

    #[test]
    fn pac_learning_achieves_low_error_on_xmark_data() {
        let docs = vec![
            generate(&XmarkConfig::new(0.01, 3)),
            generate(&XmarkConfig::new(0.01, 4)),
        ];
        let goal = parse_xpath("/site/people/person/name").unwrap();
        let outcome = pac_learn(&goal, &docs, 0.1, 0.1, 11);
        assert!(outcome.training_examples > 0);
        assert!(
            outcome.evaluation.error() <= 0.1,
            "evaluation error {} too high",
            outcome.evaluation.error()
        );
    }

    #[test]
    fn pac_learning_with_no_positives_returns_empty_hypothesis() {
        let docs = vec![TreeBuilder::new("site").leaf("regions").build()];
        let goal = parse_xpath("//nonexistent").unwrap();
        let outcome = pac_learn(&goal, &docs, 0.25, 0.25, 1);
        assert_eq!(outcome.evaluation.false_positives, 0);
        assert_eq!(outcome.evaluation.error(), 0.0);
    }
}
