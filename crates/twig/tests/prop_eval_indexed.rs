//! Differential property suite: the indexed twig evaluator must be extensionally equal to the
//! naive embedding-table evaluator on random documents and random queries.
//!
//! This is the safety net under the indexed-engine rewrite: every learner, checker and session
//! now evaluates through `eval_indexed`, so any divergence from `eval` (the executable
//! specification) would silently change learner behaviour. Each property samples ≥256 random
//! `(document, query)` cases.

use proptest::prelude::*;
use qbe_twig::query::{Axis, NodeTest, TwigQuery};
use qbe_twig::{eval, eval_indexed};
use qbe_xml::random::{RandomTreeConfig, RandomTreeGenerator};
use qbe_xml::{NodeIndex, XmlTree};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn random_tree(seed: u64) -> XmlTree {
    let cfg = RandomTreeConfig {
        alphabet: ('a'..='e').map(|c| c.to_string()).collect(),
        max_depth: 5,
        max_children: 4,
        ..Default::default()
    };
    RandomTreeGenerator::new(cfg, seed).generate()
}

/// A random twig query over the tree's alphabet (plus a label the tree never carries and the
/// wildcard): random shape, random axes, random selected node.
fn random_query(seed: u64, doc: &XmlTree) -> TwigQuery {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9);
    let mut labels = doc.alphabet();
    labels.push("zz_absent".to_string());
    let random_test = |rng: &mut StdRng| {
        if rng.gen_bool(0.2) {
            NodeTest::Wildcard
        } else {
            NodeTest::label(labels.choose(rng).expect("non-empty alphabet"))
        }
    };
    let random_axis = |rng: &mut StdRng| {
        if rng.gen_bool(0.5) {
            Axis::Child
        } else {
            Axis::Descendant
        }
    };
    let axis = random_axis(&mut rng);
    let test = random_test(&mut rng);
    let mut q = TwigQuery::new(axis, test);
    let size = rng.gen_range(1usize..6);
    let mut ids = vec![q.selected()];
    for _ in 1..size {
        let parent = *ids.choose(&mut rng).expect("non-empty");
        let axis = random_axis(&mut rng);
        let test = random_test(&mut rng);
        ids.push(q.add_node(parent, axis, test));
    }
    let selected = *ids.choose(&mut rng).expect("non-empty");
    q.set_selected(selected);
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `eval_indexed::select` ≡ `eval::select` on random documents and queries.
    #[test]
    fn indexed_select_equals_naive_select(seed in 0u64..1_000_000) {
        let doc = random_tree(seed);
        let query = random_query(seed, &doc);
        let index = NodeIndex::build(&doc);
        let naive = eval::select(&query, &doc);
        let indexed = eval_indexed::select(&query, &doc, &index);
        prop_assert_eq!(
            &indexed, &naive,
            "query {} on a {}-node document", query.to_xpath(), doc.size()
        );
    }

    /// `count` agrees with `select().len()` for both evaluators.
    #[test]
    fn count_equals_select_len(seed in 0u64..1_000_000) {
        let doc = random_tree(seed);
        let query = random_query(seed.wrapping_mul(31), &doc);
        let index = NodeIndex::build(&doc);
        let selected = eval::select(&query, &doc);
        prop_assert_eq!(eval::count(&query, &doc), selected.len());
        prop_assert_eq!(eval_indexed::count(&query, &doc, &index), selected.len());
    }

    /// Per-node membership agrees between the evaluators (exercises `selects` independently of
    /// whole-set equality).
    #[test]
    fn indexed_selects_equals_naive_selects(seed in 0u64..1_000_000) {
        let doc = random_tree(seed);
        let query = random_query(seed.wrapping_mul(17), &doc);
        let index = NodeIndex::build(&doc);
        let mut evaluator = eval_indexed::Evaluator::new(&doc, &index);
        for node in doc.node_ids() {
            prop_assert_eq!(
                evaluator.selects(&query, node),
                eval::selects(&query, &doc, node),
                "query {} node {}", query.to_xpath(), node
            );
        }
    }

    /// A shared evaluator (warm memo) returns the same answers as a cold one: the cross-query
    /// cache never leaks state between structurally different queries.
    #[test]
    fn warm_cache_is_transparent(seed in 0u64..1_000_000) {
        let doc = random_tree(seed);
        let index = NodeIndex::build(&doc);
        let mut warm = eval_indexed::Evaluator::new(&doc, &index);
        for k in 0..4u64 {
            let query = random_query(seed.wrapping_add(k), &doc);
            prop_assert_eq!(warm.select(&query), eval::select(&query, &doc), "{}", query.to_xpath());
        }
    }
}
