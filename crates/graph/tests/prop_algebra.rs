//! Differential property suite for the algebra lowering: every legacy dialect, lowered through
//! [`qbe_graph::lower`] and evaluated on the shared bitset kernels, must be extensionally equal
//! to its legacy evaluator — the executable specification — on random graphs and random queries.
//!
//! Each property samples ≥256 random cases; the generators cover every constructor of the
//! dialect under test (labels the graphs carry and labels they never do, nesting, node tests,
//! the lot). A final property pins the optimizer: `QueryStore::optimize` may rewrite an
//! expression arbitrarily but never change its answer set.

use proptest::prelude::*;
use qbe_algebra::{EvalCache, QueryStore};
use qbe_graph::{
    eval_conj_tuples, eval_expr_pairs, eval_nre, evaluate, lower_conjunctive, lower_nre,
    lower_path_regex, ConjunctiveNre, GNodeId, GraphIndex, Nre, PathRegex, PropertyGraph,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

const LABELS: [&str; 4] = ["road", "train", "ferry", "trail"];
const NODE_LABELS: [&str; 3] = ["city", "station", "port"];

fn random_graph(seed: u64) -> PropertyGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = PropertyGraph::new();
    let nodes: Vec<_> = (0..rng.gen_range(1usize..8))
        .map(|_| g.add_node(*NODE_LABELS.choose(&mut rng).expect("non-empty")))
        .collect();
    for _ in 0..rng.gen_range(0usize..14) {
        let from = *nodes.choose(&mut rng).expect("non-empty");
        let to = *nodes.choose(&mut rng).expect("non-empty");
        // Draw from a prefix so some graphs miss some labels entirely.
        let cutoff = rng.gen_range(1usize..=LABELS.len());
        g.add_edge(from, to, LABELS[rng.gen_range(0usize..cutoff)]);
    }
    g
}

fn random_regex(rng: &mut StdRng, depth: usize) -> PathRegex {
    if depth == 0 || rng.gen_bool(0.35) {
        return PathRegex::label(*LABELS.choose(rng).expect("non-empty"));
    }
    match rng.gen_range(0u32..5) {
        0 => PathRegex::Concat(
            (0..rng.gen_range(1usize..4))
                .map(|_| random_regex(rng, depth - 1))
                .collect(),
        ),
        1 => PathRegex::Alt(
            (0..rng.gen_range(1usize..4))
                .map(|_| random_regex(rng, depth - 1))
                .collect(),
        ),
        2 => PathRegex::Star(Box::new(random_regex(rng, depth - 1))),
        3 => PathRegex::Plus(Box::new(random_regex(rng, depth - 1))),
        _ => PathRegex::Optional(Box::new(random_regex(rng, depth - 1))),
    }
}

fn random_nre(rng: &mut StdRng, depth: usize) -> Nre {
    if depth == 0 || rng.gen_bool(0.3) {
        return match rng.gen_range(0u32..4) {
            0 => Nre::AnyEdge,
            1 => Nre::NodeLabel((*NODE_LABELS.choose(rng).expect("non-empty")).to_string()),
            _ => Nre::label(*LABELS.choose(rng).expect("non-empty")),
        };
    }
    match rng.gen_range(0u32..6) {
        0 => Nre::Concat(
            (0..rng.gen_range(1usize..4))
                .map(|_| random_nre(rng, depth - 1))
                .collect(),
        ),
        1 => Nre::Alt(
            (0..rng.gen_range(1usize..4))
                .map(|_| random_nre(rng, depth - 1))
                .collect(),
        ),
        2 => Nre::Star(Box::new(random_nre(rng, depth - 1))),
        3 => Nre::Plus(Box::new(random_nre(rng, depth - 1))),
        4 => Nre::Optional(Box::new(random_nre(rng, depth - 1))),
        _ => Nre::Nest(Box::new(random_nre(rng, depth - 1))),
    }
}

/// Random conjunction of 1–3 NRE atoms over a 3-variable pool. Every atom gets *distinct*
/// subject and object variables: the legacy backtracking join treats a self-loop atom's two
/// occurrences of one variable inconsistently (known legacy quirk), so the specification is
/// only trusted off that corner.
fn random_conjunction(rng: &mut StdRng) -> ConjunctiveNre {
    const VARS: [&str; 3] = ["x", "y", "z"];
    let mut conj = ConjunctiveNre::new();
    for _ in 0..rng.gen_range(1usize..4) {
        let s = rng.gen_range(0usize..VARS.len());
        let mut o = rng.gen_range(0usize..VARS.len() - 1);
        if o >= s {
            o += 1;
        }
        conj = conj.atom(VARS[s], random_nre(rng, 1), VARS[o]);
    }
    conj
}

fn legacy_conj_tuples(conj: &ConjunctiveNre, g: &PropertyGraph) -> BTreeSet<Vec<GNodeId>> {
    let vars = conj.variables();
    conj.evaluate(g)
        .into_iter()
        .map(|binding| vars.iter().map(|v| binding[v]).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Lowered RPQ ≡ `rpq::evaluate` on random graphs and regexes.
    #[test]
    fn lowered_rpq_equals_legacy(seed in 0u64..1_000_000) {
        let g = random_graph(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA15E_B0A7);
        let regex = random_regex(&mut rng, 3);
        let index = GraphIndex::build(&g);
        let mut store = QueryStore::new();
        let mut cache = EvalCache::new();
        let lowered = lower_path_regex(&mut store, &regex);
        prop_assert_eq!(
            eval_expr_pairs(&index, &store, &mut cache, lowered),
            evaluate(&g, &regex),
            "regex {} on {} nodes / {} edges", regex, g.node_count(), g.edge_count()
        );
    }

    /// Lowered NRE ≡ `eval_nre`, nesting and node tests included.
    #[test]
    fn lowered_nre_equals_legacy(seed in 0u64..1_000_000) {
        let g = random_graph(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0BAD_CAFE);
        let nre = random_nre(&mut rng, 3);
        let index = GraphIndex::build(&g);
        let mut store = QueryStore::new();
        let mut cache = EvalCache::new();
        let lowered = lower_nre(&mut store, &nre);
        prop_assert_eq!(
            eval_expr_pairs(&index, &store, &mut cache, lowered),
            eval_nre(&g, &nre),
            "nre {} on {} nodes / {} edges", nre, g.node_count(), g.edge_count()
        );
    }

    /// Lowered conjunction ≡ the legacy backtracking join, projected over the same variables
    /// in the same (first-appearance) order.
    #[test]
    fn lowered_conjunction_equals_legacy(seed in 0u64..1_000_000) {
        let g = random_graph(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00C0_FFEE);
        let conj = random_conjunction(&mut rng);
        let index = GraphIndex::build(&g);
        let mut store = QueryStore::new();
        let mut cache = EvalCache::new();
        let lowered = lower_conjunctive(&mut store, &conj);
        prop_assert_eq!(
            eval_conj_tuples(&index, &store, &mut cache, &lowered),
            legacy_conj_tuples(&conj, &g),
            "conjunction {:?} on {} nodes / {} edges", conj, g.node_count(), g.edge_count()
        );
    }

    /// `QueryStore::optimize` is semantics-preserving: the rewritten expression's answer set
    /// equals the raw lowering's (and, transitively, the legacy evaluator's).
    #[test]
    fn optimizer_preserves_semantics(seed in 0u64..1_000_000) {
        let g = random_graph(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_50DA);
        let nre = random_nre(&mut rng, 3);
        let index = GraphIndex::build(&g);
        let mut store = QueryStore::new();
        let lowered = lower_nre(&mut store, &nre);
        let optimized = store.optimize(lowered);
        let mut cache = EvalCache::new();
        prop_assert_eq!(
            eval_expr_pairs(&index, &store, &mut cache, optimized),
            eval_expr_pairs(&index, &store, &mut cache, lowered),
            "nre {} optimized {} vs raw {}", nre, store.render(optimized), store.render(lowered)
        );
    }
}
