//! Differential property suite: the label-indexed RPQ evaluator must be extensionally equal to
//! the naive NFA-product evaluator on random graphs and random regular expressions.
//!
//! Each property samples ≥256 random `(graph, regex)` cases; the regex generator covers every
//! `PathRegex` constructor (labels, concatenation, alternation, star, plus, optional), both
//! labels the graphs carry and labels they never do.

use proptest::prelude::*;
use qbe_graph::{evaluate, evaluate_indexed, GraphIndex, PathRegex, PropertyGraph};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

const LABELS: [&str; 4] = ["road", "train", "ferry", "trail"];

fn random_graph(seed: u64) -> PropertyGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = PropertyGraph::new();
    let nodes: Vec<_> = (0..rng.gen_range(1usize..8))
        .map(|_| g.add_node("city"))
        .collect();
    let edges = rng.gen_range(0usize..14);
    for _ in 0..edges {
        let from = *nodes.choose(&mut rng).expect("non-empty");
        let to = *nodes.choose(&mut rng).expect("non-empty");
        // Draw from a prefix so some graphs miss some labels entirely.
        let cutoff = rng.gen_range(1usize..=LABELS.len());
        let label = LABELS[rng.gen_range(0usize..cutoff)];
        g.add_edge(from, to, label);
    }
    g
}

fn random_regex(rng: &mut StdRng, depth: usize) -> PathRegex {
    let leaf = depth == 0 || rng.gen_bool(0.35);
    if leaf {
        return PathRegex::label(*LABELS.choose(rng).expect("non-empty"));
    }
    match rng.gen_range(0u32..5) {
        0 => PathRegex::Concat(
            (0..rng.gen_range(1usize..4))
                .map(|_| random_regex(rng, depth - 1))
                .collect(),
        ),
        1 => PathRegex::Alt(
            (0..rng.gen_range(1usize..4))
                .map(|_| random_regex(rng, depth - 1))
                .collect(),
        ),
        2 => PathRegex::Star(Box::new(random_regex(rng, depth - 1))),
        3 => PathRegex::Plus(Box::new(random_regex(rng, depth - 1))),
        _ => PathRegex::Optional(Box::new(random_regex(rng, depth - 1))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `evaluate_indexed` ≡ `evaluate` on random graphs and regexes.
    #[test]
    fn indexed_rpq_equals_naive(seed in 0u64..1_000_000) {
        let g = random_graph(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
        let regex = random_regex(&mut rng, 3);
        let index = GraphIndex::build(&g);
        prop_assert_eq!(
            evaluate_indexed(&g, &index, &regex),
            evaluate(&g, &regex),
            "regex {} on {} nodes / {} edges", regex, g.node_count(), g.edge_count()
        );
    }

    /// The index answers repeated queries against the same graph consistently (one index, many
    /// regexes — the shape learner sessions use).
    #[test]
    fn one_index_many_queries(seed in 0u64..1_000_000) {
        let g = random_graph(seed);
        let index = GraphIndex::build(&g);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1234_5678);
        for _ in 0..4 {
            let regex = random_regex(&mut rng, 2);
            prop_assert_eq!(evaluate_indexed(&g, &index, &regex), evaluate(&g, &regex), "{}", regex);
        }
    }
}
