//! Property-graph data model (an RDF-style labelled graph with attributes on nodes and edges).
//!
//! The paper's graph setting is exemplified by "a geographical database modeled as a graph. The
//! vertices represent cities and the edges store information such as the distance between the
//! cities, the type of road linking the cities". The model therefore supports labelled nodes and
//! edges, both carrying a small property map, plus a triple view for the RDF-flavoured exchange
//! scenario.

use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GNodeId(pub u32);

/// Node ids index dense bitsets ([`qbe_bitset::DenseSet<GNodeId>`]) directly — what the
/// path-session visited sets and the indexed RPQ evaluator's frontier structures are keyed by.
impl qbe_bitset::DenseId for GNodeId {
    fn from_index(index: usize) -> GNodeId {
        GNodeId(index as u32)
    }
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GEdgeId(pub u32);

/// A property value on a node or an edge.
#[derive(Debug, Clone, PartialEq, PartialOrd)]
pub enum PropValue {
    /// Integer property.
    Int(i64),
    /// Floating-point property (e.g. distances).
    Float(f64),
    /// Text property.
    Text(String),
}

impl PropValue {
    /// Text accessor.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            PropValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric accessor (integers widen to floats).
    pub fn as_number(&self) -> Option<f64> {
        match self {
            PropValue::Int(i) => Some(*i as f64),
            PropValue::Float(f) => Some(*f),
            PropValue::Text(_) => None,
        }
    }
}

impl fmt::Display for PropValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropValue::Int(i) => write!(f, "{i}"),
            PropValue::Float(x) => write!(f, "{x}"),
            PropValue::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for PropValue {
    fn from(v: i64) -> Self {
        PropValue::Int(v)
    }
}
impl From<f64> for PropValue {
    fn from(v: f64) -> Self {
        PropValue::Float(v)
    }
}
impl From<&str> for PropValue {
    fn from(v: &str) -> Self {
        PropValue::Text(v.to_string())
    }
}

#[derive(Debug, Clone)]
struct NodeData {
    label: String,
    properties: BTreeMap<String, PropValue>,
    outgoing: Vec<GEdgeId>,
    incoming: Vec<GEdgeId>,
}

#[derive(Debug, Clone)]
struct EdgeData {
    from: GNodeId,
    to: GNodeId,
    label: String,
    properties: BTreeMap<String, PropValue>,
}

/// A directed property graph.
#[derive(Debug, Clone, Default)]
pub struct PropertyGraph {
    nodes: Vec<NodeData>,
    edges: Vec<EdgeData>,
}

/// A subject–predicate–object triple (the RDF view of an edge).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Triple {
    /// Subject: the source node's display name (or id).
    pub subject: String,
    /// Predicate: the edge label.
    pub predicate: String,
    /// Object: the target node's display name (or id).
    pub object: String,
}

impl PropertyGraph {
    /// Create an empty graph.
    pub fn new() -> PropertyGraph {
        PropertyGraph::default()
    }

    /// Add a node with a label.
    pub fn add_node(&mut self, label: impl Into<String>) -> GNodeId {
        let id = GNodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            label: label.into(),
            properties: BTreeMap::new(),
            outgoing: Vec::new(),
            incoming: Vec::new(),
        });
        id
    }

    /// Add a directed edge.
    pub fn add_edge(&mut self, from: GNodeId, to: GNodeId, label: impl Into<String>) -> GEdgeId {
        assert!(from.0 < self.nodes.len() as u32 && to.0 < self.nodes.len() as u32);
        let id = GEdgeId(self.edges.len() as u32);
        self.edges.push(EdgeData {
            from,
            to,
            label: label.into(),
            properties: BTreeMap::new(),
        });
        self.nodes[from.0 as usize].outgoing.push(id);
        self.nodes[to.0 as usize].incoming.push(id);
        id
    }

    /// Set a node property.
    pub fn set_node_property(
        &mut self,
        node: GNodeId,
        key: impl Into<String>,
        value: impl Into<PropValue>,
    ) {
        self.nodes[node.0 as usize]
            .properties
            .insert(key.into(), value.into());
    }

    /// Set an edge property.
    pub fn set_edge_property(
        &mut self,
        edge: GEdgeId,
        key: impl Into<String>,
        value: impl Into<PropValue>,
    ) {
        self.edges[edge.0 as usize]
            .properties
            .insert(key.into(), value.into());
    }

    /// Node label.
    pub fn node_label(&self, node: GNodeId) -> &str {
        &self.nodes[node.0 as usize].label
    }

    /// Node property.
    pub fn node_property(&self, node: GNodeId, key: &str) -> Option<&PropValue> {
        self.nodes[node.0 as usize].properties.get(key)
    }

    /// All properties of a node, in key order (the map is a `BTreeMap`, so the order is
    /// deterministic — what the snapshot serialiser relies on).
    pub fn node_properties(&self, node: GNodeId) -> impl Iterator<Item = (&str, &PropValue)> {
        self.nodes[node.0 as usize]
            .properties
            .iter()
            .map(|(k, v)| (k.as_str(), v))
    }

    /// All properties of an edge, in key order.
    pub fn edge_properties(&self, edge: GEdgeId) -> impl Iterator<Item = (&str, &PropValue)> {
        self.edges[edge.0 as usize]
            .properties
            .iter()
            .map(|(k, v)| (k.as_str(), v))
    }

    /// Edge label.
    pub fn edge_label(&self, edge: GEdgeId) -> &str {
        &self.edges[edge.0 as usize].label
    }

    /// Edge property.
    pub fn edge_property(&self, edge: GEdgeId, key: &str) -> Option<&PropValue> {
        self.edges[edge.0 as usize].properties.get(key)
    }

    /// Source node of an edge.
    pub fn source(&self, edge: GEdgeId) -> GNodeId {
        self.edges[edge.0 as usize].from
    }

    /// Target node of an edge.
    pub fn target(&self, edge: GEdgeId) -> GNodeId {
        self.edges[edge.0 as usize].to
    }

    /// Outgoing edges of a node.
    pub fn outgoing(&self, node: GNodeId) -> &[GEdgeId] {
        &self.nodes[node.0 as usize].outgoing
    }

    /// Incoming edges of a node.
    pub fn incoming(&self, node: GNodeId) -> &[GEdgeId] {
        &self.nodes[node.0 as usize].incoming
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = GNodeId> {
        (0..self.nodes.len() as u32).map(GNodeId)
    }

    /// All edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = GEdgeId> {
        (0..self.edges.len() as u32).map(GEdgeId)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Nodes carrying a given label.
    pub fn nodes_with_label(&self, label: &str) -> Vec<GNodeId> {
        self.node_ids()
            .filter(|n| self.node_label(*n) == label)
            .collect()
    }

    /// Find a node by the value of a property (first match).
    pub fn find_node_by_property(&self, key: &str, value: &str) -> Option<GNodeId> {
        self.node_ids()
            .find(|n| self.node_property(*n, key).and_then(PropValue::as_text) == Some(value))
    }

    /// Distinct edge labels, sorted.
    pub fn edge_alphabet(&self) -> Vec<String> {
        let mut labels: Vec<String> = self.edges.iter().map(|e| e.label.clone()).collect();
        labels.sort();
        labels.dedup();
        labels
    }

    /// The RDF-style triple view: one triple per edge, using the node property `name` when
    /// present (falling back to `label#id`).
    pub fn triples(&self) -> Vec<Triple> {
        self.edge_ids()
            .map(|e| Triple {
                subject: self.display_name(self.source(e)),
                predicate: self.edge_label(e).to_string(),
                object: self.display_name(self.target(e)),
            })
            .collect()
    }

    /// Human-readable node name used by the triple view and the exchange scenarios.
    pub fn display_name(&self, node: GNodeId) -> String {
        match self
            .node_property(node, "name")
            .and_then(PropValue::as_text)
        {
            Some(name) => name.to_string(),
            None => format!("{}#{}", self.node_label(node), node.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let lille = g.add_node("city");
        g.set_node_property(lille, "name", "Lille");
        let paris = g.add_node("city");
        g.set_node_property(paris, "name", "Paris");
        let e = g.add_edge(lille, paris, "road");
        g.set_edge_property(e, "distance", 225.0);
        g.set_edge_property(e, "type", "highway");
        g
    }

    #[test]
    fn nodes_and_edges_are_linked() {
        let g = sample();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        let e = g.edge_ids().next().unwrap();
        assert_eq!(g.node_label(g.source(e)), "city");
        assert_eq!(g.outgoing(g.source(e)).len(), 1);
        assert_eq!(g.incoming(g.target(e)).len(), 1);
        assert!(g.outgoing(g.target(e)).is_empty());
    }

    #[test]
    fn properties_are_retrievable() {
        let g = sample();
        let e = g.edge_ids().next().unwrap();
        assert_eq!(
            g.edge_property(e, "type").unwrap().as_text(),
            Some("highway")
        );
        assert_eq!(
            g.edge_property(e, "distance").unwrap().as_number(),
            Some(225.0)
        );
        assert!(g.edge_property(e, "toll").is_none());
    }

    #[test]
    fn find_node_by_property_matches_text() {
        let g = sample();
        assert!(g.find_node_by_property("name", "Paris").is_some());
        assert!(g.find_node_by_property("name", "Atlantis").is_none());
    }

    #[test]
    fn triples_reflect_edges() {
        let g = sample();
        let triples = g.triples();
        assert_eq!(triples.len(), 1);
        assert_eq!(
            triples[0],
            Triple {
                subject: "Lille".to_string(),
                predicate: "road".to_string(),
                object: "Paris".to_string(),
            }
        );
    }

    #[test]
    fn edge_alphabet_is_deduplicated() {
        let mut g = sample();
        let a = g.add_node("city");
        let b = g.add_node("city");
        g.add_edge(a, b, "road");
        g.add_edge(b, a, "train");
        assert_eq!(g.edge_alphabet(), vec!["road", "train"]);
    }

    #[test]
    fn display_name_falls_back_to_label_and_id() {
        let mut g = PropertyGraph::new();
        let n = g.add_node("anonymous");
        assert_eq!(g.display_name(n), "anonymous#0");
    }
}
