//! SPARQL-style graph patterns: basic graph patterns, AND, OPTIONAL, UNION, FILTER.
//!
//! The paper rejects full SPARQL as a learning target because of its complexity: *"the
//! evaluation of general SPARQL patterns is PSPACE-complete, while the evaluation of the
//! restricted class of 'well-designed' patterns is coNP-complete"* (§3, citing Pérez, Arenas &
//! Gutierrez). To make that argument concrete — and to have the expressive upper bound available
//! when the experiments compare it against the learnable path-query fragment of
//! [`crate::rpq`] — this module implements the pattern algebra of Pérez et al. over
//! [`PropertyGraph`]:
//!
//! * [`TriplePattern`] — `subject predicate object` with variables over nodes and edge labels;
//! * [`GraphPattern`] — `Bgp`, `And`, `Optional`, `Union`, `Filter`;
//! * [`evaluate_pattern`] — the standard mapping-based semantics (join, left-outer-join, union,
//!   selection over compatible mappings);
//! * [`is_well_designed`] — the syntactic restriction under which evaluation drops from
//!   PSPACE-complete to coNP-complete, checked exactly as defined in the original paper.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::model::{GNodeId, PropertyGraph};

/// A subject/object position in a triple pattern.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Term {
    /// A variable, bound to a graph node by evaluation.
    Var(String),
    /// A constant node.
    Node(GNodeId),
}

impl Term {
    /// Convenience constructor for a variable.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "?{v}"),
            Term::Node(n) => write!(f, "node:{}", n.0),
        }
    }
}

/// A predicate position in a triple pattern.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum PredTerm {
    /// A variable, bound to an edge label.
    Var(String),
    /// A constant edge label.
    Label(String),
}

impl PredTerm {
    /// Convenience constructor for a constant edge label.
    pub fn label(l: impl Into<String>) -> PredTerm {
        PredTerm::Label(l.into())
    }
}

impl fmt::Display for PredTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredTerm::Var(v) => write!(f, "?{v}"),
            PredTerm::Label(l) => write!(f, "{l}"),
        }
    }
}

/// A triple pattern `subject predicate object`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriplePattern {
    /// Subject term.
    pub subject: Term,
    /// Predicate term.
    pub predicate: PredTerm,
    /// Object term.
    pub object: Term,
}

impl TriplePattern {
    /// Build a triple pattern.
    pub fn new(subject: Term, predicate: PredTerm, object: Term) -> TriplePattern {
        TriplePattern {
            subject,
            predicate,
            object,
        }
    }
}

impl fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.subject, self.predicate, self.object)
    }
}

/// A value a variable can be bound to.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Binding {
    /// A graph node.
    Node(GNodeId),
    /// An edge label.
    Label(String),
}

/// A (partial) mapping from variable names to bindings — the unit the SPARQL semantics operates
/// on.
pub type Mapping = BTreeMap<String, Binding>;

/// A filter constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Constraint {
    /// The variable is bound.
    Bound(String),
    /// The variable is bound to a node whose property `key` equals `value` (as text).
    NodePropEquals(String, String, String),
    /// Two variables are bound to the same node.
    SameNode(String, String),
    /// The variable is bound to a node carrying the given label.
    NodeLabelIs(String, String),
}

impl Constraint {
    /// Evaluate the constraint under a mapping.
    pub fn satisfied(&self, graph: &PropertyGraph, mapping: &Mapping) -> bool {
        match self {
            Constraint::Bound(v) => mapping.contains_key(v),
            Constraint::NodePropEquals(v, key, value) => match mapping.get(v) {
                Some(Binding::Node(n)) => graph
                    .node_property(*n, key)
                    .and_then(|p| p.as_text().map(|t| t == value))
                    .unwrap_or(false),
                _ => false,
            },
            Constraint::SameNode(a, b) => match (mapping.get(a), mapping.get(b)) {
                (Some(Binding::Node(x)), Some(Binding::Node(y))) => x == y,
                _ => false,
            },
            Constraint::NodeLabelIs(v, label) => match mapping.get(v) {
                Some(Binding::Node(n)) => graph.node_label(*n) == label,
                _ => false,
            },
        }
    }

    /// Variables mentioned by the constraint.
    pub fn variables(&self) -> BTreeSet<String> {
        match self {
            Constraint::Bound(v)
            | Constraint::NodePropEquals(v, _, _)
            | Constraint::NodeLabelIs(v, _) => [v.clone()].into_iter().collect(),
            Constraint::SameNode(a, b) => [a.clone(), b.clone()].into_iter().collect(),
        }
    }
}

/// A SPARQL-style graph pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphPattern {
    /// A basic graph pattern: a conjunction of triple patterns.
    Bgp(Vec<TriplePattern>),
    /// Conjunction (join) of two patterns.
    And(Box<GraphPattern>, Box<GraphPattern>),
    /// Left pattern, optionally extended by the right one (left outer join).
    Optional(Box<GraphPattern>, Box<GraphPattern>),
    /// Union of two patterns.
    Union(Box<GraphPattern>, Box<GraphPattern>),
    /// Selection of the mappings satisfying a constraint.
    Filter(Box<GraphPattern>, Constraint),
}

impl GraphPattern {
    /// A single-triple basic graph pattern.
    pub fn triple(subject: Term, predicate: PredTerm, object: Term) -> GraphPattern {
        GraphPattern::Bgp(vec![TriplePattern::new(subject, predicate, object)])
    }

    /// Conjunction.
    pub fn and(self, other: GraphPattern) -> GraphPattern {
        GraphPattern::And(Box::new(self), Box::new(other))
    }

    /// Optional extension.
    pub fn optional(self, other: GraphPattern) -> GraphPattern {
        GraphPattern::Optional(Box::new(self), Box::new(other))
    }

    /// Union.
    pub fn union(self, other: GraphPattern) -> GraphPattern {
        GraphPattern::Union(Box::new(self), Box::new(other))
    }

    /// Filter.
    pub fn filter(self, constraint: Constraint) -> GraphPattern {
        GraphPattern::Filter(Box::new(self), constraint)
    }

    /// All variables occurring in the pattern (including filter-only variables).
    pub fn variables(&self) -> BTreeSet<String> {
        match self {
            GraphPattern::Bgp(triples) => {
                let mut vars = BTreeSet::new();
                for t in triples {
                    if let Term::Var(v) = &t.subject {
                        vars.insert(v.clone());
                    }
                    if let PredTerm::Var(v) = &t.predicate {
                        vars.insert(v.clone());
                    }
                    if let Term::Var(v) = &t.object {
                        vars.insert(v.clone());
                    }
                }
                vars
            }
            GraphPattern::And(a, b) | GraphPattern::Optional(a, b) | GraphPattern::Union(a, b) => {
                let mut vars = a.variables();
                vars.extend(b.variables());
                vars
            }
            GraphPattern::Filter(p, c) => {
                let mut vars = p.variables();
                vars.extend(c.variables());
                vars
            }
        }
    }

    /// Number of operators in the pattern (a size measure for the experiments).
    pub fn size(&self) -> usize {
        match self {
            GraphPattern::Bgp(triples) => triples.len().max(1),
            GraphPattern::And(a, b) | GraphPattern::Optional(a, b) | GraphPattern::Union(a, b) => {
                1 + a.size() + b.size()
            }
            GraphPattern::Filter(p, _) => 1 + p.size(),
        }
    }
}

/// Two mappings are compatible when they agree on every shared variable.
pub fn compatible(a: &Mapping, b: &Mapping) -> bool {
    a.iter()
        .all(|(k, v)| b.get(k).map(|w| w == v).unwrap_or(true))
}

fn merge(a: &Mapping, b: &Mapping) -> Mapping {
    let mut out = a.clone();
    for (k, v) in b {
        out.insert(k.clone(), v.clone());
    }
    out
}

fn match_triple(graph: &PropertyGraph, pattern: &TriplePattern) -> Vec<Mapping> {
    let mut out = Vec::new();
    for edge in graph.edge_ids() {
        let (src, dst, label) = (
            graph.source(edge),
            graph.target(edge),
            graph.edge_label(edge),
        );
        let mut mapping = Mapping::new();
        let subject_ok = match &pattern.subject {
            Term::Node(n) => *n == src,
            Term::Var(v) => {
                mapping.insert(v.clone(), Binding::Node(src));
                true
            }
        };
        let predicate_ok = match &pattern.predicate {
            PredTerm::Label(l) => l == label,
            PredTerm::Var(v) => match mapping.get(v) {
                Some(Binding::Label(existing)) => existing == label,
                Some(_) => false,
                None => {
                    mapping.insert(v.clone(), Binding::Label(label.to_string()));
                    true
                }
            },
        };
        let object_ok = match &pattern.object {
            Term::Node(n) => *n == dst,
            Term::Var(v) => match mapping.get(v) {
                Some(Binding::Node(existing)) => *existing == dst,
                Some(_) => false,
                None => {
                    mapping.insert(v.clone(), Binding::Node(dst));
                    true
                }
            },
        };
        if subject_ok && predicate_ok && object_ok {
            out.push(mapping);
        }
    }
    out
}

fn join(left: &[Mapping], right: &[Mapping]) -> Vec<Mapping> {
    let mut out = Vec::new();
    for a in left {
        for b in right {
            if compatible(a, b) {
                out.push(merge(a, b));
            }
        }
    }
    dedup(out)
}

fn left_outer_join(left: &[Mapping], right: &[Mapping]) -> Vec<Mapping> {
    let mut out = Vec::new();
    for a in left {
        let mut extended = false;
        for b in right {
            if compatible(a, b) {
                out.push(merge(a, b));
                extended = true;
            }
        }
        if !extended {
            out.push(a.clone());
        }
    }
    dedup(out)
}

fn dedup(mappings: Vec<Mapping>) -> Vec<Mapping> {
    let mut seen = BTreeSet::new();
    mappings
        .into_iter()
        .filter(|m| {
            let key: Vec<(String, Binding)> =
                m.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            seen.insert(key)
        })
        .collect()
}

/// Evaluate a graph pattern, returning the set of solution mappings (Pérez et al. semantics).
pub fn evaluate_pattern(graph: &PropertyGraph, pattern: &GraphPattern) -> Vec<Mapping> {
    match pattern {
        GraphPattern::Bgp(triples) => {
            let mut acc: Vec<Mapping> = vec![Mapping::new()];
            for t in triples {
                let matches = match_triple(graph, t);
                acc = join(&acc, &matches);
                if acc.is_empty() {
                    break;
                }
            }
            acc
        }
        GraphPattern::And(a, b) => join(&evaluate_pattern(graph, a), &evaluate_pattern(graph, b)),
        GraphPattern::Optional(a, b) => {
            left_outer_join(&evaluate_pattern(graph, a), &evaluate_pattern(graph, b))
        }
        GraphPattern::Union(a, b) => {
            let mut out = evaluate_pattern(graph, a);
            out.extend(evaluate_pattern(graph, b));
            dedup(out)
        }
        GraphPattern::Filter(p, c) => evaluate_pattern(graph, p)
            .into_iter()
            .filter(|m| c.satisfied(graph, m))
            .collect(),
    }
}

/// Whether the pattern is *well designed* (Pérez et al.): it is UNION-free and for every
/// sub-pattern `P1 OPTIONAL P2`, every variable of `P2` that also occurs in the pattern outside
/// `P2` occurs in `P1` as well. Evaluation of well-designed patterns is coNP-complete instead of
/// PSPACE-complete, which is the distinction the paper invokes.
pub fn is_well_designed(pattern: &GraphPattern) -> bool {
    fn has_union(p: &GraphPattern) -> bool {
        match p {
            GraphPattern::Union(_, _) => true,
            GraphPattern::Bgp(_) => false,
            GraphPattern::And(a, b) | GraphPattern::Optional(a, b) => has_union(a) || has_union(b),
            GraphPattern::Filter(inner, _) => has_union(inner),
        }
    }
    if has_union(pattern) {
        return false;
    }
    // Collect every OPTIONAL sub-pattern together with the variables occurring in the whole
    // pattern outside its right branch.
    fn check(whole: &GraphPattern, p: &GraphPattern) -> bool {
        match p {
            GraphPattern::Bgp(_) => true,
            GraphPattern::And(a, b) => check(whole, a) && check(whole, b),
            GraphPattern::Filter(inner, _) => check(whole, inner),
            GraphPattern::Union(a, b) => check(whole, a) && check(whole, b),
            GraphPattern::Optional(a, b) => {
                let inside: BTreeSet<String> = b.variables();
                let outside = variables_outside(whole, b);
                let left = a.variables();
                let ok = inside
                    .iter()
                    .filter(|v| outside.contains(*v))
                    .all(|v| left.contains(v));
                ok && check(whole, a) && check(whole, b)
            }
        }
    }
    // Variables of `whole` occurring outside the sub-pattern `excluded` (compared by pointer
    // identity of the boxed pattern, which is sufficient because we only ever pass sub-patterns
    // of `whole` obtained during the same traversal).
    fn variables_outside(whole: &GraphPattern, excluded: &GraphPattern) -> BTreeSet<String> {
        fn collect(p: &GraphPattern, excluded: &GraphPattern, out: &mut BTreeSet<String>) {
            if std::ptr::eq(p, excluded) {
                return;
            }
            match p {
                GraphPattern::Bgp(_) => {
                    out.extend(p.variables());
                }
                GraphPattern::And(a, b)
                | GraphPattern::Optional(a, b)
                | GraphPattern::Union(a, b) => {
                    collect(a, excluded, out);
                    collect(b, excluded, out);
                }
                GraphPattern::Filter(inner, c) => {
                    out.extend(c.variables());
                    collect(inner, excluded, out);
                }
            }
        }
        let mut out = BTreeSet::new();
        collect(whole, excluded, &mut out);
        out
    }
    check(pattern, pattern)
}

/// Project the solution mappings onto one node variable, as the path-learning experiments do when
/// comparing a SPARQL upper bound against an RPQ answer.
pub fn select_nodes(solutions: &[Mapping], variable: &str) -> BTreeSet<GNodeId> {
    solutions
        .iter()
        .filter_map(|m| match m.get(variable) {
            Some(Binding::Node(n)) => Some(*n),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small road network: a --road--> b --road--> c, a --train--> c, plus city names.
    fn roads() -> (PropertyGraph, GNodeId, GNodeId, GNodeId) {
        let mut g = PropertyGraph::new();
        let a = g.add_node("city");
        let b = g.add_node("city");
        let c = g.add_node("city");
        g.set_node_property(a, "name", "Lille");
        g.set_node_property(b, "name", "Paris");
        g.set_node_property(c, "name", "Lyon");
        g.add_edge(a, b, "road");
        g.add_edge(b, c, "road");
        g.add_edge(a, c, "train");
        (g, a, b, c)
    }

    #[test]
    fn single_triple_pattern_matches_edges_by_label() {
        let (g, a, b, _) = roads();
        let p = GraphPattern::triple(Term::var("x"), PredTerm::label("road"), Term::var("y"));
        let sols = evaluate_pattern(&g, &p);
        assert_eq!(sols.len(), 2);
        assert!(sols
            .iter()
            .any(|m| m["x"] == Binding::Node(a) && m["y"] == Binding::Node(b)));
    }

    #[test]
    fn bgp_joins_triples_on_shared_variables() {
        let (g, a, _, c) = roads();
        let p = GraphPattern::Bgp(vec![
            TriplePattern::new(Term::var("x"), PredTerm::label("road"), Term::var("y")),
            TriplePattern::new(Term::var("y"), PredTerm::label("road"), Term::var("z")),
        ]);
        let sols = evaluate_pattern(&g, &p);
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0]["x"], Binding::Node(a));
        assert_eq!(sols[0]["z"], Binding::Node(c));
    }

    #[test]
    fn predicate_variable_binds_edge_labels() {
        let (g, a, _, c) = roads();
        let p = GraphPattern::triple(Term::Node(a), PredTerm::Var("p".into()), Term::Node(c));
        let sols = evaluate_pattern(&g, &p);
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0]["p"], Binding::Label("train".into()));
    }

    #[test]
    fn optional_keeps_unextended_mappings() {
        let (g, _, _, _) = roads();
        // Every road edge, optionally extended by a further road edge from its target.
        let p =
            GraphPattern::triple(Term::var("x"), PredTerm::label("road"), Term::var("y")).optional(
                GraphPattern::triple(Term::var("y"), PredTerm::label("road"), Term::var("z")),
            );
        let sols = evaluate_pattern(&g, &p);
        assert_eq!(sols.len(), 2);
        assert_eq!(sols.iter().filter(|m| m.contains_key("z")).count(), 1);
    }

    #[test]
    fn union_combines_and_deduplicates() {
        let (g, _, _, _) = roads();
        let p =
            GraphPattern::triple(Term::var("x"), PredTerm::label("road"), Term::var("y")).union(
                GraphPattern::triple(Term::var("x"), PredTerm::label("train"), Term::var("y")),
            );
        assert_eq!(evaluate_pattern(&g, &p).len(), 3);
        let dup =
            GraphPattern::triple(Term::var("x"), PredTerm::label("road"), Term::var("y")).union(
                GraphPattern::triple(Term::var("x"), PredTerm::label("road"), Term::var("y")),
            );
        assert_eq!(evaluate_pattern(&g, &dup).len(), 2);
    }

    #[test]
    fn filter_selects_by_node_property() {
        let (g, a, _, _) = roads();
        let p =
            GraphPattern::triple(Term::var("x"), PredTerm::label("road"), Term::var("y")).filter(
                Constraint::NodePropEquals("x".into(), "name".into(), "Lille".into()),
            );
        let sols = evaluate_pattern(&g, &p);
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0]["x"], Binding::Node(a));
    }

    #[test]
    fn filter_same_node_and_bound_constraints() {
        let (g, _, _, _) = roads();
        let p = GraphPattern::triple(Term::var("x"), PredTerm::label("road"), Term::var("y"))
            .filter(Constraint::SameNode("x".into(), "y".into()));
        assert!(
            evaluate_pattern(&g, &p).is_empty(),
            "there are no self-loop roads"
        );
        let q = GraphPattern::triple(Term::var("x"), PredTerm::label("road"), Term::var("y"))
            .filter(Constraint::Bound("x".into()));
        assert_eq!(evaluate_pattern(&g, &q).len(), 2);
    }

    #[test]
    fn node_label_filter() {
        let (g, _, _, _) = roads();
        let p = GraphPattern::triple(Term::var("x"), PredTerm::label("train"), Term::var("y"))
            .filter(Constraint::NodeLabelIs("y".into(), "city".into()));
        assert_eq!(evaluate_pattern(&g, &p).len(), 1);
    }

    #[test]
    fn well_designed_accepts_proper_optional_use() {
        let p =
            GraphPattern::triple(Term::var("x"), PredTerm::label("road"), Term::var("y")).optional(
                GraphPattern::triple(Term::var("y"), PredTerm::label("road"), Term::var("z")),
            );
        assert!(is_well_designed(&p));
    }

    #[test]
    fn well_designed_rejects_the_perez_counterexample() {
        // The classical shape: P = (P1 OPT P2) AND P3 where P2 and P3 share a variable that is
        // absent from P1.
        let p1 = GraphPattern::triple(Term::var("x"), PredTerm::label("road"), Term::var("y"));
        let p2 = GraphPattern::triple(Term::var("x"), PredTerm::label("train"), Term::var("z"));
        let p3 = GraphPattern::triple(Term::var("z"), PredTerm::label("road"), Term::var("w"));
        let pattern = p1.optional(p2).and(p3);
        assert!(
            !is_well_designed(&pattern),
            "?z occurs in the OPT branch and outside it"
        );
    }

    #[test]
    fn union_patterns_are_not_well_designed() {
        let p =
            GraphPattern::triple(Term::var("x"), PredTerm::label("road"), Term::var("y")).union(
                GraphPattern::triple(Term::var("x"), PredTerm::label("train"), Term::var("y")),
            );
        assert!(!is_well_designed(&p));
    }

    #[test]
    fn select_nodes_projects_one_variable() {
        let (g, a, b, _) = roads();
        let p = GraphPattern::triple(Term::var("x"), PredTerm::label("road"), Term::var("y"));
        let sols = evaluate_pattern(&g, &p);
        let xs = select_nodes(&sols, "x");
        assert_eq!(xs, [a, b].into_iter().collect());
        assert!(select_nodes(&sols, "missing").is_empty());
    }

    #[test]
    fn variables_and_size_are_reported() {
        let p = GraphPattern::triple(Term::var("x"), PredTerm::label("road"), Term::var("y"))
            .filter(Constraint::Bound("x".into()));
        assert_eq!(
            p.variables(),
            ["x".to_string(), "y".to_string()].into_iter().collect()
        );
        assert_eq!(p.size(), 2);
    }

    #[test]
    fn empty_graph_yields_no_solutions() {
        let g = PropertyGraph::new();
        let p = GraphPattern::triple(Term::var("x"), PredTerm::label("road"), Term::var("y"));
        assert!(evaluate_pattern(&g, &p).is_empty());
    }
}
