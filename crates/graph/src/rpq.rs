//! Regular path queries (RPQs) over edge labels.
//!
//! The paper looks for "a query language for graphs which is expressive enough and also
//! learnable from positive and possibly negative examples", citing regular path queries as the
//! typical graph-database query class (and rejecting full SPARQL as too complex). The RPQ here
//! is a regular expression over edge labels; its answer is the set of node pairs connected by a
//! path whose edge-label word belongs to the language.
//!
//! Evaluation compiles the expression to a small NFA (Thompson construction) and runs a BFS on
//! the product of the NFA with the graph — polynomial in both.

use crate::model::{GEdgeId, GNodeId, PropertyGraph};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;

/// A regular expression over edge labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathRegex {
    /// A single edge with this label.
    Label(String),
    /// Concatenation.
    Concat(Vec<PathRegex>),
    /// Alternation.
    Alt(Vec<PathRegex>),
    /// Zero or more repetitions.
    Star(Box<PathRegex>),
    /// One or more repetitions.
    Plus(Box<PathRegex>),
    /// Zero or one occurrence.
    Optional(Box<PathRegex>),
}

impl PathRegex {
    /// Convenience constructor for a label atom.
    pub fn label(l: impl Into<String>) -> PathRegex {
        PathRegex::Label(l.into())
    }

    /// Concatenation of a sequence of labels.
    pub fn word(labels: &[&str]) -> PathRegex {
        PathRegex::Concat(labels.iter().map(|l| PathRegex::label(*l)).collect())
    }

    /// Whether a word (sequence of edge labels) belongs to the language.
    pub fn accepts(&self, word: &[&str]) -> bool {
        let nfa = Nfa::compile(self);
        nfa.accepts(word)
    }

    /// Number of syntax nodes (used as "query size" in reports).
    pub fn size(&self) -> usize {
        match self {
            PathRegex::Label(_) => 1,
            PathRegex::Concat(parts) | PathRegex::Alt(parts) => {
                1 + parts.iter().map(PathRegex::size).sum::<usize>()
            }
            PathRegex::Star(inner) | PathRegex::Plus(inner) | PathRegex::Optional(inner) => {
                1 + inner.size()
            }
        }
    }
}

impl fmt::Display for PathRegex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathRegex::Label(l) => write!(f, "{l}"),
            PathRegex::Concat(parts) => {
                let s: Vec<String> = parts.iter().map(|p| p.to_string()).collect();
                write!(f, "{}", s.join("/"))
            }
            PathRegex::Alt(parts) => {
                let s: Vec<String> = parts.iter().map(|p| p.to_string()).collect();
                write!(f, "({})", s.join("|"))
            }
            PathRegex::Star(inner) => write!(f, "({inner})*"),
            PathRegex::Plus(inner) => write!(f, "({inner})+"),
            PathRegex::Optional(inner) => write!(f, "({inner})?"),
        }
    }
}

/// A Thompson NFA over edge labels.
struct Nfa {
    /// transitions[state] = list of (label or None for ε, target state)
    transitions: Vec<Vec<(Option<String>, usize)>>,
    start: usize,
    accept: usize,
}

impl Nfa {
    fn compile(regex: &PathRegex) -> Nfa {
        let mut nfa = Nfa {
            transitions: vec![Vec::new(), Vec::new()],
            start: 0,
            accept: 1,
        };
        nfa.build(regex, 0, 1);
        nfa
    }

    fn new_state(&mut self) -> usize {
        self.transitions.push(Vec::new());
        self.transitions.len() - 1
    }

    fn build(&mut self, regex: &PathRegex, from: usize, to: usize) {
        match regex {
            PathRegex::Label(l) => self.transitions[from].push((Some(l.clone()), to)),
            PathRegex::Concat(parts) => {
                if parts.is_empty() {
                    self.transitions[from].push((None, to));
                    return;
                }
                let mut current = from;
                for (ix, part) in parts.iter().enumerate() {
                    let next = if ix == parts.len() - 1 {
                        to
                    } else {
                        self.new_state()
                    };
                    self.build(part, current, next);
                    current = next;
                }
            }
            PathRegex::Alt(parts) => {
                for part in parts {
                    self.build(part, from, to);
                }
            }
            PathRegex::Star(inner) => {
                let hub = self.new_state();
                self.transitions[from].push((None, hub));
                self.transitions[hub].push((None, to));
                self.build(inner, hub, hub);
            }
            PathRegex::Plus(inner) => {
                let hub = self.new_state();
                self.build(inner, from, hub);
                self.transitions[hub].push((None, to));
                self.build(inner, hub, hub);
            }
            PathRegex::Optional(inner) => {
                self.transitions[from].push((None, to));
                self.build(inner, from, to);
            }
        }
    }

    fn epsilon_closure(&self, states: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut closure = states.clone();
        let mut stack: Vec<usize> = states.iter().copied().collect();
        while let Some(s) = stack.pop() {
            for (label, target) in &self.transitions[s] {
                if label.is_none() && closure.insert(*target) {
                    stack.push(*target);
                }
            }
        }
        closure
    }

    fn accepts(&self, word: &[&str]) -> bool {
        let mut current = self.epsilon_closure(&BTreeSet::from([self.start]));
        for &symbol in word {
            let mut next = BTreeSet::new();
            for &s in &current {
                for (label, target) in &self.transitions[s] {
                    if label.as_deref() == Some(symbol) {
                        next.insert(*target);
                    }
                }
            }
            current = self.epsilon_closure(&next);
            if current.is_empty() {
                return false;
            }
        }
        current.contains(&self.accept)
    }
}

/// Evaluate an RPQ: all `(source, target)` node pairs connected by a path whose label word is in
/// the language (the empty path counts when the language contains the empty word).
pub fn evaluate(graph: &PropertyGraph, regex: &PathRegex) -> BTreeSet<(GNodeId, GNodeId)> {
    let nfa = Nfa::compile(regex);
    let mut out = BTreeSet::new();
    for start in graph.node_ids() {
        // BFS over (graph node, NFA state set) — the state set is kept as a sorted vec key.
        let initial = nfa.epsilon_closure(&BTreeSet::from([nfa.start]));
        let mut visited: BTreeSet<(GNodeId, Vec<usize>)> = BTreeSet::new();
        let mut queue: VecDeque<(GNodeId, BTreeSet<usize>)> = VecDeque::new();
        queue.push_back((start, initial));
        while let Some((node, states)) = queue.pop_front() {
            let key = (node, states.iter().copied().collect::<Vec<_>>());
            if !visited.insert(key) {
                continue;
            }
            if states.contains(&nfa.accept) {
                out.insert((start, node));
            }
            for &edge in graph.outgoing(node) {
                let symbol = graph.edge_label(edge);
                let mut next = BTreeSet::new();
                for &s in &states {
                    for (label, target) in &nfa.transitions[s] {
                        if label.as_deref() == Some(symbol) {
                            next.insert(*target);
                        }
                    }
                }
                if next.is_empty() {
                    continue;
                }
                let next = nfa.epsilon_closure(&next);
                queue.push_back((graph.target(edge), next));
            }
        }
    }
    out
}

/// Number of states the Thompson construction produces for a regex — reported by experiments
/// and useful for sizing intuition (the indexed evaluator's per-mask work scales with
/// `⌈states/64⌉` words).
pub fn thompson_state_count(regex: &PathRegex) -> usize {
    Nfa::compile(regex).transitions.len()
}

/// Evaluate an RPQ against a prebuilt [`GraphIndex`](crate::index::GraphIndex): same answer as
/// [`evaluate`], computed by a product BFS over interned label ids with NFA state sets packed
/// into multi-word [`DenseSet`](qbe_bitset::DenseSet) masks.
///
/// The interned adjacency turns the per-step transition work from "scan every outgoing edge and
/// string-compare against every NFA transition" into "merge two id-sorted lists"; the dense
/// masks make state-set closure/union a handful of word operations *regardless of state count*
/// — the old single-`u64` representation's 64-state cliff (and its naive-evaluator fallback
/// branch) is gone. The naive [`evaluate`] survives purely as the differential spec
/// (`crates/graph/tests/prop_eval_indexed.rs` pins extensional equality).
pub fn evaluate_indexed(
    graph: &PropertyGraph,
    index: &crate::index::GraphIndex,
    regex: &PathRegex,
) -> BTreeSet<(GNodeId, GNodeId)> {
    use qbe_bitset::DenseSet;
    let nfa = Nfa::compile(regex);
    let n_states = nfa.transitions.len();
    // ε-closure of each single state, as a state mask (includes the state itself).
    let mut closure: Vec<DenseSet<usize>> = Vec::with_capacity(n_states);
    for s in 0..n_states {
        let mut mask: DenseSet<usize> = DenseSet::from_ids(n_states, [s]);
        let mut stack = vec![s];
        while let Some(cur) = stack.pop() {
            for (label, target) in &nfa.transitions[cur] {
                if label.is_none() && mask.insert(*target) {
                    stack.push(*target);
                }
            }
        }
        closure.push(mask);
    }
    // trans[label id][state] = ε-closed mask of states reachable by consuming that label.
    let empty_mask: DenseSet<usize> = DenseSet::new(n_states);
    let mut trans = vec![vec![empty_mask.clone(); n_states]; index.label_count()];
    for (s, edges) in nfa.transitions.iter().enumerate() {
        for (label, target) in edges {
            let Some(label) = label else { continue };
            // NFA labels absent from the graph can never fire.
            if let Some(lid) = index.label_id(label) {
                trans[lid as usize][s].or_with(&closure[*target]);
            }
        }
    }
    let start_mask = closure[nfa.start].clone();
    let mut out = BTreeSet::new();
    // Per-node union of every NFA state-set mask already explored from the current start.
    // Mask propagation is monotone (`next(m₁ ∪ m₂) = next(m₁) ∪ next(m₂)`, and a mask that
    // dies stays dead), so a frontier mask covered by the union cannot reach anything its
    // covering explorations do not — subset states are pruned without loss. This replaces the
    // exact `(node, mask)` visited set, whose distinct-mask blowup was the BFS's worst case.
    let mut seen: Vec<DenseSet<usize>> = vec![empty_mask.clone(); graph.node_count()];
    let mut queue: VecDeque<(GNodeId, DenseSet<usize>)> = VecDeque::new();
    let mut next_mask = empty_mask.clone();
    for start in graph.node_ids() {
        for mask in &mut seen {
            mask.clear();
        }
        queue.clear();
        queue.push_back((start, start_mask.clone()));
        while let Some((node, mask)) = queue.pop_front() {
            let prior = &mut seen[node.0 as usize];
            if mask.is_subset(prior) {
                continue; // covered by earlier explorations from this start
            }
            prior.or_with(&mask);
            if mask.contains(nfa.accept) {
                out.insert((start, node));
            }
            // Transition once per distinct label; the successor bitset enqueues each distinct
            // target once (parallel edges collapsed by the index).
            for (lid, targets) in index.successor_bits(node) {
                next_mask.clear();
                for s in mask.iter() {
                    next_mask.or_with(&trans[*lid as usize][s]);
                }
                if !next_mask.is_empty() {
                    for target in targets.iter() {
                        queue.push_back((target, next_mask.clone()));
                    }
                }
            }
        }
    }
    out
}

/// All node pairs reachable from `source` under the RPQ.
pub fn evaluate_from(
    graph: &PropertyGraph,
    regex: &PathRegex,
    source: GNodeId,
) -> BTreeSet<GNodeId> {
    evaluate(graph, regex)
        .into_iter()
        .filter(|(s, _)| *s == source)
        .map(|(_, t)| t)
        .collect()
}

/// A concrete path: the visited edges in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// The edges, in traversal order.
    pub edges: Vec<GEdgeId>,
}

impl Path {
    /// The edge-label word of the path.
    pub fn word(&self, graph: &PropertyGraph) -> Vec<String> {
        self.edges
            .iter()
            .map(|e| graph.edge_label(*e).to_string())
            .collect()
    }

    /// Endpoints of the path (`None` for the empty path).
    pub fn endpoints(&self, graph: &PropertyGraph) -> Option<(GNodeId, GNodeId)> {
        let first = self.edges.first()?;
        let last = self.edges.last()?;
        Some((graph.source(*first), graph.target(*last)))
    }

    /// Sum of the numeric `distance` properties of the edges (missing distances count 0).
    pub fn total_distance(&self, graph: &PropertyGraph) -> f64 {
        self.edges
            .iter()
            .filter_map(|e| {
                graph
                    .edge_property(*e, "distance")
                    .and_then(|v| v.as_number())
            })
            .sum()
    }

    /// Whether every edge has the given text property value.
    pub fn all_edges_have(&self, graph: &PropertyGraph, key: &str, value: &str) -> bool {
        self.edges
            .iter()
            .all(|e| graph.edge_property(*e, key).and_then(|v| v.as_text()) == Some(value))
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the path has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Enumerate simple paths (no repeated node) from `from` to `to` with at most `max_edges` edges.
///
/// The per-branch visited set is a dense bitset, so extending a path clones a few words rather
/// than a tree — path enumeration is the constructor cost of every interactive path session.
pub fn simple_paths(
    graph: &PropertyGraph,
    from: GNodeId,
    to: GNodeId,
    max_edges: usize,
) -> Vec<Path> {
    let n = graph.node_count();
    let mut out = Vec::new();
    let mut stack: Vec<(GNodeId, Vec<GEdgeId>, qbe_bitset::DenseSet<GNodeId>)> =
        vec![(from, Vec::new(), qbe_bitset::DenseSet::from_ids(n, [from]))];
    while let Some((node, edges, visited)) = stack.pop() {
        if node == to && !edges.is_empty() {
            out.push(Path {
                edges: edges.clone(),
            });
            // Paths may continue through `to` only if it can be revisited — with simple paths it
            // cannot, so stop extending here.
            continue;
        }
        if edges.len() >= max_edges {
            continue;
        }
        for &edge in graph.outgoing(node) {
            let next = graph.target(edge);
            if visited.contains(next) {
                continue;
            }
            let mut new_edges = edges.clone();
            new_edges.push(edge);
            let mut new_visited = visited.clone();
            new_visited.insert(next);
            stack.push((next, new_edges, new_visited));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a --road--> b --road--> c --train--> d,  a --train--> c
    fn graph() -> (PropertyGraph, Vec<GNodeId>) {
        let mut g = PropertyGraph::new();
        let nodes: Vec<GNodeId> = (0..4)
            .map(|i| {
                let n = g.add_node("city");
                g.set_node_property(n, "name", format!("c{i}").as_str());
                n
            })
            .collect();
        g.add_edge(nodes[0], nodes[1], "road");
        g.add_edge(nodes[1], nodes[2], "road");
        g.add_edge(nodes[2], nodes[3], "train");
        g.add_edge(nodes[0], nodes[2], "train");
        (g, nodes)
    }

    #[test]
    fn word_membership() {
        let r = PathRegex::Concat(vec![
            PathRegex::Plus(Box::new(PathRegex::label("road"))),
            PathRegex::label("train"),
        ]);
        assert!(r.accepts(&["road", "train"]));
        assert!(r.accepts(&["road", "road", "train"]));
        assert!(!r.accepts(&["train"]));
        assert!(!r.accepts(&["road", "train", "train"]));
    }

    #[test]
    fn star_accepts_empty_word() {
        let r = PathRegex::Star(Box::new(PathRegex::label("road")));
        assert!(r.accepts(&[]));
        assert!(r.accepts(&["road", "road"]));
        assert!(!r.accepts(&["train"]));
    }

    #[test]
    fn alternation_and_optional() {
        let r = PathRegex::Concat(vec![
            PathRegex::Alt(vec![PathRegex::label("road"), PathRegex::label("train")]),
            PathRegex::Optional(Box::new(PathRegex::label("ferry"))),
        ]);
        assert!(r.accepts(&["road"]));
        assert!(r.accepts(&["train", "ferry"]));
        assert!(!r.accepts(&["ferry"]));
    }

    #[test]
    fn indexed_evaluation_agrees_with_naive() {
        let (g, _) = graph();
        let ix = crate::index::GraphIndex::build(&g);
        let queries = [
            PathRegex::Plus(Box::new(PathRegex::label("road"))),
            PathRegex::Star(Box::new(PathRegex::label("road"))),
            PathRegex::Concat(vec![
                PathRegex::Star(Box::new(PathRegex::label("road"))),
                PathRegex::label("train"),
            ]),
            PathRegex::Alt(vec![PathRegex::label("road"), PathRegex::label("ferry")]),
            PathRegex::Optional(Box::new(PathRegex::label("train"))),
            PathRegex::label("ferry"), // label absent from the graph
        ];
        for r in queries {
            assert_eq!(evaluate_indexed(&g, &ix, &r), evaluate(&g, &r), "{r}");
        }
    }

    #[test]
    fn evaluation_finds_connected_pairs() {
        let (g, n) = graph();
        let road_plus = PathRegex::Plus(Box::new(PathRegex::label("road")));
        let pairs = evaluate(&g, &road_plus);
        assert!(pairs.contains(&(n[0], n[1])));
        assert!(pairs.contains(&(n[0], n[2])));
        assert!(pairs.contains(&(n[1], n[2])));
        assert!(
            !pairs.contains(&(n[0], n[3])),
            "d is only reachable via a train edge"
        );
    }

    #[test]
    fn evaluation_handles_concatenation_across_labels() {
        let (g, n) = graph();
        let r = PathRegex::Concat(vec![
            PathRegex::Star(Box::new(PathRegex::label("road"))),
            PathRegex::label("train"),
        ]);
        let from_a = evaluate_from(&g, &r, n[0]);
        assert!(from_a.contains(&n[2]), "a --train--> c (zero roads)");
        assert!(from_a.contains(&n[3]), "a -road-> b -road-> c -train-> d");
    }

    #[test]
    fn empty_word_pairs_are_reflexive() {
        let (g, n) = graph();
        let r = PathRegex::Star(Box::new(PathRegex::label("road")));
        let pairs = evaluate(&g, &r);
        for &node in &n {
            assert!(pairs.contains(&(node, node)));
        }
    }

    #[test]
    fn simple_paths_are_enumerated_up_to_length() {
        let (g, n) = graph();
        let paths = simple_paths(&g, n[0], n[2], 3);
        // a->b->c (roads) and a->c (train)
        assert_eq!(paths.len(), 2);
        let words: BTreeSet<Vec<String>> = paths.iter().map(|p| p.word(&g)).collect();
        assert!(words.contains(&vec!["road".to_string(), "road".to_string()]));
        assert!(words.contains(&vec!["train".to_string()]));
    }

    #[test]
    fn path_helpers_aggregate_properties() {
        let mut g = PropertyGraph::new();
        let a = g.add_node("city");
        let b = g.add_node("city");
        let c = g.add_node("city");
        let e1 = g.add_edge(a, b, "road");
        let e2 = g.add_edge(b, c, "road");
        g.set_edge_property(e1, "distance", 100.0);
        g.set_edge_property(e1, "type", "highway");
        g.set_edge_property(e2, "distance", 50.0);
        g.set_edge_property(e2, "type", "local");
        let path = Path {
            edges: vec![e1, e2],
        };
        assert_eq!(path.total_distance(&g), 150.0);
        assert!(!path.all_edges_have(&g, "type", "highway"));
        assert_eq!(path.endpoints(&g), Some((a, c)));
        assert_eq!(path.len(), 2);
    }

    #[test]
    fn large_automata_stay_on_the_indexed_path() {
        // The Thompson construction gives a concatenation of k labels k+1 states, so these
        // queries straddle what used to be the single-u64 bitmask cliff at 64 states. With
        // multi-word masks there is no cliff: the indexed evaluator handles all of them and
        // must agree with the naive spec.
        let at_old_limit = PathRegex::Concat(vec![PathRegex::label("road"); 63]);
        let over_old_limit = PathRegex::Concat(vec![PathRegex::label("road"); 64]);
        let far_over = PathRegex::Concat(vec![PathRegex::label("road"); 150]);
        assert_eq!(thompson_state_count(&at_old_limit), 64);
        assert_eq!(thompson_state_count(&over_old_limit), 65);
        assert_eq!(thompson_state_count(&far_over), 151);

        // A chain of 160 road edges: a k-label query answers the (n_i, n_{i+k}) pairs.
        let mut g = PropertyGraph::new();
        let nodes: Vec<GNodeId> = (0..161).map(|_| g.add_node("city")).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1], "road");
        }
        let ix = crate::index::GraphIndex::build(&g);
        for (regex, expected_pairs) in [
            (&at_old_limit, 161 - 63),
            (&over_old_limit, 161 - 64),
            (&far_over, 161 - 150),
        ] {
            let naive = evaluate(&g, regex);
            assert_eq!(naive.len(), expected_pairs);
            assert_eq!(evaluate_indexed(&g, &ix, regex), naive);
        }
    }

    #[test]
    fn regex_display_and_size() {
        let r = PathRegex::Concat(vec![
            PathRegex::Plus(Box::new(PathRegex::label("road"))),
            PathRegex::Alt(vec![PathRegex::label("train"), PathRegex::label("ferry")]),
        ]);
        assert_eq!(r.to_string(), "(road)+/(train|ferry)");
        assert_eq!(r.size(), 6);
    }
}
