//! Lowering the legacy query dialects onto the shared algebra IR.
//!
//! [`PathRegex`], [`Nre`], [`ConjunctiveNre`] and constant-predicate [`TriplePattern`] BGPs are
//! *front-ends* now: each lowers structurally into a [`qbe_algebra::QueryStore`] (picking up
//! the smart-constructor rewrites for free) and evaluates through the shared bitset kernels.
//! The legacy evaluators survive untouched as executable specifications — the differential
//! suite (`crates/graph/tests/prop_algebra.rs`) pins lowered evaluation against them on
//! hundreds of random instances per dialect.
//!
//! [`typed_road_view`] derives the graph the richer query classes learn over: the geographical
//! generator labels every edge `road` and stores the road type as a property, which leaves a
//! one-letter alphabet — the typed view re-labels each road by its type and keeps only the
//! low-to-high endpoint direction, so inverse labels (`ℓ⁻`) are informative.

use crate::model::{GNodeId, PropValue, PropertyGraph};
use crate::nre::{ConjunctiveNre, Nre};
use crate::pattern::{PredTerm, Term, TriplePattern};
use crate::rpq::PathRegex;
use qbe_algebra::{eval_conj, eval_expr, ConjQuery, EvalCache, ExprId, PathAtom, QueryStore};
use std::collections::BTreeSet;

/// Lower a regular path query into the store.
pub fn lower_path_regex(store: &mut QueryStore, regex: &PathRegex) -> ExprId {
    match regex {
        PathRegex::Label(l) => store.label(l),
        PathRegex::Concat(parts) => {
            let lowered: Vec<ExprId> = parts.iter().map(|p| lower_path_regex(store, p)).collect();
            store.concat(lowered)
        }
        PathRegex::Alt(parts) => {
            let lowered: Vec<ExprId> = parts.iter().map(|p| lower_path_regex(store, p)).collect();
            store.alt(lowered)
        }
        PathRegex::Star(inner) => {
            let e = lower_path_regex(store, inner);
            store.star(e)
        }
        PathRegex::Plus(inner) => {
            let e = lower_path_regex(store, inner);
            store.plus(e)
        }
        PathRegex::Optional(inner) => {
            let e = lower_path_regex(store, inner);
            store.opt(e)
        }
    }
}

/// Lower a nested regular expression into the store (total: every NRE construct has an IR
/// counterpart — nesting and node tests included).
pub fn lower_nre(store: &mut QueryStore, nre: &Nre) -> ExprId {
    match nre {
        Nre::Label(l) => store.label(l),
        Nre::AnyEdge => store.any_label(),
        Nre::NodeLabel(l) => store.node_test(l),
        Nre::Concat(parts) => {
            let lowered: Vec<ExprId> = parts.iter().map(|p| lower_nre(store, p)).collect();
            store.concat(lowered)
        }
        Nre::Alt(parts) => {
            let lowered: Vec<ExprId> = parts.iter().map(|p| lower_nre(store, p)).collect();
            store.alt(lowered)
        }
        Nre::Star(inner) => {
            let e = lower_nre(store, inner);
            store.star(e)
        }
        Nre::Plus(inner) => {
            let e = lower_nre(store, inner);
            store.plus(e)
        }
        Nre::Optional(inner) => {
            let e = lower_nre(store, inner);
            store.opt(e)
        }
        Nre::Nest(inner) => {
            let e = lower_nre(store, inner);
            store.nest(e)
        }
    }
}

/// Lower a conjunction of NRE atoms to a [`ConjQuery`] projecting every variable (in
/// first-appearance order, matching `ConjunctiveNre::variables`).
pub fn lower_conjunctive(store: &mut QueryStore, conj: &ConjunctiveNre) -> ConjQuery {
    let atoms: Vec<PathAtom> = conj
        .atoms()
        .iter()
        .map(|a| {
            let expr = lower_nre(store, &a.nre);
            PathAtom {
                subject: qbe_algebra::Term::Var(store.sym(&a.subject)),
                expr,
                object: qbe_algebra::Term::Var(store.sym(&a.object)),
            }
        })
        .collect();
    let project = conj.variables().iter().map(|v| store.sym(v)).collect();
    ConjQuery::new(atoms, project)
}

/// Lower a basic graph pattern of constant-predicate triples to a [`ConjQuery`] projecting
/// every node variable (first-appearance order). `None` when a predicate is a variable —
/// label variables are outside the IR's vocabulary and stay with the legacy SPARQL evaluator
/// (as do OPTIONAL/UNION/FILTER patterns).
pub fn lower_bgp(store: &mut QueryStore, triples: &[TriplePattern]) -> Option<ConjQuery> {
    let mut atoms = Vec::with_capacity(triples.len());
    let mut project = Vec::new();
    for t in triples {
        let PredTerm::Label(label) = &t.predicate else {
            return None;
        };
        let expr = store.label(label);
        let mut lower_term = |term: &Term| match term {
            Term::Node(n) => qbe_algebra::Term::Const(n.0 as usize),
            Term::Var(v) => {
                let sym = store.sym(v);
                if !project.contains(&sym) {
                    project.push(sym);
                }
                qbe_algebra::Term::Var(sym)
            }
        };
        let subject = lower_term(&t.subject);
        let object = lower_term(&t.object);
        atoms.push(PathAtom {
            subject,
            expr,
            object,
        });
    }
    Some(ConjQuery::new(atoms, project))
}

/// Evaluate a lowered path expression against a [`GraphIndex`](crate::index::GraphIndex),
/// returning node pairs in the legacy evaluators' vocabulary.
pub fn eval_expr_pairs(
    index: &crate::index::GraphIndex,
    store: &QueryStore,
    cache: &mut EvalCache<GNodeId>,
    expr: ExprId,
) -> BTreeSet<(GNodeId, GNodeId)> {
    eval_expr(store, index, cache, expr)
        .pairs()
        .into_iter()
        .map(|(s, t)| (GNodeId(s as u32), GNodeId(t as u32)))
        .collect()
}

/// Evaluate a lowered conjunction, returning projected node tuples.
pub fn eval_conj_tuples(
    index: &crate::index::GraphIndex,
    store: &QueryStore,
    cache: &mut EvalCache<GNodeId>,
    query: &ConjQuery,
) -> BTreeSet<Vec<GNodeId>> {
    eval_conj(store, index, cache, query, None, None)
        .into_iter()
        .map(|tuple| tuple.into_iter().map(|n| GNodeId(n as u32)).collect())
        .collect()
}

/// Derive the *typed road view* of a geographical graph: same nodes (label, `name` and
/// `population` carried over), one edge per road in the low-to-high endpoint direction only,
/// labelled by the road's `type` property (`distance` carried over).
///
/// The geographical generator emits every road in both directions under the single label
/// `road`; collapsing to one direction and promoting the type to the label gives the richer
/// query classes a 3-letter alphabet where `ℓ` and `ℓ⁻` genuinely differ.
pub fn typed_road_view(graph: &PropertyGraph) -> PropertyGraph {
    let mut typed = PropertyGraph::new();
    for node in graph.node_ids() {
        let id = typed.add_node(graph.node_label(node));
        debug_assert_eq!(id, node);
        for key in ["name", "population"] {
            if let Some(value) = graph.node_property(node, key) {
                typed.set_node_property(id, key, value.clone());
            }
        }
    }
    for edge in graph.edge_ids() {
        let (from, to) = (graph.source(edge), graph.target(edge));
        if from.0 >= to.0 {
            continue;
        }
        let label = graph
            .edge_property(edge, "type")
            .and_then(PropValue::as_text)
            .unwrap_or_else(|| graph.edge_label(edge));
        let e = typed.add_edge(from, to, label);
        if let Some(distance) = graph.edge_property(edge, "distance") {
            typed.set_edge_property(e, "distance", distance.clone());
        }
    }
    typed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::{generate_geo_graph, GeoConfig, ROAD_TYPES};
    use crate::index::GraphIndex;
    use crate::nre::eval_nre;
    use crate::rpq;

    #[test]
    fn lowered_rpq_matches_legacy_evaluation() {
        let mut g = PropertyGraph::new();
        let n: Vec<GNodeId> = (0..5).map(|_| g.add_node("city")).collect();
        g.add_edge(n[0], n[1], "road");
        g.add_edge(n[1], n[2], "road");
        g.add_edge(n[2], n[3], "train");
        g.add_edge(n[0], n[3], "train");
        g.add_edge(n[3], n[4], "road");
        let index = GraphIndex::build(&g);
        let queries = [
            PathRegex::Plus(Box::new(PathRegex::label("road"))),
            PathRegex::Concat(vec![
                PathRegex::Star(Box::new(PathRegex::label("road"))),
                PathRegex::label("train"),
            ]),
            PathRegex::Alt(vec![PathRegex::label("road"), PathRegex::label("ferry")]),
            PathRegex::Optional(Box::new(PathRegex::label("train"))),
        ];
        let mut store = QueryStore::new();
        let mut cache = EvalCache::new();
        for q in &queries {
            let lowered = lower_path_regex(&mut store, q);
            assert_eq!(
                eval_expr_pairs(&index, &store, &mut cache, lowered),
                rpq::evaluate(&g, q),
                "{q}"
            );
        }
    }

    #[test]
    fn lowered_nre_matches_legacy_evaluation() {
        let mut g = PropertyGraph::new();
        let a = g.add_node("city");
        let b = g.add_node("city");
        let c = g.add_node("station");
        g.add_edge(a, b, "road");
        g.add_edge(b, c, "train");
        let index = GraphIndex::build(&g);
        let queries = [
            Nre::Concat(vec![
                Nre::label("road"),
                Nre::Nest(Box::new(Nre::label("train"))),
            ]),
            Nre::Concat(vec![
                Nre::label("train"),
                Nre::NodeLabel("station".to_string()),
            ]),
            Nre::Star(Box::new(Nre::AnyEdge)),
        ];
        let mut store = QueryStore::new();
        let mut cache = EvalCache::new();
        for q in &queries {
            let lowered = lower_nre(&mut store, q);
            assert_eq!(
                eval_expr_pairs(&index, &store, &mut cache, lowered),
                eval_nre(&g, q),
                "{q}"
            );
        }
    }

    #[test]
    fn lowered_conjunction_matches_legacy_join() {
        let mut g = PropertyGraph::new();
        let a = g.add_node("city");
        let b = g.add_node("city");
        let c = g.add_node("city");
        let d = g.add_node("station");
        g.add_edge(a, b, "road");
        g.add_edge(b, c, "road");
        g.add_edge(b, d, "train");
        let index = GraphIndex::build(&g);
        let conj = ConjunctiveNre::new()
            .atom("x", Nre::label("road"), "y")
            .atom("y", Nre::label("train"), "z");
        let mut store = QueryStore::new();
        let mut cache = EvalCache::new();
        let lowered = lower_conjunctive(&mut store, &conj);
        let tuples = eval_conj_tuples(&index, &store, &mut cache, &lowered);
        let vars = conj.variables();
        let legacy: BTreeSet<Vec<GNodeId>> = conj
            .evaluate(&g)
            .into_iter()
            .map(|m| vars.iter().map(|v| m[v]).collect())
            .collect();
        assert_eq!(tuples, legacy);
    }

    #[test]
    fn lowered_bgp_matches_pattern_evaluation() {
        let mut g = PropertyGraph::new();
        let a = g.add_node("city");
        let b = g.add_node("city");
        let c = g.add_node("city");
        g.add_edge(a, b, "road");
        g.add_edge(b, c, "road");
        g.add_edge(a, c, "train");
        let index = GraphIndex::build(&g);
        let triples = [
            TriplePattern::new(Term::var("x"), PredTerm::label("road"), Term::var("y")),
            TriplePattern::new(Term::var("y"), PredTerm::label("road"), Term::var("z")),
        ];
        let mut store = QueryStore::new();
        let mut cache = EvalCache::new();
        let q = lower_bgp(&mut store, &triples).expect("constant predicates lower");
        let tuples = eval_conj_tuples(&index, &store, &mut cache, &q);
        assert_eq!(tuples, BTreeSet::from([vec![a, b, c]]));
        // A predicate variable stays with the legacy evaluator.
        let var_pred = [TriplePattern::new(
            Term::var("x"),
            PredTerm::Var("p".to_string()),
            Term::var("y"),
        )];
        assert!(lower_bgp(&mut store, &var_pred).is_none());
    }

    #[test]
    fn typed_view_relabels_roads_one_direction() {
        let graph = generate_geo_graph(&GeoConfig {
            cities: 12,
            connectivity: 3,
            ..Default::default()
        });
        let typed = typed_road_view(&graph);
        assert_eq!(typed.node_count(), graph.node_count());
        // Each bidirectional road pair collapses to one typed edge.
        assert_eq!(typed.edge_count() * 2, graph.edge_count());
        for e in typed.edge_ids() {
            assert!(typed.source(e).0 < typed.target(e).0, "one direction only");
            assert!(ROAD_TYPES.contains(&typed.edge_label(e)));
            assert!(typed.edge_property(e, "distance").is_some());
        }
        // Node names survive, so sessions can still speak in city names.
        assert_eq!(
            typed.find_node_by_property("name", "city0"),
            graph.find_node_by_property("name", "city0")
        );
        // The typed alphabet is the road-type vocabulary (what makes ℓ⁻ informative).
        assert!(typed.edge_alphabet().len() > 1);
    }
}
