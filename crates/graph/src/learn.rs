//! Learning regular path queries from positive and negative example paths.
//!
//! "We aim to identify a query language for graphs which is expressive enough and also learnable
//! from positive and possibly negative examples." The hypothesis class used here mirrors the
//! anchored-twig idea on words: a **block sequence** — a concatenation of blocks, each block
//! being a set of alternative edge labels with a multiplicity (exactly one, one-or-more, or
//! zero-or-more). Examples are edge-label words (the words of user-approved / rejected paths).
//!
//! The learner generalises the positive words pairwise (sequence alignment, run-length
//! collapsing) and then checks the negatives; like the twig case, the learned query is the most
//! specific hypothesis of the class, so if it accepts a negative word no hypothesis of the class
//! separates the examples.

use crate::rpq::PathRegex;
use std::collections::BTreeSet;
use std::fmt;

/// Multiplicity of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockMultiplicity {
    /// Exactly one edge.
    One,
    /// One or more edges.
    OneOrMore,
    /// Zero or more edges.
    ZeroOrMore,
}

/// One block: alternative labels plus a multiplicity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The admissible edge labels.
    pub labels: BTreeSet<String>,
    /// How many consecutive edges the block matches.
    pub multiplicity: BlockMultiplicity,
}

impl Block {
    fn one(label: &str) -> Block {
        Block {
            labels: BTreeSet::from([label.to_string()]),
            multiplicity: BlockMultiplicity::One,
        }
    }

    fn matches(&self, label: &str) -> bool {
        self.labels.contains(label)
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let labels: Vec<&str> = self.labels.iter().map(String::as_str).collect();
        let body = if labels.len() == 1 {
            labels[0].to_string()
        } else {
            format!("({})", labels.join("|"))
        };
        match self.multiplicity {
            BlockMultiplicity::One => write!(f, "{body}"),
            BlockMultiplicity::OneOrMore => write!(f, "{body}+"),
            BlockMultiplicity::ZeroOrMore => write!(f, "{body}*"),
        }
    }
}

/// A learned path query: a concatenation of blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockPathQuery {
    blocks: Vec<Block>,
}

impl BlockPathQuery {
    /// The blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Whether the query accepts an edge-label word (dynamic programming over blocks).
    pub fn accepts(&self, word: &[&str]) -> bool {
        // reachable[i] = set of block indices fully consumed after reading word[..i]
        let n_blocks = self.blocks.len();
        let mut reachable: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); word.len() + 1];
        // `blocks_consumed` counts how many leading blocks are satisfied; start state: 0 blocks,
        // plus any prefix of zero-or-more blocks.
        reachable[0].insert(self.skip_optional(0));
        for state in self.all_skips(0) {
            reachable[0].insert(state);
        }
        for (i, &symbol) in word.iter().enumerate() {
            let states: Vec<usize> = reachable[i].iter().copied().collect();
            for state in states {
                if state >= n_blocks {
                    continue; // all blocks consumed; extra symbols cannot match
                }
                let block = &self.blocks[state];
                if !block.matches(symbol) {
                    continue;
                }
                match block.multiplicity {
                    BlockMultiplicity::One => {
                        for s in self.all_skips(state + 1) {
                            reachable[i + 1].insert(s);
                        }
                    }
                    BlockMultiplicity::OneOrMore | BlockMultiplicity::ZeroOrMore => {
                        // Stay in the block or move past it.
                        reachable[i + 1].insert(state);
                        for s in self.all_skips(state + 1) {
                            reachable[i + 1].insert(s);
                        }
                    }
                }
            }
        }
        reachable[word.len()].contains(&n_blocks)
    }

    /// All block indices reachable from `from` by skipping zero-or-more blocks.
    fn all_skips(&self, from: usize) -> Vec<usize> {
        let mut out = vec![from];
        let mut cur = from;
        while cur < self.blocks.len()
            && self.blocks[cur].multiplicity == BlockMultiplicity::ZeroOrMore
        {
            cur += 1;
            out.push(cur);
        }
        out
    }

    fn skip_optional(&self, from: usize) -> usize {
        from
    }

    /// Convert to the general [`PathRegex`] form (for evaluation on a graph).
    pub fn to_regex(&self) -> PathRegex {
        let parts: Vec<PathRegex> = self
            .blocks
            .iter()
            .map(|b| {
                let alt = if b.labels.len() == 1 {
                    PathRegex::label(b.labels.iter().next().unwrap())
                } else {
                    PathRegex::Alt(b.labels.iter().map(PathRegex::label).collect())
                };
                match b.multiplicity {
                    BlockMultiplicity::One => alt,
                    BlockMultiplicity::OneOrMore => PathRegex::Plus(Box::new(alt)),
                    BlockMultiplicity::ZeroOrMore => PathRegex::Star(Box::new(alt)),
                }
            })
            .collect();
        PathRegex::Concat(parts)
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the query has no blocks (accepts only the empty path).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

impl fmt::Display for BlockPathQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.blocks.iter().map(|b| b.to_string()).collect();
        write!(f, "{}", parts.join("/"))
    }
}

/// Error raised by the path-query learner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathLearnError {
    /// No positive example words were provided.
    NoExamples,
}

impl fmt::Display for PathLearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot learn a path query from zero positive examples")
    }
}

impl std::error::Error for PathLearnError {}

/// Learn the most specific block path query accepting every positive word.
pub fn learn_path_query(positives: &[Vec<String>]) -> Result<BlockPathQuery, PathLearnError> {
    let first = positives.first().ok_or(PathLearnError::NoExamples)?;
    // Start from the run-length collapse of the first word.
    let mut query = collapse_runs(first);
    for word in &positives[1..] {
        query = generalise(&query, &collapse_runs(word));
    }
    Ok(query)
}

/// Learn from positive and negative words; `None` when the most specific consistent hypothesis
/// of the class still accepts a negative word (no hypothesis of the class separates them).
pub fn learn_path_query_with_negatives(
    positives: &[Vec<String>],
    negatives: &[Vec<String>],
) -> Result<Option<BlockPathQuery>, PathLearnError> {
    let query = learn_path_query(positives)?;
    let consistent = negatives.iter().all(|w| {
        let refs: Vec<&str> = w.iter().map(String::as_str).collect();
        !query.accepts(&refs)
    });
    Ok(consistent.then_some(query))
}

/// Collapse runs of the same label into `OneOrMore` blocks.
fn collapse_runs(word: &[String]) -> BlockPathQuery {
    let mut blocks: Vec<Block> = Vec::new();
    for label in word {
        match blocks.last_mut() {
            Some(last) if last.labels.len() == 1 && last.matches(label) => {
                last.multiplicity = BlockMultiplicity::OneOrMore;
            }
            _ => blocks.push(Block::one(label)),
        }
    }
    BlockPathQuery { blocks }
}

/// Generalise two block queries by aligning their blocks (longest common subsequence on label
/// sets); aligned blocks merge labels and weaken multiplicities, unaligned blocks become
/// zero-or-more.
fn generalise(a: &BlockPathQuery, b: &BlockPathQuery) -> BlockPathQuery {
    let n = a.blocks.len();
    let m = b.blocks.len();
    let mut table = vec![vec![0usize; m + 1]; n + 1];
    let compatible = |x: &Block, y: &Block| !x.labels.is_disjoint(&y.labels);
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            table[i][j] = if compatible(&a.blocks[i], &b.blocks[j]) {
                table[i + 1][j + 1] + 1
            } else {
                table[i + 1][j].max(table[i][j + 1])
            };
        }
    }
    let mut out: Vec<Block> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < n && j < m {
        if compatible(&a.blocks[i], &b.blocks[j]) && table[i][j] == table[i + 1][j + 1] + 1 {
            let mut labels = a.blocks[i].labels.clone();
            labels.extend(b.blocks[j].labels.iter().cloned());
            let multiplicity =
                merge_multiplicity(a.blocks[i].multiplicity, b.blocks[j].multiplicity);
            out.push(Block {
                labels,
                multiplicity,
            });
            i += 1;
            j += 1;
        } else if table[i + 1][j] >= table[i][j + 1] {
            out.push(weaken_to_optional(&a.blocks[i]));
            i += 1;
        } else {
            out.push(weaken_to_optional(&b.blocks[j]));
            j += 1;
        }
    }
    for block in &a.blocks[i..] {
        out.push(weaken_to_optional(block));
    }
    for block in &b.blocks[j..] {
        out.push(weaken_to_optional(block));
    }
    BlockPathQuery { blocks: out }
}

fn merge_multiplicity(a: BlockMultiplicity, b: BlockMultiplicity) -> BlockMultiplicity {
    use BlockMultiplicity::*;
    match (a, b) {
        (One, One) => One,
        (ZeroOrMore, _) | (_, ZeroOrMore) => ZeroOrMore,
        _ => OneOrMore,
    }
}

fn weaken_to_optional(block: &Block) -> Block {
    Block {
        labels: block.labels.clone(),
        multiplicity: BlockMultiplicity::ZeroOrMore,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word(labels: &[&str]) -> Vec<String> {
        labels.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_examples_is_an_error() {
        assert_eq!(
            learn_path_query(&[]).unwrap_err(),
            PathLearnError::NoExamples
        );
    }

    #[test]
    fn single_example_collapses_runs() {
        let q = learn_path_query(&[word(&["road", "road", "road", "train"])]).unwrap();
        assert_eq!(q.to_string(), "road+/train");
        assert!(q.accepts(&["road", "train"]));
        assert!(q.accepts(&["road", "road", "road", "road", "train"]));
        assert!(!q.accepts(&["train"]));
    }

    #[test]
    fn learned_query_accepts_all_positives() {
        let positives = vec![
            word(&["road", "road", "train"]),
            word(&["road", "train"]),
            word(&["road", "road", "road", "train"]),
        ];
        let q = learn_path_query(&positives).unwrap();
        for p in &positives {
            let refs: Vec<&str> = p.iter().map(String::as_str).collect();
            assert!(q.accepts(&refs), "query {q} rejects positive {p:?}");
        }
    }

    #[test]
    fn different_labels_at_same_position_become_alternatives() {
        let positives = vec![word(&["road", "train"]), word(&["road", "ferry"])];
        let q = learn_path_query(&positives).unwrap();
        assert!(q.accepts(&["road", "train"]));
        assert!(q.accepts(&["road", "ferry"]));
        assert!(!q.accepts(&["road", "road"]));
    }

    #[test]
    fn extra_steps_become_optional_blocks() {
        let positives = vec![word(&["road", "train"]), word(&["road", "local", "train"])];
        let q = learn_path_query(&positives).unwrap();
        assert!(q.accepts(&["road", "train"]));
        assert!(q.accepts(&["road", "local", "train"]));
    }

    #[test]
    fn negatives_reject_the_hypothesis_class_when_not_separable() {
        let positives = vec![word(&["road", "road"])];
        // The positive collapses to road+, which also accepts the negative "road".
        let negatives = vec![word(&["road"])];
        assert_eq!(
            learn_path_query_with_negatives(&positives, &negatives).unwrap(),
            None
        );
    }

    #[test]
    fn negatives_are_rejected_when_separable() {
        let positives = vec![word(&["highway", "highway"]), word(&["highway"])];
        let negatives = vec![word(&["local"]), word(&["highway", "local"])];
        let q = learn_path_query_with_negatives(&positives, &negatives)
            .unwrap()
            .expect("separable");
        assert!(q.accepts(&["highway", "highway", "highway"]));
        assert!(!q.accepts(&["highway", "local"]));
    }

    #[test]
    fn to_regex_agrees_with_block_acceptance() {
        let positives = vec![word(&["road", "road", "train"]), word(&["road", "ferry"])];
        let q = learn_path_query(&positives).unwrap();
        let regex = q.to_regex();
        for sample in [
            vec!["road", "train"],
            vec!["road", "road", "ferry"],
            vec!["train"],
            vec!["ferry", "road"],
            vec!["road"],
        ] {
            assert_eq!(
                q.accepts(&sample),
                regex.accepts(&sample),
                "block query {q} and regex {regex} disagree on {sample:?}"
            );
        }
    }

    #[test]
    fn empty_word_handling() {
        let q = learn_path_query(&[word(&[])]).unwrap();
        assert!(q.is_empty());
        assert!(q.accepts(&[]));
        assert!(!q.accepts(&["road"]));
    }
}
