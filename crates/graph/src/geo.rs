//! Geographical database generator — the paper's running example for graph-query learning.
//!
//! Vertices are cities (with names and populations), edges are roads carrying a `distance` and a
//! `type` (highway / national / local). The generator lays cities out on a jittered grid,
//! connects neighbours (mostly local/national roads), and adds a sparser long-distance highway
//! backbone, so that "paths where all the edges are highways" — the paper's example constraint —
//! exist but are not the only option between two cities.

use crate::model::{GNodeId, PropertyGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Road categories used on edges (property `type`).
pub const ROAD_TYPES: [&str; 3] = ["highway", "national", "local"];

/// Configuration of the geographical graph generator.
#[derive(Debug, Clone)]
pub struct GeoConfig {
    /// Number of cities.
    pub cities: usize,
    /// Average out-degree of local/national connections.
    pub connectivity: usize,
    /// Fraction of cities on the highway backbone.
    pub highway_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeoConfig {
    fn default() -> Self {
        GeoConfig {
            cities: 40,
            connectivity: 3,
            highway_fraction: 0.3,
            seed: 42,
        }
    }
}

/// Generate a geographical property graph. Roads are added in both directions.
pub fn generate_geo_graph(config: &GeoConfig) -> PropertyGraph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut graph = PropertyGraph::new();
    let mut cities: Vec<GNodeId> = Vec::with_capacity(config.cities);
    for i in 0..config.cities {
        let node = graph.add_node("city");
        graph.set_node_property(node, "name", format!("city{i}").as_str());
        graph.set_node_property(node, "population", rng.gen_range(5_000..2_000_000));
        cities.push(node);
    }
    let add_road =
        |graph: &mut PropertyGraph, a: GNodeId, b: GNodeId, kind: &str, distance: f64| {
            for (from, to) in [(a, b), (b, a)] {
                let e = graph.add_edge(from, to, "road");
                graph.set_edge_property(e, "type", kind);
                graph.set_edge_property(e, "distance", distance);
            }
        };
    // Local/national mesh: connect each city to a few of the following ones (keeps the graph
    // connected because city i always links to city i+1).
    for i in 0..config.cities {
        let fanout = 1 + rng.gen_range(0..config.connectivity.max(1));
        for k in 1..=fanout {
            let j = i + k;
            if j >= config.cities {
                break;
            }
            let kind = if rng.gen_bool(0.4) {
                "national"
            } else {
                "local"
            };
            let distance = rng.gen_range(10.0..120.0);
            add_road(&mut graph, cities[i], cities[j], kind, distance);
        }
    }
    // Highway backbone over a subset of cities.
    let backbone: Vec<GNodeId> = cities
        .iter()
        .copied()
        .enumerate()
        .filter(|(i, _)| (*i as f64 / config.cities as f64) < config.highway_fraction || i % 5 == 0)
        .map(|(_, c)| c)
        .collect();
    for pair in backbone.windows(2) {
        let distance = rng.gen_range(80.0..400.0);
        add_road(&mut graph, pair[0], pair[1], "highway", distance);
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpq::simple_paths;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_geo_graph(&GeoConfig::default());
        let b = generate_geo_graph(&GeoConfig::default());
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
    }

    #[test]
    fn cities_have_names_and_populations() {
        let g = generate_geo_graph(&GeoConfig {
            cities: 10,
            ..Default::default()
        });
        assert_eq!(g.node_count(), 10);
        for n in g.node_ids() {
            assert_eq!(g.node_label(n), "city");
            assert!(g.node_property(n, "name").is_some());
            assert!(g.node_property(n, "population").is_some());
        }
    }

    #[test]
    fn roads_are_bidirectional_with_properties() {
        let g = generate_geo_graph(&GeoConfig {
            cities: 12,
            ..Default::default()
        });
        assert!(
            g.edge_count().is_multiple_of(2),
            "roads are added in both directions"
        );
        for e in g.edge_ids() {
            assert_eq!(g.edge_label(e), "road");
            let kind = g.edge_property(e, "type").unwrap().as_text().unwrap();
            assert!(ROAD_TYPES.contains(&kind));
            assert!(g.edge_property(e, "distance").unwrap().as_number().unwrap() > 0.0);
        }
    }

    #[test]
    fn all_road_types_appear() {
        let g = generate_geo_graph(&GeoConfig {
            cities: 40,
            ..Default::default()
        });
        for kind in ROAD_TYPES {
            let found = g
                .edge_ids()
                .any(|e| g.edge_property(e, "type").unwrap().as_text() == Some(kind));
            assert!(found, "no {kind} road generated");
        }
    }

    #[test]
    fn consecutive_cities_are_connected() {
        let g = generate_geo_graph(&GeoConfig {
            cities: 15,
            ..Default::default()
        });
        let c0 = g.find_node_by_property("name", "city0").unwrap();
        let c5 = g.find_node_by_property("name", "city5").unwrap();
        let paths = simple_paths(&g, c0, c5, 8);
        assert!(
            !paths.is_empty(),
            "the local mesh keeps the graph connected"
        );
    }
}
