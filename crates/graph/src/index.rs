//! Label-indexed adjacency for property graphs.
//!
//! RPQ evaluation is a BFS over the product of the graph with the query automaton; the naive
//! loop scans every outgoing edge of a node and string-compares its label against each NFA
//! transition. [`GraphIndex`] interns the edge labels once and lays the adjacency out as, per
//! node, a label-id-sorted successor list — the product BFS then matches transitions by integer
//! id and can enumerate the successors of a node under one label as a contiguous slice.
//!
//! Like `qbe_xml::NodeIndex`, the index is immutable and self-contained, so it can be built
//! once per graph and shared (behind an `Arc`) by every concurrent learning session over that
//! graph.

use crate::model::{GNodeId, PropertyGraph};
use std::collections::HashMap;

/// Immutable label-interned adjacency index of one [`PropertyGraph`].
#[derive(Debug, Clone)]
pub struct GraphIndex {
    labels: Vec<String>,
    label_ids: HashMap<String, u32>,
    /// `out[node]` = `(label id, target)` pairs, sorted by label id (then target).
    out: Vec<Vec<(u32, GNodeId)>>,
}

impl GraphIndex {
    /// Build the index in one pass over the edges.
    pub fn build(graph: &PropertyGraph) -> GraphIndex {
        let mut labels: Vec<String> = graph.edge_alphabet();
        labels.sort();
        let label_ids: HashMap<String, u32> = labels
            .iter()
            .enumerate()
            .map(|(ix, l)| (l.clone(), ix as u32))
            .collect();
        let mut out: Vec<Vec<(u32, GNodeId)>> = vec![Vec::new(); graph.node_count()];
        for edge in graph.edge_ids() {
            let lid = label_ids[graph.edge_label(edge)];
            out[graph.source(edge).0 as usize].push((lid, graph.target(edge)));
        }
        for adj in &mut out {
            adj.sort_unstable();
        }
        GraphIndex {
            labels,
            label_ids,
            out,
        }
    }

    /// Number of indexed nodes.
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Number of distinct edge labels.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// The interned id of a label (`None` when no edge carries it).
    pub fn label_id(&self, label: &str) -> Option<u32> {
        self.label_ids.get(label).copied()
    }

    /// The label behind an interned id.
    pub fn label(&self, id: u32) -> &str {
        &self.labels[id as usize]
    }

    /// All `(label id, target)` successor pairs of a node, sorted by label id.
    pub fn out_edges(&self, node: GNodeId) -> &[(u32, GNodeId)] {
        &self.out[node.0 as usize]
    }

    /// Successors of `node` under edges labelled `label_id`, as a contiguous slice.
    pub fn successors(&self, node: GNodeId, label_id: u32) -> &[(u32, GNodeId)] {
        let adj = &self.out[node.0 as usize];
        let lo = adj.partition_point(|&(l, _)| l < label_id);
        let hi = adj.partition_point(|&(l, _)| l <= label_id);
        &adj[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> (PropertyGraph, Vec<GNodeId>) {
        let mut g = PropertyGraph::new();
        let n: Vec<GNodeId> = (0..4).map(|_| g.add_node("city")).collect();
        g.add_edge(n[0], n[1], "road");
        g.add_edge(n[0], n[2], "train");
        g.add_edge(n[0], n[3], "road");
        g.add_edge(n[1], n[2], "road");
        (g, n)
    }

    #[test]
    fn labels_are_interned_sorted() {
        let (g, _) = graph();
        let ix = GraphIndex::build(&g);
        assert_eq!(ix.label_count(), 2);
        assert_eq!(ix.label(ix.label_id("road").unwrap()), "road");
        assert_eq!(ix.label(ix.label_id("train").unwrap()), "train");
        assert!(ix.label_id("ferry").is_none());
    }

    #[test]
    fn successors_enumerate_per_label() {
        let (g, n) = graph();
        let ix = GraphIndex::build(&g);
        let road = ix.label_id("road").unwrap();
        let train = ix.label_id("train").unwrap();
        let road_targets: Vec<GNodeId> =
            ix.successors(n[0], road).iter().map(|&(_, t)| t).collect();
        assert_eq!(road_targets, vec![n[1], n[3]]);
        let train_targets: Vec<GNodeId> =
            ix.successors(n[0], train).iter().map(|&(_, t)| t).collect();
        assert_eq!(train_targets, vec![n[2]]);
        assert!(ix.successors(n[2], road).is_empty());
    }

    #[test]
    fn out_edges_cover_every_edge_once() {
        let (g, _) = graph();
        let ix = GraphIndex::build(&g);
        let total: usize = g.node_ids().map(|v| ix.out_edges(v).len()).sum();
        assert_eq!(total, g.edge_count());
        assert_eq!(ix.node_count(), g.node_count());
    }
}
