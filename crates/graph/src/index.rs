//! Label-indexed adjacency for property graphs.
//!
//! RPQ evaluation is a BFS over the product of the graph with the query automaton; the naive
//! loop scans every outgoing edge of a node and string-compares its label against each NFA
//! transition. [`GraphIndex`] interns the edge labels once and lays the adjacency out as, per
//! node, a label-id-sorted successor list — the product BFS then matches transitions by integer
//! id and can enumerate the successors of a node under one label as a contiguous slice.
//!
//! Like `qbe_xml::NodeIndex`, the index is immutable and self-contained, so it can be built
//! once per graph and shared (behind an `Arc`) by every concurrent learning session over that
//! graph.
//!
//! The index also implements [`qbe_algebra::Adjacency`], so algebra-lowered queries evaluate
//! directly against it — the per-label *reverse* bitsets (`in_bits`) make inverse labels
//! (`ℓ⁻`, the 2RPQ extension) native rather than requiring a transposition pass.

use crate::model::{GNodeId, PropertyGraph};
use qbe_bitset::DenseSet;
use std::collections::HashMap;

/// Immutable label-interned adjacency index of one [`PropertyGraph`].
#[derive(Debug, Clone)]
pub struct GraphIndex {
    labels: Vec<String>,
    label_ids: HashMap<String, u32>,
    /// `out[node]` = `(label id, target)` pairs, sorted by label id (then target).
    out: Vec<Vec<(u32, GNodeId)>>,
    /// `out_bits[node]` = per distinct outgoing label, the *set* of successors as a dense
    /// bitset over the node universe (sorted by label id). Parallel edges collapse to one bit,
    /// so a product-BFS step enqueues each distinct `(label, target)` once.
    ///
    /// Memory trade-off: one `n/8`-byte bitset per `(node, distinct outgoing label)` pair —
    /// negligible for the geographical graphs the paper's experiments use, O(n²/8) per label on
    /// large dense graphs. If this index ever fronts such graphs, the sorted `out` slices can
    /// serve the same dedup by skipping consecutive duplicate targets.
    out_bits: Vec<Vec<(u32, DenseSet<GNodeId>)>>,
    /// `in_bits[node]` = per distinct *incoming* label, the set of predecessors (sorted by
    /// label id) — the mirror of `out_bits` that makes inverse labels (`ℓ⁻`) evaluate natively.
    in_bits: Vec<Vec<(u32, DenseSet<GNodeId>)>>,
    /// `label_edge_counts[label id]` = number of edges carrying the label (the join planner's
    /// selectivity signal).
    label_edge_counts: Vec<usize>,
    /// Distinct node labels → the set of nodes carrying each (for `?l` node tests).
    node_label_sets: HashMap<String, DenseSet<GNodeId>>,
}

impl GraphIndex {
    /// Build the index in one pass over the edges.
    pub fn build(graph: &PropertyGraph) -> GraphIndex {
        let mut labels: Vec<String> = graph.edge_alphabet();
        labels.sort();
        let label_ids: HashMap<String, u32> = labels
            .iter()
            .enumerate()
            .map(|(ix, l)| (l.clone(), ix as u32))
            .collect();
        let mut out: Vec<Vec<(u32, GNodeId)>> = vec![Vec::new(); graph.node_count()];
        let mut rev: Vec<Vec<(u32, GNodeId)>> = vec![Vec::new(); graph.node_count()];
        let mut label_edge_counts = vec![0usize; labels.len()];
        for edge in graph.edge_ids() {
            let lid = label_ids[graph.edge_label(edge)];
            out[graph.source(edge).0 as usize].push((lid, graph.target(edge)));
            rev[graph.target(edge).0 as usize].push((lid, graph.source(edge)));
            label_edge_counts[lid as usize] += 1;
        }
        for adj in out.iter_mut().chain(rev.iter_mut()) {
            adj.sort_unstable();
        }
        let n = graph.node_count();
        let collapse = |adj: &[(u32, GNodeId)]| {
            let mut per_label: Vec<(u32, DenseSet<GNodeId>)> = Vec::new();
            for &(lid, target) in adj {
                match per_label.last_mut() {
                    Some((last, bits)) if *last == lid => {
                        bits.insert(target);
                    }
                    _ => per_label.push((lid, DenseSet::from_ids(n, [target]))),
                }
            }
            per_label
        };
        let out_bits = out.iter().map(|adj| collapse(adj)).collect();
        let in_bits = rev.iter().map(|adj| collapse(adj)).collect();
        let mut node_label_sets: HashMap<String, DenseSet<GNodeId>> = HashMap::new();
        for node in graph.node_ids() {
            node_label_sets
                .entry(graph.node_label(node).to_string())
                .or_insert_with(|| DenseSet::new(n))
                .insert(node);
        }
        GraphIndex {
            labels,
            label_ids,
            out,
            out_bits,
            in_bits,
            label_edge_counts,
            node_label_sets,
        }
    }

    /// Reassemble an index from its serialised parts: the interned label table, the per-node
    /// forward/reverse per-label successor bitsets, the per-label edge counts and the node-label
    /// sets (what the snapshot store persists). The raw `(label id, target)` adjacency is
    /// derived by expanding `out_bits`, so parallel edges — which the bitsets collapse by
    /// design — reappear as a single edge; every evaluator in the workspace consumes the
    /// collapsed sets, so query answers are unaffected.
    ///
    /// # Panics
    /// Panics when row counts or bitset universes disagree.
    pub fn from_parts(
        labels: Vec<String>,
        out_bits: Vec<Vec<(u32, DenseSet<GNodeId>)>>,
        in_bits: Vec<Vec<(u32, DenseSet<GNodeId>)>>,
        label_edge_counts: Vec<usize>,
        node_label_sets: HashMap<String, DenseSet<GNodeId>>,
    ) -> GraphIndex {
        let n = out_bits.len();
        assert_eq!(in_bits.len(), n, "forward/reverse row counts must agree");
        assert_eq!(
            label_edge_counts.len(),
            labels.len(),
            "one edge count per interned label"
        );
        for row in out_bits.iter().chain(in_bits.iter()) {
            for (lid, bits) in row {
                assert!((*lid as usize) < labels.len(), "label id out of range");
                assert_eq!(bits.universe(), n, "adjacency bitset universe mismatch");
            }
        }
        for bits in node_label_sets.values() {
            assert_eq!(bits.universe(), n, "node-label bitset universe mismatch");
        }
        let label_ids = labels
            .iter()
            .enumerate()
            .map(|(ix, l)| (l.clone(), ix as u32))
            .collect();
        let out = out_bits
            .iter()
            .map(|row| {
                row.iter()
                    .flat_map(|(lid, bits)| bits.iter().map(move |t| (*lid, t)))
                    .collect()
            })
            .collect();
        GraphIndex {
            labels,
            label_ids,
            out,
            out_bits,
            in_bits,
            label_edge_counts,
            node_label_sets,
        }
    }

    /// Every `(node label, node set)` pair, in arbitrary order — the iteration the snapshot
    /// writer serialises (sorted by the writer for determinism).
    pub fn node_label_entries(&self) -> impl Iterator<Item = (&str, &DenseSet<GNodeId>)> {
        self.node_label_sets
            .iter()
            .map(|(label, bits)| (label.as_str(), bits))
    }

    /// Number of indexed nodes.
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Number of distinct edge labels.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// The interned id of a label (`None` when no edge carries it).
    pub fn label_id(&self, label: &str) -> Option<u32> {
        self.label_ids.get(label).copied()
    }

    /// The label behind an interned id.
    pub fn label(&self, id: u32) -> &str {
        &self.labels[id as usize]
    }

    /// All `(label id, target)` successor pairs of a node, sorted by label id.
    pub fn out_edges(&self, node: GNodeId) -> &[(u32, GNodeId)] {
        &self.out[node.0 as usize]
    }

    /// Successors of `node` under edges labelled `label_id`, as a contiguous slice.
    pub fn successors(&self, node: GNodeId, label_id: u32) -> &[(u32, GNodeId)] {
        let adj = &self.out[node.0 as usize];
        let lo = adj.partition_point(|&(l, _)| l < label_id);
        let hi = adj.partition_point(|&(l, _)| l <= label_id);
        &adj[lo..hi]
    }

    /// Per distinct outgoing label of `node`, the successor *set* as a dense bitset (sorted by
    /// label id, parallel edges collapsed). The product BFS walks this instead of the raw edge
    /// list, so it transitions once per distinct label and enqueues each target once.
    pub fn successor_bits(&self, node: GNodeId) -> &[(u32, DenseSet<GNodeId>)] {
        &self.out_bits[node.0 as usize]
    }

    /// Per distinct *incoming* label of `node`, the predecessor set as a dense bitset (sorted
    /// by label id). The reverse mirror of [`successor_bits`](Self::successor_bits), backing
    /// native inverse-label (`ℓ⁻`) evaluation.
    pub fn predecessor_bits(&self, node: GNodeId) -> &[(u32, DenseSet<GNodeId>)] {
        &self.in_bits[node.0 as usize]
    }

    /// Successor set of `node` under one label, when any exists.
    pub fn successor_set(&self, node: GNodeId, label_id: u32) -> Option<&DenseSet<GNodeId>> {
        lookup_label(&self.out_bits[node.0 as usize], label_id)
    }

    /// Predecessor set of `node` under one label, when any exists.
    pub fn predecessor_set(&self, node: GNodeId, label_id: u32) -> Option<&DenseSet<GNodeId>> {
        lookup_label(&self.in_bits[node.0 as usize], label_id)
    }

    /// Number of edges carrying the label.
    pub fn label_edge_count(&self, label_id: u32) -> usize {
        self.label_edge_counts[label_id as usize]
    }

    /// The set of nodes carrying a node label (`None` when no node does).
    pub fn nodes_labelled(&self, label: &str) -> Option<&DenseSet<GNodeId>> {
        self.node_label_sets.get(label)
    }
}

fn lookup_label(
    per_label: &[(u32, DenseSet<GNodeId>)],
    label_id: u32,
) -> Option<&DenseSet<GNodeId>> {
    per_label
        .binary_search_by_key(&label_id, |&(l, _)| l)
        .ok()
        .map(|ix| &per_label[ix].1)
}

/// Algebra-lowered queries evaluate straight against the index: forward rows from `out_bits`,
/// reverse rows from `in_bits` (native `ℓ⁻`), selectivity from the per-label edge counts.
impl qbe_algebra::Adjacency for GraphIndex {
    type Id = GNodeId;

    fn node_count(&self) -> usize {
        GraphIndex::node_count(self)
    }

    fn label_count(&self) -> usize {
        GraphIndex::label_count(self)
    }

    fn resolve_label(&self, name: &str) -> Option<usize> {
        self.label_id(name).map(|l| l as usize)
    }

    fn successors_of(&self, node: usize, label: usize) -> Option<&DenseSet<GNodeId>> {
        self.successor_set(GNodeId(node as u32), label as u32)
    }

    fn predecessors_of(&self, node: usize, label: usize) -> Option<&DenseSet<GNodeId>> {
        self.predecessor_set(GNodeId(node as u32), label as u32)
    }

    fn label_edge_count(&self, label: usize) -> usize {
        GraphIndex::label_edge_count(self, label as u32)
    }

    fn nodes_with_node_label(&self, name: &str) -> DenseSet<GNodeId> {
        self.nodes_labelled(name)
            .cloned()
            .unwrap_or_else(|| DenseSet::new(self.node_count()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> (PropertyGraph, Vec<GNodeId>) {
        let mut g = PropertyGraph::new();
        let n: Vec<GNodeId> = (0..4).map(|_| g.add_node("city")).collect();
        g.add_edge(n[0], n[1], "road");
        g.add_edge(n[0], n[2], "train");
        g.add_edge(n[0], n[3], "road");
        g.add_edge(n[1], n[2], "road");
        (g, n)
    }

    #[test]
    fn labels_are_interned_sorted() {
        let (g, _) = graph();
        let ix = GraphIndex::build(&g);
        assert_eq!(ix.label_count(), 2);
        assert_eq!(ix.label(ix.label_id("road").unwrap()), "road");
        assert_eq!(ix.label(ix.label_id("train").unwrap()), "train");
        assert!(ix.label_id("ferry").is_none());
    }

    #[test]
    fn successors_enumerate_per_label() {
        let (g, n) = graph();
        let ix = GraphIndex::build(&g);
        let road = ix.label_id("road").unwrap();
        let train = ix.label_id("train").unwrap();
        let road_targets: Vec<GNodeId> =
            ix.successors(n[0], road).iter().map(|&(_, t)| t).collect();
        assert_eq!(road_targets, vec![n[1], n[3]]);
        let train_targets: Vec<GNodeId> =
            ix.successors(n[0], train).iter().map(|&(_, t)| t).collect();
        assert_eq!(train_targets, vec![n[2]]);
        assert!(ix.successors(n[2], road).is_empty());
    }

    #[test]
    fn successor_bitsets_agree_with_edge_slices_and_collapse_parallel_edges() {
        let (mut g, n) = graph();
        // A parallel road edge: the slice gains an entry, the bitset does not.
        g.add_edge(n[0], n[1], "road");
        let ix = GraphIndex::build(&g);
        let road = ix.label_id("road").unwrap();
        assert_eq!(ix.successors(n[0], road).len(), 3);
        let (lid, bits) = &ix.successor_bits(n[0])[0];
        assert_eq!(*lid, road);
        assert_eq!(bits.iter().collect::<Vec<_>>(), vec![n[1], n[3]]);
        assert!(ix.successor_bits(n[2]).iter().all(|&(l, _)| l != road));
        // The per-node listing covers every distinct (label, target) pair, sorted by label.
        for v in g.node_ids() {
            let listed = ix.successor_bits(v);
            assert!(listed.windows(2).all(|w| w[0].0 < w[1].0));
            for &(lid, ref bits) in listed {
                let slice: std::collections::BTreeSet<GNodeId> =
                    ix.successors(v, lid).iter().map(|&(_, t)| t).collect();
                assert_eq!(
                    bits.iter().collect::<std::collections::BTreeSet<_>>(),
                    slice
                );
            }
        }
    }

    #[test]
    fn predecessor_bits_mirror_successor_bits() {
        let (g, n) = graph();
        let ix = GraphIndex::build(&g);
        let road = ix.label_id("road").unwrap();
        let train = ix.label_id("train").unwrap();
        // Every forward (s, l, t) appears as a reverse (t, l, s) and vice versa.
        for s in g.node_ids() {
            for &(lid, ref bits) in ix.successor_bits(s) {
                for t in bits.iter() {
                    assert!(
                        ix.predecessor_set(t, lid).is_some_and(|p| p.contains(s)),
                        "missing reverse edge {s:?} -{lid}-> {t:?}"
                    );
                }
            }
            for &(lid, ref bits) in ix.predecessor_bits(s) {
                for p in bits.iter() {
                    assert!(ix.successor_set(p, lid).is_some_and(|o| o.contains(s)));
                }
            }
        }
        assert_eq!(
            ix.predecessor_set(n[2], road)
                .map(|b| b.iter().collect::<Vec<_>>()),
            Some(vec![n[1]])
        );
        assert_eq!(ix.label_edge_count(road), 3);
        assert_eq!(ix.label_edge_count(train), 1);
        assert_eq!(ix.nodes_labelled("city").map(DenseSet::len), Some(4));
        assert!(ix.nodes_labelled("station").is_none());
    }

    #[test]
    fn from_parts_round_trips_a_built_index() {
        let (g, n) = graph();
        let built = GraphIndex::build(&g);
        let labels: Vec<String> = (0..built.label_count() as u32)
            .map(|l| built.label(l).to_string())
            .collect();
        let rebuilt = GraphIndex::from_parts(
            labels,
            g.node_ids()
                .map(|v| built.successor_bits(v).to_vec())
                .collect(),
            g.node_ids()
                .map(|v| built.predecessor_bits(v).to_vec())
                .collect(),
            (0..built.label_count() as u32)
                .map(|l| built.label_edge_count(l))
                .collect(),
            built
                .node_label_entries()
                .map(|(l, b)| (l.to_string(), b.clone()))
                .collect(),
        );
        assert_eq!(rebuilt.node_count(), built.node_count());
        assert_eq!(rebuilt.label_count(), built.label_count());
        for v in g.node_ids() {
            assert_eq!(rebuilt.successor_bits(v), built.successor_bits(v));
            assert_eq!(rebuilt.predecessor_bits(v), built.predecessor_bits(v));
            assert_eq!(rebuilt.out_edges(v), built.out_edges(v));
        }
        let road = built.label_id("road").unwrap();
        assert_eq!(rebuilt.label_id("road"), Some(road));
        assert_eq!(rebuilt.label_edge_count(road), built.label_edge_count(road));
        assert_eq!(rebuilt.nodes_labelled("city").map(DenseSet::len), Some(4));
        assert_eq!(
            rebuilt
                .predecessor_set(n[2], road)
                .map(|b| b.iter().collect::<Vec<_>>()),
            Some(vec![n[1]])
        );
    }

    #[test]
    fn out_edges_cover_every_edge_once() {
        let (g, _) = graph();
        let ix = GraphIndex::build(&g);
        let total: usize = g.node_ids().map(|v| ix.out_edges(v).len()).sum();
        assert_eq!(total, g.edge_count());
        assert_eq!(ix.node_count(), g.node_count());
    }
}
