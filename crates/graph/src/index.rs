//! Label-indexed adjacency for property graphs.
//!
//! RPQ evaluation is a BFS over the product of the graph with the query automaton; the naive
//! loop scans every outgoing edge of a node and string-compares its label against each NFA
//! transition. [`GraphIndex`] interns the edge labels once and lays the adjacency out as, per
//! node, a label-id-sorted successor list — the product BFS then matches transitions by integer
//! id and can enumerate the successors of a node under one label as a contiguous slice.
//!
//! Like `qbe_xml::NodeIndex`, the index is immutable and self-contained, so it can be built
//! once per graph and shared (behind an `Arc`) by every concurrent learning session over that
//! graph.

use crate::model::{GNodeId, PropertyGraph};
use qbe_bitset::DenseSet;
use std::collections::HashMap;

/// Immutable label-interned adjacency index of one [`PropertyGraph`].
#[derive(Debug, Clone)]
pub struct GraphIndex {
    labels: Vec<String>,
    label_ids: HashMap<String, u32>,
    /// `out[node]` = `(label id, target)` pairs, sorted by label id (then target).
    out: Vec<Vec<(u32, GNodeId)>>,
    /// `out_bits[node]` = per distinct outgoing label, the *set* of successors as a dense
    /// bitset over the node universe (sorted by label id). Parallel edges collapse to one bit,
    /// so a product-BFS step enqueues each distinct `(label, target)` once.
    ///
    /// Memory trade-off: one `n/8`-byte bitset per `(node, distinct outgoing label)` pair —
    /// negligible for the geographical graphs the paper's experiments use, O(n²/8) per label on
    /// large dense graphs. If this index ever fronts such graphs, the sorted `out` slices can
    /// serve the same dedup by skipping consecutive duplicate targets.
    out_bits: Vec<Vec<(u32, DenseSet<GNodeId>)>>,
}

impl GraphIndex {
    /// Build the index in one pass over the edges.
    pub fn build(graph: &PropertyGraph) -> GraphIndex {
        let mut labels: Vec<String> = graph.edge_alphabet();
        labels.sort();
        let label_ids: HashMap<String, u32> = labels
            .iter()
            .enumerate()
            .map(|(ix, l)| (l.clone(), ix as u32))
            .collect();
        let mut out: Vec<Vec<(u32, GNodeId)>> = vec![Vec::new(); graph.node_count()];
        for edge in graph.edge_ids() {
            let lid = label_ids[graph.edge_label(edge)];
            out[graph.source(edge).0 as usize].push((lid, graph.target(edge)));
        }
        for adj in &mut out {
            adj.sort_unstable();
        }
        let n = graph.node_count();
        let out_bits = out
            .iter()
            .map(|adj| {
                let mut per_label: Vec<(u32, DenseSet<GNodeId>)> = Vec::new();
                for &(lid, target) in adj {
                    match per_label.last_mut() {
                        Some((last, bits)) if *last == lid => {
                            bits.insert(target);
                        }
                        _ => per_label.push((lid, DenseSet::from_ids(n, [target]))),
                    }
                }
                per_label
            })
            .collect();
        GraphIndex {
            labels,
            label_ids,
            out,
            out_bits,
        }
    }

    /// Number of indexed nodes.
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Number of distinct edge labels.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// The interned id of a label (`None` when no edge carries it).
    pub fn label_id(&self, label: &str) -> Option<u32> {
        self.label_ids.get(label).copied()
    }

    /// The label behind an interned id.
    pub fn label(&self, id: u32) -> &str {
        &self.labels[id as usize]
    }

    /// All `(label id, target)` successor pairs of a node, sorted by label id.
    pub fn out_edges(&self, node: GNodeId) -> &[(u32, GNodeId)] {
        &self.out[node.0 as usize]
    }

    /// Successors of `node` under edges labelled `label_id`, as a contiguous slice.
    pub fn successors(&self, node: GNodeId, label_id: u32) -> &[(u32, GNodeId)] {
        let adj = &self.out[node.0 as usize];
        let lo = adj.partition_point(|&(l, _)| l < label_id);
        let hi = adj.partition_point(|&(l, _)| l <= label_id);
        &adj[lo..hi]
    }

    /// Per distinct outgoing label of `node`, the successor *set* as a dense bitset (sorted by
    /// label id, parallel edges collapsed). The product BFS walks this instead of the raw edge
    /// list, so it transitions once per distinct label and enqueues each target once.
    pub fn successor_bits(&self, node: GNodeId) -> &[(u32, DenseSet<GNodeId>)] {
        &self.out_bits[node.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> (PropertyGraph, Vec<GNodeId>) {
        let mut g = PropertyGraph::new();
        let n: Vec<GNodeId> = (0..4).map(|_| g.add_node("city")).collect();
        g.add_edge(n[0], n[1], "road");
        g.add_edge(n[0], n[2], "train");
        g.add_edge(n[0], n[3], "road");
        g.add_edge(n[1], n[2], "road");
        (g, n)
    }

    #[test]
    fn labels_are_interned_sorted() {
        let (g, _) = graph();
        let ix = GraphIndex::build(&g);
        assert_eq!(ix.label_count(), 2);
        assert_eq!(ix.label(ix.label_id("road").unwrap()), "road");
        assert_eq!(ix.label(ix.label_id("train").unwrap()), "train");
        assert!(ix.label_id("ferry").is_none());
    }

    #[test]
    fn successors_enumerate_per_label() {
        let (g, n) = graph();
        let ix = GraphIndex::build(&g);
        let road = ix.label_id("road").unwrap();
        let train = ix.label_id("train").unwrap();
        let road_targets: Vec<GNodeId> =
            ix.successors(n[0], road).iter().map(|&(_, t)| t).collect();
        assert_eq!(road_targets, vec![n[1], n[3]]);
        let train_targets: Vec<GNodeId> =
            ix.successors(n[0], train).iter().map(|&(_, t)| t).collect();
        assert_eq!(train_targets, vec![n[2]]);
        assert!(ix.successors(n[2], road).is_empty());
    }

    #[test]
    fn successor_bitsets_agree_with_edge_slices_and_collapse_parallel_edges() {
        let (mut g, n) = graph();
        // A parallel road edge: the slice gains an entry, the bitset does not.
        g.add_edge(n[0], n[1], "road");
        let ix = GraphIndex::build(&g);
        let road = ix.label_id("road").unwrap();
        assert_eq!(ix.successors(n[0], road).len(), 3);
        let (lid, bits) = &ix.successor_bits(n[0])[0];
        assert_eq!(*lid, road);
        assert_eq!(bits.iter().collect::<Vec<_>>(), vec![n[1], n[3]]);
        assert!(ix.successor_bits(n[2]).iter().all(|&(l, _)| l != road));
        // The per-node listing covers every distinct (label, target) pair, sorted by label.
        for v in g.node_ids() {
            let listed = ix.successor_bits(v);
            assert!(listed.windows(2).all(|w| w[0].0 < w[1].0));
            for &(lid, ref bits) in listed {
                let slice: std::collections::BTreeSet<GNodeId> =
                    ix.successors(v, lid).iter().map(|&(_, t)| t).collect();
                assert_eq!(
                    bits.iter().collect::<std::collections::BTreeSet<_>>(),
                    slice
                );
            }
        }
    }

    #[test]
    fn out_edges_cover_every_edge_once() {
        let (g, _) = graph();
        let ix = GraphIndex::build(&g);
        let total: usize = g.node_ids().map(|v| ix.out_edges(v).len()).sum();
        assert_eq!(total, g.edge_count());
        assert_eq!(ix.node_count(), g.node_count());
    }
}
