//! Interactive learning of graph queries by *pair-membership* questions — the richer query
//! classes (plain RPQs, two-way RPQs with inverse labels, conjunctions of path atoms) the
//! algebra layer unlocks.
//!
//! A [`QuerySession`] ranges over the *typed road view* of a geographical graph (see
//! [`crate::lower::typed_road_view`]): edge labels are road types, kept in one direction only
//! so that `ℓ` and `ℓ⁻` differ. The hypothesis space is a finite pool of candidate queries
//! enumerated per [`QueryClass`] from the graph's alphabet (atoms, concatenations,
//! disjunctions, `+`-repetitions; the conjunctive class adds two-atom intersections); each
//! candidate denotes its *answer set* — the node pairs it selects. Questions are single pairs
//! `(source, target)`: "should the query you have in mind select this pair?". Each answer
//! bisects the version space exactly as path labels do in [`crate::interactive`].
//!
//! Every candidate lowers to the hash-consed IR and evaluates through **one shared
//! [`EvalCache`]**: structurally equal subqueries across the whole pool are evaluated once
//! (cross-candidate common-subexpression elimination). The differential suite pins the pooled
//! answer sets against per-candidate evaluation with fresh caches, and `exp_algebra` measures
//! the speed-up.

use crate::index::GraphIndex;
use crate::model::{GNodeId, PropertyGraph};
use qbe_algebra::{eval_conj, eval_expr, ConjQuery, EvalCache, ExprId, PathAtom, QueryStore, Term};
use qbe_bitset::DenseSet;
use qbe_strategy::{pick_first_max_by, Candidate, PoolView, SessionConfig, Strategy};
use std::borrow::Borrow;
use std::collections::{BTreeMap, BTreeSet};

/// The query class a session learns — how expressive the candidate pool is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryClass {
    /// Regular path queries over forward edge labels.
    Rpq,
    /// Two-way RPQs: the alphabet gains an inverse letter `ℓ⁻` per edge label.
    TwoRpq,
    /// Conjunctive RPQs: two-way path candidates plus two-atom intersections
    /// `π_{x,y}(x —e₁→ y ∧ x —e₂→ y)`.
    Crpq,
}

impl QueryClass {
    /// Every class, in increasing expressiveness.
    pub const ALL: [QueryClass; 3] = [QueryClass::Rpq, QueryClass::TwoRpq, QueryClass::Crpq];

    /// The wire name used by the qbe-server protocol (`class=` option).
    pub fn wire_name(self) -> &'static str {
        match self {
            QueryClass::Rpq => "rpq",
            QueryClass::TwoRpq => "2rpq",
            QueryClass::Crpq => "crpq",
        }
    }

    /// Parse a wire name (case-insensitive).
    pub fn parse(name: &str) -> Option<QueryClass> {
        match name.to_ascii_lowercase().as_str() {
            "rpq" => Some(QueryClass::Rpq),
            "2rpq" => Some(QueryClass::TwoRpq),
            "crpq" => Some(QueryClass::Crpq),
            _ => None,
        }
    }
}

/// One candidate query of the hypothesis pool, lowered to the algebra IR.
#[derive(Debug, Clone)]
pub enum CandidateQuery {
    /// A path query: selects the pairs its expression relates.
    Path(ExprId),
    /// A conjunction projecting two variables: selects its answer tuples as pairs.
    Conj(ConjQuery),
}

impl CandidateQuery {
    /// Render the candidate in the store's concrete syntax.
    pub fn render(&self, store: &QueryStore) -> String {
        match self {
            CandidateQuery::Path(e) => store.render(*e),
            CandidateQuery::Conj(q) => q.render(store),
        }
    }

    /// Structural size (IR nodes; conjunctions add one per extra atom).
    pub fn size(&self, store: &QueryStore) -> usize {
        match self {
            CandidateQuery::Path(e) => store.size(*e),
            CandidateQuery::Conj(q) => q
                .atoms
                .iter()
                .map(|a| store.size(a.expr))
                .sum::<usize>()
                .saturating_add(q.atoms.len() - 1),
        }
    }
}

/// Enumerate the candidate pool of a query class over an edge alphabet.
///
/// Atoms are the labels (plus their inverses for the two-way classes); the pool closes them
/// under one level of `concat(a, b)`, `alt(a, b)` and `plus(a)`. The conjunctive class adds
/// `π_{x,y}(x —a→ y ∧ x —b→ y)` for every unordered atom pair. Smart-constructor rewrites
/// (alt dedup and sorting, flattening) already canonicalise the pool at intern time.
pub fn enumerate_candidates(
    store: &mut QueryStore,
    class: QueryClass,
    alphabet: &[String],
) -> Vec<CandidateQuery> {
    let mut atoms: Vec<ExprId> = alphabet.iter().map(|l| store.label(l)).collect();
    if matches!(class, QueryClass::TwoRpq | QueryClass::Crpq) {
        let inverses: Vec<ExprId> = alphabet.iter().map(|l| store.inv_label(l)).collect();
        atoms.extend(inverses);
    }
    let mut pool = Vec::new();
    for &a in &atoms {
        pool.push(CandidateQuery::Path(a));
        let plus = store.plus(a);
        pool.push(CandidateQuery::Path(plus));
    }
    for &a in &atoms {
        for &b in &atoms {
            let concat = store.concat([a, b]);
            pool.push(CandidateQuery::Path(concat));
        }
    }
    for (i, &a) in atoms.iter().enumerate() {
        for &b in &atoms[i + 1..] {
            let alt = store.alt([a, b]);
            pool.push(CandidateQuery::Path(alt));
        }
    }
    if class == QueryClass::Crpq {
        let x = store.sym("x");
        let y = store.sym("y");
        for (i, &a) in atoms.iter().enumerate() {
            for &b in &atoms[i + 1..] {
                pool.push(CandidateQuery::Conj(ConjQuery::new(
                    vec![
                        PathAtom {
                            subject: Term::Var(x),
                            expr: a,
                            object: Term::Var(y),
                        },
                        PathAtom {
                            subject: Term::Var(x),
                            expr: b,
                            object: Term::Var(y),
                        },
                    ],
                    vec![x, y],
                )));
            }
        }
    }
    pool
}

/// Evaluate every candidate against the index, returning one answer set (as source/target
/// pairs) per candidate. All candidates share the caller's [`EvalCache`] — pass a fresh cache
/// per candidate instead to measure what the cross-candidate sharing saves.
pub fn evaluate_candidates(
    store: &QueryStore,
    index: &GraphIndex,
    cache: &mut EvalCache<GNodeId>,
    pool: &[CandidateQuery],
) -> Vec<BTreeSet<(usize, usize)>> {
    pool.iter()
        .map(|cand| match cand {
            CandidateQuery::Path(e) => eval_expr(store, index, cache, *e).pairs(),
            CandidateQuery::Conj(q) => eval_conj(store, index, cache, q, None, None)
                .into_iter()
                .map(|t| (t[0], t[1]))
                .collect(),
        })
        .collect()
}

/// Oracle interface: labels single `(source, target)` pairs.
pub trait PairOracle {
    /// Whether the goal query selects the pair.
    fn label(&mut self, graph: &PropertyGraph, source: GNodeId, target: GNodeId) -> bool;
}

/// Oracle driven by a hidden goal answer set.
#[derive(Debug, Clone)]
pub struct GoalPairsOracle {
    goal: BTreeSet<(GNodeId, GNodeId)>,
    questions: usize,
}

impl GoalPairsOracle {
    /// Create the oracle from the goal query's answer set.
    pub fn new(goal: BTreeSet<(GNodeId, GNodeId)>) -> GoalPairsOracle {
        GoalPairsOracle { goal, questions: 0 }
    }

    /// Number of questions answered.
    pub fn questions_asked(&self) -> usize {
        self.questions
    }
}

impl PairOracle for GoalPairsOracle {
    fn label(&mut self, _graph: &PropertyGraph, source: GNodeId, target: GNodeId) -> bool {
        self.questions += 1;
        self.goal.contains(&(source, target))
    }
}

/// Cross-candidate evaluation statistics of a session's shared cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CseStats {
    /// Subexpression evaluations answered from the shared cache.
    pub hits: usize,
    /// Subexpression evaluations actually performed.
    pub misses: usize,
}

/// Result of an interactive query-learning session.
#[derive(Debug, Clone)]
pub struct QuerySessionOutcome {
    /// The learned query, rendered (the most specific candidate consistent with every label).
    pub learned: String,
    /// The learned query's answer set.
    pub learned_pairs: BTreeSet<(GNodeId, GNodeId)>,
    /// Pairs the user was asked to label.
    pub interactions: usize,
    /// Question pairs whose label became inferable without asking.
    pub inferred: usize,
    /// Candidates still consistent with every label when the session stopped.
    pub version_space: usize,
}

/// One deduplicated hypothesis: a candidate query with its answer set over the question
/// universe.
#[derive(Debug, Clone)]
struct Hypothesis {
    query: CandidateQuery,
    /// Answer set as a bitset over the question-pair universe.
    accepts: DenseSet<usize>,
    /// The raw answer pairs, for reporting the learned query.
    pairs: BTreeSet<(GNodeId, GNodeId)>,
}

/// Interactive session learning one query of a [`QueryClass`] over a typed graph.
///
/// Generic over graph ownership exactly like [`crate::interactive::PathSession`]: borrow for
/// in-process callers, `Arc` for the server registry.
pub struct QuerySession<G: Borrow<PropertyGraph>> {
    graph: G,
    store: QueryStore,
    hypotheses: Vec<Hypothesis>,
    alive: DenseSet<usize>,
    /// The question universe: every pair some candidate selects, in ascending order.
    questions: Vec<(GNodeId, GNodeId)>,
    /// For each question, how many *alive* hypotheses select it.
    accept_counts: Vec<usize>,
    /// Questions neither asked nor determined (maintained like `PathSession::pool`).
    pool: DenseSet<usize>,
    labelled: Vec<(usize, bool)>,
    strategy: Box<dyn Strategy>,
    budget: Option<usize>,
    stats: CseStats,
}

/// The default strategy: version-space halving over pair questions (the same comparator as
/// the path model's flagship policy).
#[derive(Debug, Clone, Copy, Default)]
struct PairHalving;

impl Strategy for PairHalving {
    fn name(&self) -> &str {
        "halving"
    }

    fn pick(&mut self, pool: &PoolView<'_>) -> Option<usize> {
        pick_first_max_by(pool.candidates, |c| c.informativeness)
    }
}

impl<G: Borrow<PropertyGraph>> QuerySession<G> {
    /// Start a session over a typed graph (see [`crate::lower::typed_road_view`]) with the
    /// default halving strategy.
    pub fn new(graph: G, class: QueryClass, seed: u64) -> QuerySession<G> {
        QuerySession::with_config(graph, class, SessionConfig::new().seed(seed))
    }

    /// Start a session from a [`SessionConfig`] (strategy, question budget, seed).
    pub fn with_config(graph: G, class: QueryClass, config: SessionConfig) -> QuerySession<G> {
        let resolved = config.resolve(|_| Box::new(PairHalving));
        let g = graph.borrow();
        let index = GraphIndex::build(g);
        let mut store = QueryStore::new();
        let alphabet = g.edge_alphabet();
        let pool = enumerate_candidates(&mut store, class, &alphabet);
        let mut cache = EvalCache::new();
        let answers = evaluate_candidates(&store, &index, &mut cache, &pool);
        let stats = CseStats {
            hits: cache.hits(),
            misses: cache.misses(),
        };

        // Semantic deduplication: candidates with the same answer set are indistinguishable
        // by any question — keep the structurally smallest (first on ties; enumeration order
        // is deterministic).
        let mut by_answer: BTreeMap<&BTreeSet<(usize, usize)>, usize> = BTreeMap::new();
        for (ix, answer) in answers.iter().enumerate() {
            let entry = by_answer.entry(answer).or_insert(ix);
            if pool[ix].size(&store) < pool[*entry].size(&store) {
                *entry = ix;
            }
        }
        let mut kept: Vec<usize> = by_answer.into_values().collect();
        kept.sort_unstable();

        // The question universe: every pair distinguished by some candidate.
        let universe: BTreeSet<(usize, usize)> = kept
            .iter()
            .flat_map(|&ix| answers[ix].iter().copied())
            .collect();
        let questions: Vec<(GNodeId, GNodeId)> = universe
            .iter()
            .map(|&(s, t)| (GNodeId(s as u32), GNodeId(t as u32)))
            .collect();
        let q_index: BTreeMap<(usize, usize), usize> = universe
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, i))
            .collect();

        let mut hypotheses = Vec::with_capacity(kept.len());
        let mut accept_counts = vec![0usize; questions.len()];
        for &ix in &kept {
            let mut accepts = DenseSet::new(questions.len());
            for pair in &answers[ix] {
                let q = q_index[pair];
                accepts.insert(q);
                accept_counts[q] += 1;
            }
            hypotheses.push(Hypothesis {
                query: pool[ix].clone(),
                accepts,
                pairs: answers[ix]
                    .iter()
                    .map(|&(s, t)| (GNodeId(s as u32), GNodeId(t as u32)))
                    .collect(),
            });
        }
        let alive = DenseSet::full(hypotheses.len());
        let pool = DenseSet::full(questions.len());
        QuerySession {
            graph,
            store,
            hypotheses,
            alive,
            questions,
            accept_counts,
            pool,
            labelled: Vec::new(),
            strategy: resolved.strategy,
            budget: resolved.budget,
            stats,
        }
    }

    /// The graph the session ranges over.
    pub fn graph(&self) -> &PropertyGraph {
        self.graph.borrow()
    }

    /// The name of the session's question-selection strategy.
    pub fn strategy_name(&self) -> &str {
        self.strategy.name()
    }

    /// Shared-cache statistics of the candidate-pool evaluation.
    pub fn cse_stats(&self) -> CseStats {
        self.stats
    }

    /// Number of (semantically distinct) candidate queries.
    pub fn candidate_count(&self) -> usize {
        self.hypotheses.len()
    }

    /// Number of candidates still consistent with every label.
    pub fn version_space_size(&self) -> usize {
        self.alive.len()
    }

    /// Number of question pairs in the universe.
    pub fn question_count(&self) -> usize {
        self.questions.len()
    }

    /// The pair behind question `ix`.
    pub fn question_pair(&self, ix: usize) -> (GNodeId, GNodeId) {
        self.questions[ix]
    }

    /// Number of pairs the user has labelled so far.
    pub fn labelled_count(&self) -> usize {
        self.labelled.len()
    }

    /// The most specific surviving candidate: smallest answer set, then smallest query.
    /// `None` when the version space is empty (contradictory labels).
    fn most_specific(&self) -> Option<&Hypothesis> {
        self.alive
            .iter()
            .map(|ix| &self.hypotheses[ix])
            .min_by_key(|h| (h.pairs.len(), h.query.size(&self.store)))
    }

    /// The learned query rendered, with its answer set.
    pub fn learned(&self) -> (String, BTreeSet<(GNodeId, GNodeId)>) {
        match self.most_specific() {
            Some(h) => (h.query.render(&self.store), h.pairs.clone()),
            None => ("∅ (inconsistent labels)".to_string(), BTreeSet::new()),
        }
    }

    /// Record a user label and prune the version space.
    pub fn record(&mut self, question_ix: usize, positive: bool) {
        self.labelled.push((question_ix, positive));
        self.pool.remove(question_ix);
        let dead: Vec<usize> = self
            .alive
            .iter()
            .filter(|&ix| self.hypotheses[ix].accepts.contains(question_ix) != positive)
            .collect();
        for ix in dead {
            self.alive.remove(ix);
            for q in self.hypotheses[ix].accepts.iter() {
                self.accept_counts[q] -= 1;
            }
        }
    }

    /// Propose the next informative pair to ask about, or `None` when every pair's label is
    /// determined by the version space (or the budget is spent).
    pub fn propose(&mut self) -> Option<usize> {
        if self.budget.is_some_and(|cap| self.labelled.len() >= cap) {
            return None;
        }
        let total = self.alive.len();
        let mut informative: Vec<usize> = Vec::new();
        let mut determined: Vec<usize> = Vec::new();
        for q in self.pool.iter() {
            let accepted = self.accept_counts[q];
            if accepted == 0 || accepted == total {
                determined.push(q);
            } else {
                informative.push(q);
            }
        }
        for q in determined {
            self.pool.remove(q);
        }
        let half = total / 2;
        let candidates: Vec<Candidate> = informative
            .iter()
            .map(|&q| {
                let accepted = self.accept_counts[q];
                Candidate {
                    informativeness: -(accepted.abs_diff(half) as f64),
                    cost: q as f64,
                    coverage: accepted.min(total - accepted) as f64,
                    specificity: 0.0,
                    prior: 0.0,
                }
            })
            .collect();
        let view = PoolView {
            asked: self.labelled.len(),
            candidates: &candidates,
        };
        let pick = self.strategy.pick(&view)?;
        informative.get(pick).copied()
    }

    /// Run the loop until no informative pair remains.
    pub fn run(mut self, oracle: &mut dyn PairOracle) -> QuerySessionOutcome {
        while let Some(q) = self.propose() {
            let (s, t) = self.questions[q];
            let label = oracle.label(self.graph.borrow(), s, t);
            self.record(q, label);
        }
        let (learned, learned_pairs) = self.learned();
        let interactions = self.labelled.len();
        QuerySessionOutcome {
            learned,
            learned_pairs,
            interactions,
            inferred: self.questions.len().saturating_sub(interactions),
            version_space: self.alive.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::{generate_geo_graph, GeoConfig};
    use crate::lower::typed_road_view;

    fn typed_graph() -> PropertyGraph {
        let g = generate_geo_graph(&GeoConfig {
            cities: 12,
            connectivity: 3,
            ..Default::default()
        });
        typed_road_view(&g)
    }

    /// Evaluate one candidate of the pool as the hidden goal's answer set.
    fn goal_pairs(
        graph: &PropertyGraph,
        class: QueryClass,
        pick: usize,
    ) -> BTreeSet<(GNodeId, GNodeId)> {
        let index = GraphIndex::build(graph);
        let mut store = QueryStore::new();
        let pool = enumerate_candidates(&mut store, class, &graph.edge_alphabet());
        let mut cache = EvalCache::new();
        let answers = evaluate_candidates(&store, &index, &mut cache, &pool);
        answers[pick % answers.len()]
            .iter()
            .map(|&(s, t)| (GNodeId(s as u32), GNodeId(t as u32)))
            .collect()
    }

    #[test]
    fn sessions_converge_to_the_goal_for_every_class() {
        let typed = typed_graph();
        for class in QueryClass::ALL {
            for pick in [1, 7, 20] {
                let goal = goal_pairs(&typed, class, pick);
                let mut oracle = GoalPairsOracle::new(goal.clone());
                let outcome = QuerySession::new(&typed, class, 3).run(&mut oracle);
                assert_eq!(
                    outcome.learned_pairs,
                    goal,
                    "{} candidate {pick} learned {}",
                    class.wire_name(),
                    outcome.learned
                );
                assert!(outcome.version_space >= 1);
            }
        }
    }

    #[test]
    fn two_way_pool_distinguishes_inverse_labels() {
        let typed = typed_graph();
        let index = GraphIndex::build(&typed);
        let mut store = QueryStore::new();
        let alphabet = typed.edge_alphabet();
        let fwd = store.label(&alphabet[0]);
        let inv = store.inv_label(&alphabet[0]);
        let mut cache = EvalCache::new();
        let f = eval_expr(&store, &index, &mut cache, fwd).pairs();
        let i = eval_expr(&store, &index, &mut cache, inv).pairs();
        assert_ne!(f, i, "typed view must make ℓ and ℓ⁻ differ");
        let transposed: BTreeSet<(usize, usize)> = f.iter().map(|&(s, t)| (t, s)).collect();
        assert_eq!(i, transposed);
    }

    #[test]
    fn pooled_cache_shares_work_across_candidates() {
        let typed = typed_graph();
        let session = QuerySession::new(&typed, QueryClass::Crpq, 0);
        let stats = session.cse_stats();
        assert!(
            stats.hits > stats.misses,
            "pool of composites over few atoms must mostly hit: {stats:?}"
        );
        // The pooled answer sets match per-candidate evaluation with fresh caches.
        let index = GraphIndex::build(&typed);
        let mut store = QueryStore::new();
        let pool = enumerate_candidates(&mut store, QueryClass::Crpq, &typed.edge_alphabet());
        let mut shared = EvalCache::new();
        let pooled = evaluate_candidates(&store, &index, &mut shared, &pool);
        let mut fresh_misses = 0;
        for (ix, cand) in pool.iter().enumerate() {
            let mut fresh = EvalCache::new();
            let alone = evaluate_candidates(&store, &index, &mut fresh, std::slice::from_ref(cand));
            assert_eq!(
                alone[0], pooled[ix],
                "candidate {ix} diverges under sharing"
            );
            fresh_misses += fresh.misses();
        }
        assert!(
            shared.misses() < fresh_misses,
            "sharing must evaluate fewer subexpressions ({} vs {fresh_misses})",
            shared.misses()
        );
    }

    #[test]
    fn budget_caps_interactions() {
        let typed = typed_graph();
        let mut oracle = GoalPairsOracle::new(goal_pairs(&typed, QueryClass::Rpq, 1));
        let outcome =
            QuerySession::with_config(&typed, QueryClass::Rpq, SessionConfig::new().budget(2))
                .run(&mut oracle);
        assert!(outcome.interactions <= 2);
    }

    #[test]
    fn contradictory_labels_empty_the_version_space() {
        let typed = typed_graph();
        let mut session = QuerySession::new(&typed, QueryClass::Rpq, 0);
        let q = session.propose().expect("informative question");
        session.record(q, true);
        // Claim the opposite for the same pair via a fresh question index is impossible —
        // instead kill everything by labelling every remaining question negative AND the
        // first positive pair's supersets inconsistently: simplest check is that record
        // keeps counters consistent as the space shrinks to (at least) one candidate.
        while let Some(next) = session.propose() {
            session.record(next, false);
        }
        let (learned, _) = session.learned();
        assert!(!learned.is_empty());
        assert!(session.version_space_size() >= 1 || learned.contains("inconsistent"));
    }
}
