//! Interactive path learning — the paper's geographical use case.
//!
//! "First, the user has to select two vertices from the graph [...] The user may also want to
//! impose certain restrictions on the paths, such as the total distance, the type of road, or an
//! intermediate city on the path. Our algorithms compute what paths the user should be asked to
//! label (as positive or negative example) in order to gather as many information as possible
//! with few interactions. Additionally, the learning framework must be able to use query
//! workload techniques to take advantage of the previously inferred paths."
//!
//! The hypothesis space is a product of three constraint families over the candidate paths
//! between the chosen endpoints:
//!
//! * **road type** — either unconstrained or "all edges have type T" for some road type;
//! * **maximum total distance** — either unbounded or one of the candidate paths' distances;
//! * **via city** — either unconstrained or "the path visits city C".
//!
//! The version space is maintained explicitly. To keep sessions cheap even when the endpoints
//! admit thousands of candidate itineraries, the session precomputes one [`PathFeatures`] record
//! per candidate (total distance, visited cities, the road types shared by every edge) and one
//! acceptance bitset per hypothesis; pruning the version space then only touches the removed
//! rows, and the "is this path still informative?" test is a counter comparison rather than a
//! rescan of the whole hypothesis space. Proposal strategies include a workload prior that asks
//! first about paths similar to queries learned for previous users.

use crate::model::{GNodeId, PropertyGraph};
use crate::rpq::{simple_paths, Path};
use qbe_algebra::{ExprId, QueryStore, Sym, WordMatcher};
use qbe_bitset::DenseSet;
use qbe_strategy::{
    pick_first_max_by, Candidate, CheapestFirst, PoolView, Random, SessionConfig, Strategy,
};
use std::borrow::Borrow;
use std::collections::{BTreeSet, HashMap};

/// A path-selection hypothesis: a conjunction of optional constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct PathConstraint {
    /// All edges must carry this `type` property value.
    pub road_type: Option<String>,
    /// Total `distance` must not exceed this bound.
    pub max_distance: Option<f64>,
    /// The path must pass through this city.
    pub via: Option<GNodeId>,
}

impl PathConstraint {
    /// The unconstrained hypothesis (accepts every path).
    pub fn any() -> PathConstraint {
        PathConstraint {
            road_type: None,
            max_distance: None,
            via: None,
        }
    }

    /// Whether a path satisfies the constraint.
    pub fn accepts(&self, graph: &PropertyGraph, path: &Path) -> bool {
        self.accepts_features(&PathFeatures::of(graph, path))
    }

    /// Whether a path with the given precomputed features satisfies the constraint.
    pub fn accepts_features(&self, features: &PathFeatures) -> bool {
        if let Some(t) = &self.road_type {
            if !features.uniform_types.contains(t) {
                return false;
            }
        }
        if let Some(d) = self.max_distance {
            if features.distance > d + 1e-9 {
                return false;
            }
        }
        if let Some(via) = self.via {
            if !features.visited.contains(via) {
                return false;
            }
        }
        true
    }

    /// Lower the constraint's *regular* part onto the algebra IR: "all edges are `t` roads"
    /// is the path query `t⁺` over the typed alphabet, the unconstrained hypothesis is `_*`.
    /// `None` when the constraint carries a distance bound or a via city — those live outside
    /// the regular fragment and stay with the bitset feature tests.
    pub fn lower(&self, store: &mut QueryStore) -> Option<ExprId> {
        if self.max_distance.is_some() || self.via.is_some() {
            return None;
        }
        Some(match &self.road_type {
            Some(t) => {
                let l = store.label(t);
                store.plus(l)
            }
            None => {
                let any = store.any_label();
                store.star(any)
            }
        })
    }

    /// Human-readable description.
    pub fn describe(&self, graph: &PropertyGraph) -> String {
        let mut parts = Vec::new();
        if let Some(t) = &self.road_type {
            parts.push(format!("all edges are {t} roads"));
        }
        if let Some(d) = self.max_distance {
            parts.push(format!("total distance ≤ {d:.0}"));
        }
        if let Some(v) = self.via {
            parts.push(format!("passes through {}", graph.display_name(v)));
        }
        if parts.is_empty() {
            "any path".to_string()
        } else {
            parts.join(" and ")
        }
    }
}

/// Precomputed facts about one candidate path, sufficient to evaluate any [`PathConstraint`]
/// in constant time (up to a bit test).
#[derive(Debug, Clone)]
pub struct PathFeatures {
    /// Total `distance` over the path's edges.
    pub distance: f64,
    /// Every node the path visits (including both endpoints), as a dense bitset over the
    /// graph's node universe — the via test is one bit probe.
    pub visited: DenseSet<GNodeId>,
    /// The road types `t` such that *every* edge of the path has `type = t`.
    pub uniform_types: BTreeSet<String>,
}

impl PathFeatures {
    /// Compute the features of a path.
    pub fn of(graph: &PropertyGraph, path: &Path) -> PathFeatures {
        let distance = path.total_distance(graph);
        let mut visited = DenseSet::new(graph.node_count());
        for &e in &path.edges {
            visited.insert(graph.source(e));
            visited.insert(graph.target(e));
        }
        let mut uniform_types = BTreeSet::new();
        if let Some(&first) = path.edges.first() {
            if let Some(t) = graph.edge_property(first, "type").and_then(|p| p.as_text()) {
                if path
                    .edges
                    .iter()
                    .all(|&e| graph.edge_property(e, "type").and_then(|p| p.as_text()) == Some(t))
                {
                    uniform_types.insert(t.to_string());
                }
            }
        }
        PathFeatures {
            distance,
            visited,
            uniform_types,
        }
    }
}

/// The paper-era path-selection policies, now thin presets over the model-agnostic
/// [`qbe_strategy::Strategy`] API (see [`PathStrategy::strategy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathStrategy {
    /// Random informative path ([`qbe_strategy::Random`]).
    Random,
    /// Shortest informative path first — cheap for the user to inspect
    /// ([`qbe_strategy::CheapestFirst`] over the distance cost channel).
    ShortestFirst,
    /// Version-space halving: the path accepted by about half of the surviving hypotheses.
    Halving,
    /// Workload prior: prefer paths satisfying constraints learned for previous users.
    WorkloadPrior,
}

impl PathStrategy {
    /// The [`Strategy`] implementing this preset (`seed` feeds [`PathStrategy::Random`]).
    pub fn strategy(self, seed: u64) -> Box<dyn Strategy> {
        match self {
            PathStrategy::Random => Box::new(Random::new(seed)),
            PathStrategy::ShortestFirst => Box::new(CheapestFirst),
            PathStrategy::Halving => Box::new(Halving),
            PathStrategy::WorkloadPrior => Box::new(WorkloadPrior),
        }
    }
}

/// The session's flagship policy as a [`Strategy`]: the path whose acceptance count is closest
/// to half the surviving hypotheses (the informativeness channel), earliest such path first —
/// the exact comparator the paper-era inlined loop used, so the regression pins stay
/// byte-identical.
#[derive(Debug, Clone, Copy, Default)]
struct Halving;

impl Strategy for Halving {
    fn name(&self) -> &str {
        "halving"
    }

    fn pick(&mut self, pool: &PoolView<'_>) -> Option<usize> {
        pick_first_max_by(pool.candidates, |c| c.informativeness)
    }
}

/// The workload prior as a [`Strategy`]: among the paths most similar to previously learned
/// constraints (the prior channel), fall back to version-space halving — "ask with priority
/// the next user to label a path having the same property", never costing more questions than
/// plain halving when the workload does not discriminate.
#[derive(Debug, Clone, Copy, Default)]
struct WorkloadPrior;

impl Strategy for WorkloadPrior {
    fn name(&self) -> &str {
        "workload-prior"
    }

    fn pick(&mut self, pool: &PoolView<'_>) -> Option<usize> {
        pick_first_max_by(pool.candidates, |c| (c.prior, c.informativeness))
    }
}

/// Oracle interface: labels whole paths.
pub trait PathOracle {
    /// Whether the user accepts the proposed path.
    fn label(&mut self, graph: &PropertyGraph, path: &Path) -> bool;
}

/// Oracle driven by a hidden goal constraint.
#[derive(Debug, Clone)]
pub struct GoalPathOracle {
    goal: PathConstraint,
    questions: usize,
}

impl GoalPathOracle {
    /// Create the oracle.
    pub fn new(goal: PathConstraint) -> GoalPathOracle {
        GoalPathOracle { goal, questions: 0 }
    }

    /// Number of questions answered.
    pub fn questions_asked(&self) -> usize {
        self.questions
    }
}

impl PathOracle for GoalPathOracle {
    fn label(&mut self, graph: &PropertyGraph, path: &Path) -> bool {
        self.questions += 1;
        self.goal.accepts(graph, path)
    }
}

/// Result of an interactive path-learning session.
#[derive(Debug, Clone)]
pub struct PathSessionOutcome {
    /// Constraints still consistent with every label when the session stopped.
    pub version_space: Vec<PathConstraint>,
    /// One representative learned constraint (the most specific surviving one).
    pub learned: PathConstraint,
    /// Paths the user was asked to label.
    pub interactions: usize,
    /// Candidate paths whose label became inferable without asking.
    pub inferred: usize,
    /// The candidate paths the session reasoned about (at most [`MAX_CANDIDATE_PATHS`], the
    /// shortest ones when the endpoints admit more).
    pub candidates: Vec<Path>,
    /// The paths the learned constraint accepts, ready to be exchanged to another data model.
    pub accepted_paths: Vec<Path>,
}

/// Upper bound on the number of candidate paths a session keeps.
///
/// The paper's premise is that "the number of paths might be considerable" and that the user
/// will only ever be shown a few of them; when the endpoints admit more simple paths than this,
/// the session keeps the shortest ones (by total distance), which are the itineraries a real
/// user would be shown first. This also bounds the hypothesis space, whose distance and
/// via dimensions grow with the candidate set.
pub const MAX_CANDIDATE_PATHS: usize = 400;

/// One hypothesis together with its acceptance set over the candidate paths.
///
/// Rows of one `(road type, via)` *family* share their base acceptance bitset behind an `Arc`
/// and differ only in the distance cutoff: candidates are distance-sorted, so a distance bound
/// accepts a prefix. A session materialises one bitset per family instead of one per row
/// (families × distance values of them), which is most of its construction cost.
#[derive(Debug, Clone)]
struct HypothesisRow {
    constraint: PathConstraint,
    /// Family-shared acceptance of (road type, via), ignoring the distance bound.
    base: std::sync::Arc<DenseSet<usize>>,
    /// The row accepts candidate `ix` iff `ix < cutoff` and `base` contains it (`cutoff` is the
    /// candidate count for the unbounded row).
    cutoff: usize,
    /// Number of candidate paths the constraint accepts.
    accepted_count: usize,
}

impl HypothesisRow {
    fn accepts_path(&self, ix: usize) -> bool {
        ix < self.cutoff && self.base.contains(ix)
    }
}

/// Interactive session between two endpoints of a graph.
///
/// Generic over how the graph is owned: existing callers pass `&PropertyGraph` (zero-copy
/// borrows), long-lived registries (the `qbe-server` session registry) pass
/// `Arc<PropertyGraph>` so the session is `'static` and can outlive the scope that created it.
pub struct PathSession<G: Borrow<PropertyGraph>> {
    graph: G,
    candidates: Vec<Path>,
    features: Vec<PathFeatures>,
    rows: Vec<HypothesisRow>,
    /// For each candidate path, how many surviving hypotheses accept it.
    accept_counts: Vec<usize>,
    labelled: Vec<(usize, bool)>,
    /// Candidate paths neither labelled nor yet observed determined — the incremental pool
    /// [`Self::propose`] offers the strategy, maintained by set difference (determination under
    /// a shrinking version space is monotone, so removal is permanent).
    pool: DenseSet<usize>,
    /// The pluggable question-selection policy, consulted once per proposal round.
    strategy: Box<dyn Strategy>,
    /// Question cap, if any: once reached, the session completes.
    budget: Option<usize>,
    workload: Vec<PathConstraint>,
}

impl<G: Borrow<PropertyGraph>> PathSession<G> {
    /// Start a session for paths between `from` and `to` (at most `max_edges` edges per path).
    pub fn new(
        graph: G,
        from: GNodeId,
        to: GNodeId,
        max_edges: usize,
        strategy: PathStrategy,
        seed: u64,
    ) -> PathSession<G> {
        PathSession::with_config(
            graph,
            from,
            to,
            max_edges,
            SessionConfig::new()
                .seed(seed)
                .strategy(strategy.strategy(seed)),
        )
    }

    /// Start a session from a [`SessionConfig`] (strategy, question budget, seed) — the
    /// primary constructor; the [`PathStrategy`]-taking one is a preset over it. The default
    /// strategy is [`PathStrategy::Halving`], the paper's flagship policy.
    pub fn with_config(
        graph: G,
        from: GNodeId,
        to: GNodeId,
        max_edges: usize,
        config: SessionConfig,
    ) -> PathSession<G> {
        let resolved = config.resolve(|seed| PathStrategy::Halving.strategy(seed));
        let g = graph.borrow();
        // Candidates are kept sorted by total distance: the distance dimension of the hypothesis
        // space then accepts a *prefix* of the candidate list, which makes building the
        // acceptance bitsets linear in the number of hypotheses rather than quadratic.
        let mut candidates = simple_paths(g, from, to, max_edges);
        candidates.sort_by(|a, b| {
            a.total_distance(g)
                .partial_cmp(&b.total_distance(g))
                .expect("distances are finite")
        });
        candidates.truncate(MAX_CANDIDATE_PATHS);
        let features: Vec<PathFeatures> =
            candidates.iter().map(|p| PathFeatures::of(g, p)).collect();
        let n = candidates.len();

        // Hypothesis dimensions.
        let mut road_types: Vec<Option<String>> = vec![None];
        road_types.extend(crate::geo::ROAD_TYPES.iter().map(|t| Some(t.to_string())));
        let mut distance_values: Vec<f64> = features.iter().map(|f| f.distance).collect();
        distance_values.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        let mut vias: BTreeSet<Option<GNodeId>> = BTreeSet::from([None]);
        for f in &features {
            for node in f.visited.iter() {
                vias.insert(Some(node));
            }
        }

        // How many distance rows of one (road type, via) family accept candidate `ix`: one per
        // distance value covering the candidate's own distance. Computing this once per
        // candidate turns the accept-count accumulation from a per-row-per-bit sweep into a
        // per-family pass over the base bitset plus this lookup.
        let covering_distances: Vec<usize> = features
            .iter()
            .map(|f| {
                distance_values.len() - distance_values.partition_point(|&d| d + 1e-9 < f.distance)
            })
            .collect();

        // The regular part of each road-type hypothesis lowers to the algebra IR (`t⁺`, or
        // `_*` for the unconstrained row) and its acceptance mask over the candidates is
        // computed once per *distinct interned expression* by matching each candidate's
        // edge-type word — a per-session CSE cache: every via family of one road type reuses
        // the same mask, and hash-consing collapses duplicate hypotheses to one computation.
        let mut store = QueryStore::new();
        // Edges without a `type` property get a reserved letter no label test can match,
        // mirroring the legacy `uniform_types` check (which never contains such edges' type).
        let missing_type = store.sym("\u{0}missing-type");
        let words: Vec<Vec<Sym>> = candidates
            .iter()
            .map(|p| {
                p.edges
                    .iter()
                    .map(|&e| {
                        g.edge_property(e, "type")
                            .and_then(|v| v.as_text())
                            .map(|t| store.sym(t))
                            .unwrap_or(missing_type)
                    })
                    .collect()
            })
            .collect();
        let mut mask_cache: HashMap<ExprId, DenseSet<usize>> = HashMap::new();
        let rt_masks: Vec<DenseSet<usize>> = road_types
            .iter()
            .map(|rt| {
                let hypothesis = PathConstraint {
                    road_type: rt.clone(),
                    max_distance: None,
                    via: None,
                };
                let expr = hypothesis
                    .lower(&mut store)
                    .expect("road-type hypotheses are regular");
                mask_cache
                    .entry(expr)
                    .or_insert_with(|| {
                        let matcher = WordMatcher::compile(&store, expr)
                            .expect("road-type expressions are word queries");
                        let mut mask: DenseSet<usize> = DenseSet::new(n);
                        for (ix, word) in words.iter().enumerate() {
                            if matcher.accepts(word) {
                                mask.insert(ix);
                            }
                        }
                        mask
                    })
                    .clone()
            })
            .collect();
        let via_masks: Vec<DenseSet<usize>> = vias
            .iter()
            .map(|via| match via {
                None => DenseSet::full(n),
                Some(v) => {
                    let mut mask: DenseSet<usize> = DenseSet::new(n);
                    for (ix, f) in features.iter().enumerate() {
                        if f.visited.contains(*v) {
                            mask.insert(ix);
                        }
                    }
                    mask
                }
            })
            .collect();

        let mut rows = Vec::new();
        let mut accept_counts = vec![0usize; n];
        for (rt, rt_mask) in road_types.iter().zip(&rt_masks) {
            for (via, via_mask) in vias.iter().zip(&via_masks) {
                // Base acceptance of (rt, via) ignoring the distance bound — shared by every
                // row of the family behind one `Arc`.
                let mut base = rt_mask.clone();
                base.and_with(via_mask);
                // Every row of this family accepts a subset of `base`: the unbounded row all of
                // it, each distance row a prefix of it. Tally the family's contribution to the
                // per-candidate acceptance counters in one pass over `base`, and keep the
                // accepted positions around to size each prefix row by binary search.
                let positions: Vec<usize> = base.iter().collect();
                for &ix in &positions {
                    accept_counts[ix] += 1 + covering_distances[ix];
                }
                let base = std::sync::Arc::new(base);
                rows.push(HypothesisRow {
                    constraint: PathConstraint {
                        road_type: rt.clone(),
                        max_distance: None,
                        via: *via,
                    },
                    base: base.clone(),
                    cutoff: n,
                    accepted_count: positions.len(),
                });
                for &d in &distance_values {
                    // Number of candidates whose distance is ≤ d (they form a prefix).
                    let len = features.partition_point(|f| f.distance <= d + 1e-9);
                    rows.push(HypothesisRow {
                        constraint: PathConstraint {
                            road_type: rt.clone(),
                            max_distance: Some(d),
                            via: *via,
                        },
                        base: base.clone(),
                        cutoff: len,
                        accepted_count: positions.partition_point(|&p| p < len),
                    });
                }
            }
        }
        PathSession {
            graph,
            candidates,
            features,
            rows,
            accept_counts,
            labelled: Vec::new(),
            pool: DenseSet::full(n),
            strategy: resolved.strategy,
            budget: resolved.budget,
            workload: Vec::new(),
        }
    }

    /// The name of the session's question-selection strategy.
    pub fn strategy_name(&self) -> &str {
        self.strategy.name()
    }

    /// Provide constraints learned for previous users (the "query workload").
    pub fn with_workload(mut self, workload: Vec<PathConstraint>) -> PathSession<G> {
        self.workload = workload;
        self
    }

    /// The graph the session ranges over.
    pub fn graph(&self) -> &PropertyGraph {
        self.graph.borrow()
    }

    /// One candidate path by index.
    pub fn path(&self, ix: usize) -> &Path {
        &self.candidates[ix]
    }

    /// The precomputed features of one candidate path.
    pub fn features(&self, ix: usize) -> &PathFeatures {
        &self.features[ix]
    }

    /// Number of paths the user has labelled so far.
    pub fn labelled_count(&self) -> usize {
        self.labelled.len()
    }

    /// The most specific hypothesis still consistent with every label (the constraint
    /// accepting the fewest candidate paths; the unconstrained hypothesis when the version
    /// space is empty).
    pub fn most_specific(&self) -> PathConstraint {
        self.rows
            .iter()
            .min_by_key(|row| row.accepted_count)
            .map(|row| row.constraint.clone())
            .unwrap_or_else(PathConstraint::any)
    }

    /// Number of candidate paths the most specific surviving hypothesis accepts — the answer
    /// set the learned query would return to the user right now.
    pub fn accepted_count(&self) -> usize {
        self.rows
            .iter()
            .map(|row| row.accepted_count)
            .min()
            .unwrap_or(self.candidates.len())
    }

    /// Number of candidate paths.
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// Number of hypotheses still consistent with every label.
    pub fn version_space_size(&self) -> usize {
        self.rows.len()
    }

    /// Paths whose label is not yet determined by the version space.
    pub fn informative_paths(&self) -> Vec<usize> {
        let total = self.rows.len();
        (0..self.candidates.len())
            .filter(|&ix| {
                if self.labelled.iter().any(|(l, _)| *l == ix) {
                    return false;
                }
                let accepted = self.accept_counts[ix];
                accepted != 0 && accepted != total
            })
            .collect()
    }

    /// Record a user label and prune the version space.
    pub fn record(&mut self, path_ix: usize, positive: bool) {
        self.labelled.push((path_ix, positive));
        self.pool.remove(path_ix);
        let mut kept = Vec::with_capacity(self.rows.len());
        // Dropped rows are aggregated per family (rows sharing one base behind an `Arc` are
        // contiguous): a candidate loses one vote per dropped cutoff above it, so the votes of
        // a whole family's dropped rows are forgotten in one two-pointer pass over its base
        // instead of one bit walk per row.
        let mut dropped: Vec<(std::sync::Arc<DenseSet<usize>>, Vec<usize>)> = Vec::new();
        for row in self.rows.drain(..) {
            if row.accepts_path(path_ix) == positive {
                kept.push(row);
            } else {
                match dropped.last_mut() {
                    Some((base, cutoffs)) if std::sync::Arc::ptr_eq(base, &row.base) => {
                        cutoffs.push(row.cutoff)
                    }
                    _ => dropped.push((row.base.clone(), vec![row.cutoff])),
                }
            }
        }
        for (base, mut cutoffs) in dropped {
            cutoffs.sort_unstable();
            let mut below = 0usize;
            for ix in base.iter() {
                while below < cutoffs.len() && cutoffs[below] <= ix {
                    below += 1;
                }
                if below == cutoffs.len() {
                    break; // no dropped row reaches past this candidate
                }
                self.accept_counts[ix] -= cutoffs.len() - below;
            }
        }
        self.rows = kept;
    }

    /// One [`Candidate`] feature row per informative path, aligned with `informative` (which
    /// is in ascending-distance order — the model's paper order):
    ///
    /// * `informativeness` — the version-space-halving score (closer to half the surviving
    ///   hypotheses is better), exactly the paper-era comparator;
    /// * `cost` — total itinerary distance (short paths are cheap for the user to inspect);
    /// * `coverage` — the smaller side of the version-space split: the number of hypotheses
    ///   pruned whichever way the user answers;
    /// * `prior` — how many workload constraints from previous users accept the path.
    fn candidate_features(&self, informative: &[usize]) -> Vec<Candidate> {
        let half = self.rows.len() / 2;
        let total = self.rows.len();
        informative
            .iter()
            .map(|&ix| {
                let accepted = self.accept_counts[ix];
                let prior = self
                    .workload
                    .iter()
                    .filter(|h| h.accepts_features(&self.features[ix]))
                    .count();
                Candidate {
                    informativeness: -(accepted.abs_diff(half) as f64),
                    cost: self.features[ix].distance,
                    coverage: accepted.min(total - accepted) as f64,
                    specificity: 0.0,
                    prior: prior as f64,
                }
            })
            .collect()
    }

    /// Propose the next informative path to show the user, or `None` when every candidate's
    /// label is determined by the version space (or the question budget is spent). Callers
    /// alternate `propose` with [`Self::record`]; [`Self::run`] loops to completion.
    pub fn propose(&mut self) -> Option<usize> {
        if self.budget.is_some_and(|cap| self.labelled.len() >= cap) {
            return None;
        }
        // Walk the incremental pool (ascending index — the spec's scan order) and drop the
        // paths whose label the shrunk version space now determines. Determination is monotone
        // (hypotheses only leave the version space), so removal is permanent and the pool is
        // maintained purely by set difference.
        let total = self.rows.len();
        let mut informative: Vec<usize> = Vec::new();
        let mut determined: Vec<usize> = Vec::new();
        for ix in self.pool.iter() {
            let accepted = self.accept_counts[ix];
            if accepted == 0 || accepted == total {
                determined.push(ix);
            } else {
                informative.push(ix);
            }
        }
        for ix in determined {
            self.pool.remove(ix);
        }
        let candidates = self.candidate_features(&informative);
        let view = PoolView {
            asked: self.labelled.len(),
            candidates: &candidates,
        };
        let pick = self.strategy.pick(&view)?;
        informative.get(pick).copied()
    }

    /// The incremental candidate pool: what [`Self::propose`] currently offers the strategy,
    /// i.e. [`Self::informative_paths`] plus any paths whose determination the lazy pool
    /// maintenance has not observed yet (it prunes during `propose`). Exposed so the
    /// differential suites can pin the incremental pool against the from-scratch specification
    /// round by round.
    pub fn informative_pool(&self) -> Vec<usize> {
        self.pool.iter().collect()
    }

    /// Run the loop until no informative path remains.
    pub fn run(mut self, oracle: &mut dyn PathOracle) -> PathSessionOutcome {
        while let Some(ix) = self.propose() {
            let label = oracle.label(self.graph.borrow(), &self.candidates[ix]);
            self.record(ix, label);
        }
        // The most specific surviving hypothesis: the one accepting the fewest candidate paths.
        let learned = self.most_specific();
        let accepted_paths: Vec<Path> = self
            .candidates
            .iter()
            .zip(&self.features)
            .filter(|(_, f)| learned.accepts_features(f))
            .map(|(p, _)| p.clone())
            .collect();
        let interactions = self.labelled.len();
        PathSessionOutcome {
            version_space: self.rows.into_iter().map(|r| r.constraint).collect(),
            learned,
            interactions,
            inferred: self.candidates.len().saturating_sub(interactions),
            candidates: self.candidates,
            accepted_paths,
        }
    }
}

/// Convenience wrapper: run one user's session against a goal constraint.
pub fn interactive_path_learn(
    graph: &PropertyGraph,
    from: GNodeId,
    to: GNodeId,
    goal: &PathConstraint,
    strategy: PathStrategy,
    workload: Vec<PathConstraint>,
    seed: u64,
) -> PathSessionOutcome {
    let mut oracle = GoalPathOracle::new(goal.clone());
    PathSession::new(graph, from, to, 8, strategy, seed)
        .with_workload(workload)
        .run(&mut oracle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::{generate_geo_graph, GeoConfig};

    fn setup() -> (PropertyGraph, GNodeId, GNodeId) {
        let g = generate_geo_graph(&GeoConfig {
            cities: 14,
            connectivity: 3,
            ..Default::default()
        });
        let from = g.find_node_by_property("name", "city0").unwrap();
        let to = g.find_node_by_property("name", "city6").unwrap();
        (g, from, to)
    }

    fn highway_goal() -> PathConstraint {
        PathConstraint {
            road_type: Some("highway".to_string()),
            max_distance: None,
            via: None,
        }
    }

    #[test]
    fn constraints_filter_paths() {
        let (g, from, to) = setup();
        let paths = simple_paths(&g, from, to, 6);
        assert!(!paths.is_empty());
        let any = PathConstraint::any();
        assert_eq!(
            paths.iter().filter(|p| any.accepts(&g, p)).count(),
            paths.len()
        );
        let highway = highway_goal();
        let highway_count = paths.iter().filter(|p| highway.accepts(&g, p)).count();
        assert!(highway_count < paths.len());
    }

    #[test]
    fn features_agree_with_direct_evaluation() {
        let (g, from, to) = setup();
        let goal = highway_goal();
        for p in simple_paths(&g, from, to, 6) {
            let f = PathFeatures::of(&g, &p);
            assert_eq!(goal.accepts(&g, &p), goal.accepts_features(&f));
            assert!((f.distance - p.total_distance(&g)).abs() < 1e-9);
        }
    }

    #[test]
    fn session_terminates_and_labels_are_consistent_with_goal() {
        let (g, from, to) = setup();
        for strategy in [
            PathStrategy::Random,
            PathStrategy::ShortestFirst,
            PathStrategy::Halving,
            PathStrategy::WorkloadPrior,
        ] {
            let outcome =
                interactive_path_learn(&g, from, to, &highway_goal(), strategy, vec![], 5);
            assert!(outcome.interactions <= outcome.interactions + outcome.inferred);
            // The learned constraint classifies every candidate path exactly as the goal does.
            for p in &outcome.candidates {
                assert_eq!(
                    outcome.learned.accepts(&g, p),
                    highway_goal().accepts(&g, p),
                    "strategy {strategy:?} misclassifies a path"
                );
            }
        }
    }

    #[test]
    fn pruning_reduces_interactions_below_candidate_count() {
        let (g, from, to) = setup();
        let outcome = interactive_path_learn(
            &g,
            from,
            to,
            &highway_goal(),
            PathStrategy::Halving,
            vec![],
            1,
        );
        assert!(
            outcome.interactions < outcome.interactions + outcome.inferred,
            "expected at least one inferred label"
        );
    }

    #[test]
    fn workload_prior_prioritises_previous_constraints() {
        let (g, from, to) = setup();
        let workload = vec![highway_goal()];
        let with_prior = interactive_path_learn(
            &g,
            from,
            to,
            &highway_goal(),
            PathStrategy::WorkloadPrior,
            workload,
            3,
        );
        // The prior-guided session still learns the correct constraint.
        for p in &with_prior.candidates {
            assert_eq!(
                with_prior.learned.accepts(&g, p),
                highway_goal().accepts(&g, p)
            );
        }
    }

    #[test]
    fn distance_bounded_goal_is_learned() {
        let (g, from, to) = setup();
        let probe = interactive_path_learn(
            &g,
            from,
            to,
            &PathConstraint::any(),
            PathStrategy::ShortestFirst,
            vec![],
            9,
        );
        let median = {
            let mut d: Vec<f64> = probe
                .candidates
                .iter()
                .map(|p| p.total_distance(&g))
                .collect();
            d.sort_by(|a, b| a.partial_cmp(b).unwrap());
            d[d.len() / 2]
        };
        let goal = PathConstraint {
            road_type: None,
            max_distance: Some(median),
            via: None,
        };
        let outcome = interactive_path_learn(&g, from, to, &goal, PathStrategy::Halving, vec![], 9);
        for p in &outcome.candidates {
            assert_eq!(outcome.learned.accepts(&g, p), goal.accepts(&g, p));
        }
    }

    #[test]
    fn accepted_paths_are_ready_for_exchange() {
        let (g, from, to) = setup();
        let outcome = interactive_path_learn(
            &g,
            from,
            to,
            &PathConstraint::any(),
            PathStrategy::ShortestFirst,
            vec![],
            2,
        );
        assert_eq!(outcome.accepted_paths.len(), outcome.candidates.len());
        assert!(!outcome.accepted_paths.is_empty());
        for p in &outcome.accepted_paths {
            assert_eq!(p.endpoints(&g).map(|(s, _)| s), Some(from));
        }
    }

    #[test]
    fn version_space_shrinks_with_each_label() {
        let (g, from, to) = setup();
        let mut session = PathSession::new(&g, from, to, 6, PathStrategy::Halving, 0);
        let before = session.version_space_size();
        let informative = session.informative_paths();
        if let Some(&ix) = informative.first() {
            session.record(ix, true);
            assert!(session.version_space_size() < before);
        }
    }

    #[test]
    fn cse_masks_match_per_candidate_evaluation_each_round() {
        // The family bases are built from algebra-lowered road-type masks shared through a
        // per-session cache; pin them — round by round, as the version space shrinks —
        // against direct per-candidate constraint evaluation (the executable spec).
        let (g, from, to) = setup();
        let mut session = PathSession::new(&g, from, to, 6, PathStrategy::Halving, 0);
        let mut oracle = GoalPathOracle::new(highway_goal());
        let mut rounds = 0;
        loop {
            for row in &session.rows {
                for ix in 0..session.candidates.len() {
                    assert_eq!(
                        row.accepts_path(ix),
                        row.constraint.accepts_features(&session.features[ix]),
                        "round {rounds}: row {:?} diverges on candidate {ix}",
                        row.constraint
                    );
                }
            }
            let Some(ix) = session.propose() else { break };
            let label = oracle.label(&g, &session.candidates[ix]);
            session.record(ix, label);
            rounds += 1;
        }
        assert!(rounds > 0, "the session must ask at least one question");
    }

    #[test]
    fn road_type_lowering_round_trips_through_the_word_matcher() {
        let highway = highway_goal();
        let mut store = QueryStore::new();
        let e = highway.lower(&mut store).unwrap();
        assert_eq!(store.render(e), "(highway)+");
        let matcher = WordMatcher::compile(&store, e).unwrap();
        let h = store.sym("highway");
        let l = store.sym("local");
        assert!(matcher.accepts(&[h, h]));
        assert!(!matcher.accepts(&[h, l]));
        assert!(!matcher.accepts(&[]));
        let any = PathConstraint::any().lower(&mut store).unwrap();
        let any_matcher = WordMatcher::compile(&store, any).unwrap();
        assert!(any_matcher.accepts(&[]) && any_matcher.accepts(&[h, l]));
        // Distance and via constraints stay outside the regular fragment.
        assert!(PathConstraint {
            road_type: None,
            max_distance: Some(100.0),
            via: None
        }
        .lower(&mut store)
        .is_none());
    }

    #[test]
    fn describe_is_human_readable() {
        let (g, _, _) = setup();
        let c = PathConstraint {
            road_type: Some("highway".into()),
            max_distance: Some(300.0),
            via: Some(g.find_node_by_property("name", "city3").unwrap()),
        };
        let text = c.describe(&g);
        assert!(text.contains("highway") && text.contains("300") && text.contains("city3"));
        assert_eq!(PathConstraint::any().describe(&g), "any path");
    }
}
