//! Nested regular expressions (NREs) and conjunctions of NREs.
//!
//! The paper points at Barceló et al. (ICDT'13), who build graph-database mapping languages from
//! "the most typical graph database queries, such as regular path queries and conjunctions of
//! nested regular expressions". This module provides that richer query language as the target
//! hypothesis space future graph learners can grow into:
//!
//! * [`Nre`] — regular path expressions extended with a *nesting* operator `[e]` that tests the
//!   existence of an outgoing path matching `e` without moving (the graph analogue of an XPath
//!   filter);
//! * [`eval_nre`] — polynomial evaluation over a [`PropertyGraph`] by structural recursion, with
//!   a BFS closure for `*`/`+`;
//! * [`ConjunctiveNre`] — conjunctions of NRE atoms over node variables (the mapping-language
//!   building block), evaluated by backtracking join over the atoms' binary relations.

use crate::model::{GNodeId, PropertyGraph};
use crate::rpq::PathRegex;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A nested regular expression over edge labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Nre {
    /// A single edge with this label.
    Label(String),
    /// Any single edge, regardless of label.
    AnyEdge,
    /// Concatenation.
    Concat(Vec<Nre>),
    /// Alternation.
    Alt(Vec<Nre>),
    /// Zero or more repetitions.
    Star(Box<Nre>),
    /// One or more repetitions.
    Plus(Box<Nre>),
    /// Zero or one occurrence.
    Optional(Box<Nre>),
    /// Nesting `[e]`: stay on the current node, require an outgoing path matching `e`.
    Nest(Box<Nre>),
    /// Node test: stay on the current node, require its label to be this.
    NodeLabel(String),
}

impl Nre {
    /// Convenience constructor for a label atom.
    pub fn label(l: impl Into<String>) -> Nre {
        Nre::Label(l.into())
    }

    /// Concatenation of a sequence of labels.
    pub fn word(labels: &[&str]) -> Nre {
        Nre::Concat(labels.iter().map(|l| Nre::label(*l)).collect())
    }

    /// Number of syntax nodes (used as "query size" in reports).
    pub fn size(&self) -> usize {
        match self {
            Nre::Label(_) | Nre::AnyEdge | Nre::NodeLabel(_) => 1,
            Nre::Concat(parts) | Nre::Alt(parts) => 1 + parts.iter().map(Nre::size).sum::<usize>(),
            Nre::Star(e) | Nre::Plus(e) | Nre::Optional(e) | Nre::Nest(e) => 1 + e.size(),
        }
    }

    /// Lift a plain regular path query into an NRE (RPQs are the nesting-free fragment).
    pub fn from_regex(regex: &PathRegex) -> Nre {
        match regex {
            PathRegex::Label(l) => Nre::Label(l.clone()),
            PathRegex::Concat(parts) => Nre::Concat(parts.iter().map(Nre::from_regex).collect()),
            PathRegex::Alt(parts) => Nre::Alt(parts.iter().map(Nre::from_regex).collect()),
            PathRegex::Star(e) => Nre::Star(Box::new(Nre::from_regex(e))),
            PathRegex::Plus(e) => Nre::Plus(Box::new(Nre::from_regex(e))),
            PathRegex::Optional(e) => Nre::Optional(Box::new(Nre::from_regex(e))),
        }
    }

    /// Whether the expression uses the nesting operator anywhere (i.e. leaves the RPQ fragment).
    pub fn is_nested(&self) -> bool {
        match self {
            Nre::Label(_) | Nre::AnyEdge | Nre::NodeLabel(_) => false,
            Nre::Concat(parts) | Nre::Alt(parts) => parts.iter().any(Nre::is_nested),
            Nre::Star(e) | Nre::Plus(e) | Nre::Optional(e) => e.is_nested(),
            Nre::Nest(_) => true,
        }
    }
}

impl fmt::Display for Nre {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Nre::Label(l) => write!(f, "{l}"),
            Nre::AnyEdge => write!(f, "_"),
            Nre::NodeLabel(l) => write!(f, "?{l}"),
            Nre::Concat(parts) => {
                let rendered: Vec<String> = parts.iter().map(|p| p.to_string()).collect();
                write!(f, "{}", rendered.join("/"))
            }
            Nre::Alt(parts) => {
                let rendered: Vec<String> = parts.iter().map(|p| p.to_string()).collect();
                write!(f, "({})", rendered.join("|"))
            }
            Nre::Star(e) => write!(f, "({e})*"),
            Nre::Plus(e) => write!(f, "({e})+"),
            Nre::Optional(e) => write!(f, "({e})?"),
            Nre::Nest(e) => write!(f, "[{e}]"),
        }
    }
}

/// All `(source, target)` node pairs related by the expression.
pub fn eval_nre(graph: &PropertyGraph, nre: &Nre) -> BTreeSet<(GNodeId, GNodeId)> {
    match nre {
        Nre::Label(l) => graph
            .edge_ids()
            .filter(|&e| graph.edge_label(e) == l)
            .map(|e| (graph.source(e), graph.target(e)))
            .collect(),
        Nre::AnyEdge => graph
            .edge_ids()
            .map(|e| (graph.source(e), graph.target(e)))
            .collect(),
        Nre::NodeLabel(l) => graph
            .node_ids()
            .filter(|&n| graph.node_label(n) == l)
            .map(|n| (n, n))
            .collect(),
        Nre::Concat(parts) => {
            let mut acc: BTreeSet<(GNodeId, GNodeId)> = graph.node_ids().map(|n| (n, n)).collect();
            for part in parts {
                let rel = eval_nre(graph, part);
                acc = compose(&acc, &rel);
                if acc.is_empty() {
                    break;
                }
            }
            acc
        }
        Nre::Alt(parts) => {
            let mut out = BTreeSet::new();
            for part in parts {
                out.extend(eval_nre(graph, part));
            }
            out
        }
        Nre::Star(e) => reflexive_transitive_closure(graph, &eval_nre(graph, e)),
        Nre::Plus(e) => {
            let rel = eval_nre(graph, e);
            compose(&rel, &reflexive_transitive_closure(graph, &rel))
        }
        Nre::Optional(e) => {
            let mut out = eval_nre(graph, e);
            out.extend(graph.node_ids().map(|n| (n, n)));
            out
        }
        Nre::Nest(e) => {
            let rel = eval_nre(graph, e);
            let sources: BTreeSet<GNodeId> = rel.iter().map(|&(s, _)| s).collect();
            sources.into_iter().map(|n| (n, n)).collect()
        }
    }
}

/// Nodes reachable from `source` by the expression.
pub fn eval_nre_from(graph: &PropertyGraph, nre: &Nre, source: GNodeId) -> BTreeSet<GNodeId> {
    eval_nre(graph, nre)
        .into_iter()
        .filter(|&(s, _)| s == source)
        .map(|(_, t)| t)
        .collect()
}

/// Relational composition of two binary relations over nodes.
fn compose(
    left: &BTreeSet<(GNodeId, GNodeId)>,
    right: &BTreeSet<(GNodeId, GNodeId)>,
) -> BTreeSet<(GNodeId, GNodeId)> {
    let mut by_source: BTreeMap<GNodeId, Vec<GNodeId>> = BTreeMap::new();
    for &(s, t) in right {
        by_source.entry(s).or_default().push(t);
    }
    let mut out = BTreeSet::new();
    for &(s, mid) in left {
        if let Some(targets) = by_source.get(&mid) {
            for &t in targets {
                out.insert((s, t));
            }
        }
    }
    out
}

/// Reflexive-transitive closure of a relation, restricted to the graph's nodes.
fn reflexive_transitive_closure(
    graph: &PropertyGraph,
    rel: &BTreeSet<(GNodeId, GNodeId)>,
) -> BTreeSet<(GNodeId, GNodeId)> {
    let mut successors: BTreeMap<GNodeId, Vec<GNodeId>> = BTreeMap::new();
    for &(s, t) in rel {
        successors.entry(s).or_default().push(t);
    }
    let mut out = BTreeSet::new();
    for start in graph.node_ids() {
        let mut frontier = vec![start];
        let mut seen: BTreeSet<GNodeId> = BTreeSet::from([start]);
        while let Some(n) = frontier.pop() {
            out.insert((start, n));
            for &next in successors.get(&n).map(Vec::as_slice).unwrap_or(&[]) {
                if seen.insert(next) {
                    frontier.push(next);
                }
            }
        }
    }
    out
}

/// One atom of a conjunctive NRE query: `subject —nre→ object` between two node variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NreAtom {
    /// Name of the subject variable.
    pub subject: String,
    /// The expression relating subject to object.
    pub nre: Nre,
    /// Name of the object variable.
    pub object: String,
}

/// A conjunction of NRE atoms over node variables — the building block of the graph
/// schema-mapping languages the paper cites.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConjunctiveNre {
    atoms: Vec<NreAtom>,
}

impl ConjunctiveNre {
    /// The empty conjunction (true everywhere).
    pub fn new() -> ConjunctiveNre {
        ConjunctiveNre::default()
    }

    /// Add an atom `subject —nre→ object`.
    pub fn atom(mut self, subject: impl Into<String>, nre: Nre, object: impl Into<String>) -> Self {
        self.atoms.push(NreAtom {
            subject: subject.into(),
            nre,
            object: object.into(),
        });
        self
    }

    /// The atoms of the conjunction.
    pub fn atoms(&self) -> &[NreAtom] {
        &self.atoms
    }

    /// Distinct variable names, in first-appearance order.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        for atom in &self.atoms {
            for v in [&atom.subject, &atom.object] {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
        }
        out
    }

    /// Evaluate the conjunction: every assignment of graph nodes to variables under which all
    /// atoms hold. Atoms are joined in order with early pruning (a simple left-deep plan), and
    /// each atom's relation is computed *lazily*, only when the join actually reaches it — an
    /// empty prefix short-circuits without evaluating the remaining atoms.
    pub fn evaluate(&self, graph: &PropertyGraph) -> Vec<BTreeMap<String, GNodeId>> {
        if self.atoms.is_empty() {
            return vec![BTreeMap::new()];
        }
        let mut assignments: Vec<BTreeMap<String, GNodeId>> = vec![BTreeMap::new()];
        for atom in &self.atoms {
            let rel = eval_nre(graph, &atom.nre);
            let mut next = Vec::new();
            for assignment in &assignments {
                for &(s, t) in &rel {
                    let subject_ok = assignment
                        .get(&atom.subject)
                        .map(|&v| v == s)
                        .unwrap_or(true);
                    let object_ok = assignment
                        .get(&atom.object)
                        .map(|&v| v == t)
                        .unwrap_or(true);
                    if subject_ok && object_ok {
                        let mut extended = assignment.clone();
                        extended.insert(atom.subject.clone(), s);
                        extended.insert(atom.object.clone(), t);
                        next.push(extended);
                    }
                }
            }
            assignments = next;
            if assignments.is_empty() {
                return assignments;
            }
        }
        // Deduplicate (different join orders can produce identical assignments).
        let mut seen = BTreeSet::new();
        assignments.retain(|a| seen.insert(a.clone()));
        assignments
    }

    /// Whether the conjunction has at least one satisfying assignment.
    ///
    /// A true early-exit: a backtracking search that returns at the *first* complete
    /// assignment, with atom relations filled in lazily — nothing is materialised beyond the
    /// relations of the atoms actually reached.
    pub fn is_satisfied(&self, graph: &PropertyGraph) -> bool {
        let mut rels: Vec<Option<BTreeSet<(GNodeId, GNodeId)>>> = vec![None; self.atoms.len()];
        let mut binding: BTreeMap<String, GNodeId> = BTreeMap::new();
        self.satisfy_from(graph, 0, &mut binding, &mut rels)
    }

    /// Depth-first search over the atoms: true as soon as every atom from `depth` on can be
    /// satisfied under `binding`. Binding extension mirrors [`evaluate`](Self::evaluate)
    /// exactly — subject then object, the object insert winning on a self-loop atom — so the
    /// two stay extensionally equal.
    fn satisfy_from(
        &self,
        graph: &PropertyGraph,
        depth: usize,
        binding: &mut BTreeMap<String, GNodeId>,
        rels: &mut [Option<BTreeSet<(GNodeId, GNodeId)>>],
    ) -> bool {
        let Some(atom) = self.atoms.get(depth) else {
            return true;
        };
        if rels[depth].is_none() {
            rels[depth] = Some(eval_nre(graph, &atom.nre));
        }
        let bound_s = binding.get(&atom.subject).copied();
        let bound_o = binding.get(&atom.object).copied();
        // Collect this level's consistent pairs first (the recursive call needs `rels` back).
        let matches: Vec<(GNodeId, GNodeId)> = rels[depth]
            .as_ref()
            .expect("just filled")
            .iter()
            .filter(|&&(s, t)| bound_s.is_none_or(|v| v == s) && bound_o.is_none_or(|v| v == t))
            .copied()
            .collect();
        for (s, t) in matches {
            let prev_s = binding.insert(atom.subject.clone(), s);
            let prev_o = binding.insert(atom.object.clone(), t);
            if self.satisfy_from(graph, depth + 1, binding, rels) {
                return true;
            }
            // Undo in reverse insertion order so a self-loop atom restores cleanly.
            match prev_o {
                Some(v) => binding.insert(atom.object.clone(), v),
                None => binding.remove(&atom.object),
            };
            match prev_s {
                Some(v) => binding.insert(atom.subject.clone(), v),
                None => binding.remove(&atom.subject),
            };
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::{generate_geo_graph, GeoConfig};
    use crate::model::PropertyGraph;

    /// A tiny fixed graph: a --road--> b --road--> c, b --train--> d, labels on nodes.
    fn small_graph() -> (PropertyGraph, [GNodeId; 4]) {
        let mut g = PropertyGraph::new();
        let a = g.add_node("city");
        let b = g.add_node("city");
        let c = g.add_node("city");
        let d = g.add_node("station");
        g.add_edge(a, b, "road");
        g.add_edge(b, c, "road");
        g.add_edge(b, d, "train");
        (g, [a, b, c, d])
    }

    #[test]
    fn label_and_concat_follow_edges() {
        let (g, [a, b, c, _]) = small_graph();
        let road = eval_nre(&g, &Nre::label("road"));
        assert!(road.contains(&(a, b)));
        assert!(road.contains(&(b, c)));
        assert_eq!(road.len(), 2);
        let two_roads = eval_nre(&g, &Nre::word(&["road", "road"]));
        assert_eq!(two_roads, BTreeSet::from([(a, c)]));
    }

    #[test]
    fn star_includes_reflexive_pairs() {
        let (g, [a, _, c, d]) = small_graph();
        let any_road = eval_nre(&g, &Nre::Star(Box::new(Nre::label("road"))));
        assert!(any_road.contains(&(a, a)), "closure is reflexive");
        assert!(any_road.contains(&(a, c)), "closure is transitive");
        assert!(!any_road.contains(&(a, d)), "train edges are not roads");
    }

    #[test]
    fn nesting_filters_without_moving() {
        let (g, [a, b, _, _]) = small_graph();
        // Nodes with an outgoing train edge — only b.
        let has_train = eval_nre(&g, &Nre::Nest(Box::new(Nre::label("train"))));
        assert_eq!(has_train, BTreeSet::from([(b, b)]));
        // road followed by [train]: reach a city that has a train connection.
        let road_to_station_city = eval_nre(
            &g,
            &Nre::Concat(vec![
                Nre::label("road"),
                Nre::Nest(Box::new(Nre::label("train"))),
            ]),
        );
        assert_eq!(road_to_station_city, BTreeSet::from([(a, b)]));
    }

    #[test]
    fn node_label_test_restricts_endpoints() {
        let (g, [_, b, _, d]) = small_graph();
        let q = Nre::Concat(vec![
            Nre::label("train"),
            Nre::NodeLabel("station".to_string()),
        ]);
        assert_eq!(eval_nre(&g, &q), BTreeSet::from([(b, d)]));
        let none = Nre::Concat(vec![
            Nre::label("train"),
            Nre::NodeLabel("city".to_string()),
        ]);
        assert!(eval_nre(&g, &none).is_empty());
    }

    #[test]
    fn rpq_lifting_preserves_semantics() {
        let (g, _) = small_graph();
        let regex = PathRegex::Concat(vec![
            PathRegex::label("road"),
            PathRegex::Star(Box::new(PathRegex::label("road"))),
        ]);
        let lifted = Nre::from_regex(&regex);
        assert!(!lifted.is_nested());
        assert_eq!(eval_nre(&g, &lifted), crate::rpq::evaluate(&g, &regex));
    }

    #[test]
    fn conjunctive_query_joins_atoms() {
        let (g, [a, b, _, d]) = small_graph();
        // x —road→ y, y —train→ z: only x=a, y=b, z=d.
        let q = ConjunctiveNre::new()
            .atom("x", Nre::label("road"), "y")
            .atom("y", Nre::label("train"), "z");
        let answers = q.evaluate(&g);
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0]["x"], a);
        assert_eq!(answers[0]["y"], b);
        assert_eq!(answers[0]["z"], d);
        assert_eq!(
            q.variables(),
            vec!["x".to_string(), "y".to_string(), "z".to_string()]
        );
    }

    #[test]
    fn unsatisfiable_conjunction_reports_no_assignment() {
        let (g, _) = small_graph();
        let q = ConjunctiveNre::new()
            .atom("x", Nre::label("train"), "y")
            .atom("y", Nre::label("train"), "z");
        assert!(!q.is_satisfied(&g));
    }

    #[test]
    fn satisfiability_early_exit_agrees_with_full_evaluation() {
        let (g, _) = small_graph();
        let cases = [
            ConjunctiveNre::new()
                .atom("x", Nre::label("road"), "y")
                .atom("y", Nre::label("train"), "z"),
            ConjunctiveNre::new()
                .atom("x", Nre::label("train"), "y")
                .atom("y", Nre::label("train"), "z"),
            // A self-loop atom: x —road*→ x holds for every node (reflexive closure).
            ConjunctiveNre::new().atom("x", Nre::Star(Box::new(Nre::label("road"))), "x"),
            // A self-loop atom nobody satisfies: x —road→ x (no road self-edges).
            ConjunctiveNre::new().atom("x", Nre::label("road"), "x"),
            // Shared variable binding across three atoms.
            ConjunctiveNre::new()
                .atom("x", Nre::label("road"), "y")
                .atom("y", Nre::label("road"), "z")
                .atom("y", Nre::label("train"), "w"),
            ConjunctiveNre::new(),
        ];
        for q in cases {
            assert_eq!(
                q.is_satisfied(&g),
                !q.evaluate(&g).is_empty(),
                "early-exit satisfiability disagrees with full evaluation"
            );
        }
    }

    #[test]
    fn nre_display_and_size_are_stable() {
        let q = Nre::Concat(vec![
            Nre::label("road"),
            Nre::Nest(Box::new(Nre::Plus(Box::new(Nre::label("train"))))),
        ]);
        assert_eq!(q.to_string(), "road/[(train)+]");
        assert_eq!(q.size(), 5);
        assert!(q.is_nested());
    }

    #[test]
    fn highway_reachability_on_the_geo_generator() {
        let g = generate_geo_graph(&GeoConfig {
            cities: 20,
            ..Default::default()
        });
        // Cities reachable by highways only, with every visited city having some outgoing road.
        let q = Nre::Plus(Box::new(Nre::Concat(vec![
            Nre::label("road"),
            Nre::Nest(Box::new(Nre::AnyEdge)),
        ])));
        let pairs = eval_nre(&g, &q);
        for &(s, t) in pairs.iter().take(20) {
            assert!(g.node_ids().any(|n| n == s) && g.node_ids().any(|n| n == t));
        }
    }
}
