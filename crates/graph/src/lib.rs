//! # qbe-graph — property graphs, regular path queries, and path-query learning
//!
//! The graph-database half of the paper's §3:
//!
//! * [`model`] — a directed property graph (RDF-style labelled edges with attributes) and its
//!   triple view;
//! * [`rpq`] — regular path queries over edge labels, NFA-product evaluation, simple-path
//!   enumeration;
//! * [`index`] — label-interned adjacency ([`GraphIndex`]) backing the indexed RPQ evaluator
//!   [`rpq::evaluate_indexed`], differentially tested against the naive product BFS;
//! * [`learn`] — learning path queries (block regexes) from positive and negative example
//!   paths;
//! * [`interactive`] — the interactive path-labelling framework of the geographical use case,
//!   with constraint hypotheses (road type, total distance, via-city), version-space pruning and
//!   workload priors;
//! * [`geo`] — the geographical database generator (cities, roads with distance and type);
//! * [`nre`] — nested regular expressions and their conjunctions (the Barceló et al. mapping
//!   building blocks);
//! * [`pattern`] — SPARQL-style graph patterns (BGP/AND/OPTIONAL/UNION/FILTER) with the
//!   well-designedness check, the expressive upper bound the paper deems too complex to learn;
//! * [`lower`] — lowering every query dialect above onto the shared hash-consed algebra IR
//!   (`qbe_algebra`); the legacy evaluators survive as executable specifications;
//! * [`qsession`] — interactive learning of RPQ/2RPQ/CRPQ queries by pair-membership
//!   questions, with cross-candidate common-subexpression elimination through one shared
//!   evaluation cache.

#![warn(missing_docs)]

pub mod geo;
pub mod index;
pub mod interactive;
pub mod learn;
pub mod lower;
pub mod model;
pub mod nre;
pub mod pattern;
pub mod qsession;
pub mod rpq;

pub use geo::{generate_geo_graph, GeoConfig, ROAD_TYPES};
pub use index::GraphIndex;
pub use interactive::{
    interactive_path_learn, GoalPathOracle, PathConstraint, PathOracle, PathSession,
    PathSessionOutcome, PathStrategy,
};
pub use learn::{
    learn_path_query, learn_path_query_with_negatives, Block, BlockMultiplicity, BlockPathQuery,
    PathLearnError,
};
pub use lower::{
    eval_conj_tuples, eval_expr_pairs, lower_bgp, lower_conjunctive, lower_nre, lower_path_regex,
    typed_road_view,
};
pub use model::{GEdgeId, GNodeId, PropValue, PropertyGraph, Triple};
pub use nre::{eval_nre, eval_nre_from, ConjunctiveNre, Nre, NreAtom};
pub use pattern::{
    evaluate_pattern, is_well_designed, select_nodes, Binding, Constraint, GraphPattern, Mapping,
    PredTerm, Term, TriplePattern,
};
pub use qsession::{
    enumerate_candidates, evaluate_candidates, CandidateQuery, CseStats, GoalPairsOracle,
    PairOracle, QueryClass, QuerySession, QuerySessionOutcome,
};
pub use rpq::{
    evaluate, evaluate_from, evaluate_indexed, simple_paths, thompson_state_count, Path, PathRegex,
};

#[cfg(test)]
mod proptests {
    use crate::learn::learn_path_query;
    use crate::rpq::PathRegex;
    use proptest::prelude::*;

    fn label_strategy() -> impl Strategy<Value = String> {
        prop_oneof![
            Just("road".to_string()),
            Just("train".to_string()),
            Just("ferry".to_string())
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The learned path query accepts every positive word it was trained on.
        #[test]
        fn path_learner_is_consistent(
            words in proptest::collection::vec(proptest::collection::vec(label_strategy(), 0..6), 1..5)
        ) {
            let q = learn_path_query(&words).unwrap();
            for w in &words {
                let refs: Vec<&str> = w.iter().map(String::as_str).collect();
                prop_assert!(q.accepts(&refs), "query {} rejects {:?}", q, w);
            }
        }

        /// Block queries and their regex translation accept the same words.
        #[test]
        fn block_query_matches_its_regex(
            words in proptest::collection::vec(proptest::collection::vec(label_strategy(), 0..5), 1..4),
            probe in proptest::collection::vec(label_strategy(), 0..6)
        ) {
            let q = learn_path_query(&words).unwrap();
            let regex = q.to_regex();
            let refs: Vec<&str> = probe.iter().map(String::as_str).collect();
            prop_assert_eq!(q.accepts(&refs), regex.accepts(&refs));
        }

        /// Regex membership respects concatenation: w1 ∈ L(r1), w2 ∈ L(r2) ⇒ w1·w2 ∈ L(r1/r2).
        #[test]
        fn regex_concatenation_is_compositional(
            w1 in proptest::collection::vec(label_strategy(), 0..4),
            w2 in proptest::collection::vec(label_strategy(), 0..4)
        ) {
            let r1 = PathRegex::Concat(w1.iter().map(|l| PathRegex::label(l.clone())).collect());
            let r2 = PathRegex::Concat(w2.iter().map(|l| PathRegex::label(l.clone())).collect());
            let concat = PathRegex::Concat(vec![r1, r2]);
            let mut word: Vec<&str> = w1.iter().map(String::as_str).collect();
            word.extend(w2.iter().map(String::as_str));
            prop_assert!(concat.accepts(&word));
        }
    }
}
