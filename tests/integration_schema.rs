//! Integration tests for the schema formalisms against the XML substrate: expressiveness of the
//! DMS (XMark DTD, synthetic web corpus), schema learning in the limit, containment, and the
//! dependency-graph analyses that make schema-aware learning tractable.

use qbe_core::schema::{
    dms_from_dtd, learn_dms, learn_ms, schema_contained_in, schema_equivalent, DependencyGraph,
};
use qbe_core::xml::corpus::{generate_corpus, CorpusConfig};
use qbe_core::xml::xmark::{generate, xmark_dtd, XmarkConfig};

#[test]
fn xmark_dtd_is_expressible_as_a_dms() {
    // The paper: "the disjunctive multiplicity schema can express the DTD from XMark".
    let dms = dms_from_dtd(&xmark_dtd()).expect("conversion succeeds");
    assert!(dms.is_satisfiable());
    // Generated XMark documents validate against the converted schema.
    for seed in 0..3 {
        let doc = generate(&XmarkConfig::new(0.05, seed));
        let violations = dms.validate(&doc);
        assert!(
            violations.is_empty(),
            "unexpected violations: {violations:?}"
        );
    }
}

#[test]
fn most_corpus_dtds_are_expressible_as_dms() {
    // The paper: the DMS "captures many of the DTDs from the real-world XML web collection".
    let corpus = generate_corpus(&CorpusConfig::default());
    assert!(!corpus.is_empty());
    let expressible = corpus
        .iter()
        .filter(|e| dms_from_dtd(&e.dtd).is_ok())
        .count();
    let fraction = expressible as f64 / corpus.len() as f64;
    assert!(
        fraction >= 0.5,
        "only {fraction} of the corpus DTDs convert to DMS"
    );
}

#[test]
fn dms_learning_identifies_the_schema_in_the_limit() {
    // Learning from more and more documents of a fixed schema converges: the learned schema
    // accepts every sample and eventually stops changing (identification in the limit).
    let dms = dms_from_dtd(&xmark_dtd()).unwrap();
    let docs: Vec<_> = (0..6)
        .map(|s| generate(&XmarkConfig::new(0.03, s)))
        .collect();

    let learned_small = learn_dms(&docs[..2]).unwrap();
    let learned_big = learn_dms(&docs).unwrap();
    for doc in &docs {
        assert!(learned_big.accepts(doc));
    }
    // Monotone generalisation, and never more general than what the true schema allows on the
    // labels actually observed.
    assert!(schema_contained_in(&learned_small, &learned_big));
    for doc in &docs {
        assert!(dms.accepts(doc));
    }
}

#[test]
fn ms_learning_is_sound_and_contained_in_dms_learning() {
    let docs: Vec<_> = (0..4)
        .map(|s| generate(&XmarkConfig::new(0.03, s)))
        .collect();
    let ms = learn_ms(&docs).unwrap();
    let dms = learn_dms(&docs).unwrap();
    assert!(ms.is_disjunction_free());
    for doc in &docs {
        assert!(ms.accepts(doc));
        assert!(dms.accepts(doc));
    }
    // The disjunction-free learner can only be more general or equal on these documents.
    assert!(schema_contained_in(&dms, &ms) || schema_equivalent(&dms, &ms));
}

#[test]
fn containment_is_a_partial_order_on_learned_schemas() {
    let docs: Vec<_> = (0..5)
        .map(|s| generate(&XmarkConfig::new(0.03, s)))
        .collect();
    let a = learn_dms(&docs[..2]).unwrap();
    let b = learn_dms(&docs[..4]).unwrap();
    let c = learn_dms(&docs).unwrap();
    // Reflexivity, antisymmetry (via equivalence), transitivity on a chain.
    assert!(schema_contained_in(&a, &a));
    assert!(schema_contained_in(&a, &b));
    assert!(schema_contained_in(&b, &c));
    assert!(schema_contained_in(&a, &c));
    if schema_contained_in(&b, &a) {
        assert!(schema_equivalent(&a, &b));
    }
}

#[test]
fn dependency_graph_reflects_the_xmark_structure() {
    let dms = dms_from_dtd(&xmark_dtd()).unwrap();
    let graph = DependencyGraph::from_schema(&dms);
    assert_eq!(graph.root(), "site");
    // site allows regions and people as children; person is reachable, item is a descendant of
    // regions but not of people.
    assert!(graph.allows_child("site", "people"));
    assert!(graph.has_descendant_path("site", "person"));
    assert!(graph.has_descendant_path("regions", "item"));
    assert!(!graph.has_descendant_path("people", "item"));
    // Required children drive the implication used by the overspecialisation pruning.
    let implied = graph.implied_children("person");
    assert!(
        implied.contains("name"),
        "every person has a name in the XMark DTD"
    );
}

#[test]
fn dependency_graph_paths_agree_with_generated_documents() {
    let dms = dms_from_dtd(&xmark_dtd()).unwrap();
    let graph = DependencyGraph::from_schema(&dms);
    let doc = generate(&XmarkConfig::new(0.05, 7));
    // Every parent→child label pair occurring in the document must be allowed by the graph.
    for node in doc.node_ids() {
        for &child in doc.children(node) {
            assert!(
                graph.allows_child(doc.label(node), doc.label(child)),
                "document edge {} → {} not allowed by the schema graph",
                doc.label(node),
                doc.label(child)
            );
        }
    }
}
