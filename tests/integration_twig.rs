//! Integration tests spanning `qbe-xml`, `qbe-schema` and `qbe-twig`: twig-query learning on
//! XMark-like documents, schema-aware pruning, consistency with negatives, PAC learning and the
//! XPathMark coverage claim.

use qbe_core::schema::dms_from_dtd;
use qbe_core::twig::{
    contained_in, equivalent, learn_from_positives, learn_union, learn_with_schema,
    most_specific_consistent, pac_learn, parse_xpath, select, selects, ExampleSet,
};
use qbe_core::xml::xmark::{generate, xmark_dtd, XmarkConfig};
use qbe_core::xml::XmlTree;

fn xmark_doc(seed: u64) -> XmlTree {
    generate(&XmarkConfig::new(0.05, seed))
}

#[test]
fn twig_learned_from_few_examples_recovers_goal_on_xmark() {
    // The paper's §2 observation: the learner generally needs only a small number of examples
    // (typically two) to become equivalent to the goal query on the benchmark documents. We add
    // examples one at a time and require convergence within a handful of them.
    let doc = xmark_doc(1);
    let goal = parse_xpath("//person/name").unwrap();
    let wanted: Vec<_> = select(&goal, &doc).into_iter().collect();
    assert!(
        wanted.len() >= 2,
        "the XMark document must contain at least two person names"
    );

    let mut needed = None;
    for k in 1..=wanted.len().min(6) {
        let examples: Vec<_> = wanted.iter().take(k).map(|&n| (&doc, n)).collect();
        let learned = learn_from_positives(&examples).unwrap();
        if select(&learned, &doc) == select(&goal, &doc) {
            needed = Some(k);
            break;
        }
    }
    let needed = needed.expect("the learner converges to the goal on the document");
    assert!(
        needed <= 6,
        "needed {needed} examples, expected a handful at most"
    );
}

#[test]
fn learned_query_is_most_specific_among_consistent_queries() {
    let doc = xmark_doc(2);
    let goal = parse_xpath("//open_auction").unwrap();
    let wanted: Vec<_> = select(&goal, &doc).into_iter().collect();
    let examples: Vec<_> = wanted.iter().take(3).map(|&n| (&doc, n)).collect();
    let learned = learn_from_positives(&examples).unwrap();
    // The most specific consistent query is contained in every consistent generalisation.
    assert!(contained_in(&learned, &goal));
    for (d, n) in &examples {
        assert!(selects(&learned, d, *n));
    }
}

#[test]
fn schema_aware_pruning_shrinks_overspecialised_queries() {
    // E3: the positive-only learner overspecialises with filters the schema already implies;
    // pruning against the XMark DMS removes them without changing the answers on valid docs.
    let doc = xmark_doc(3);
    let schema = dms_from_dtd(&xmark_dtd()).expect("the XMark DTD is expressible as a DMS");
    let goal = parse_xpath("//person").unwrap();
    let wanted: Vec<_> = select(&goal, &doc).into_iter().collect();
    let examples: Vec<_> = wanted.iter().take(2).map(|&n| (&doc, n)).collect();

    let naive = learn_from_positives(&examples).unwrap();
    let report = learn_with_schema(&examples, &schema).unwrap();
    assert!(report.size_after <= report.size_before);
    assert_eq!(report.size_before, naive.size());
    // Pruning preserves the semantics on documents valid for the schema.
    assert_eq!(select(&report.query, &doc), select(&naive, &doc));
}

#[test]
fn consistency_with_negatives_separates_or_reports_failure() {
    let doc = xmark_doc(4);
    let goal = parse_xpath("//closed_auction/price").unwrap();
    let set = ExampleSet::from_goal(&goal, vec![doc.clone()], 3, 5, 9);
    let outcome = most_specific_consistent(&set);
    if let Some(q) = outcome.query() {
        // Whenever a query is returned it must be consistent with every annotation.
        assert!(set.consistent_with(q));
    }
    // The union learner always succeeds when at least one positive exists and no positive node
    // is also annotated negative.
    let union = learn_union(&set).expect("positives exist");
    assert!(union.consistent_with(&set));
}

#[test]
fn union_of_twigs_handles_examples_a_single_twig_cannot() {
    // Two structurally unrelated positives plus a negative that defeats their generalisation.
    let doc = qbe_core::xml::parse_xml(
        "<lib><book><title>T</title></book><journal><issue>I</issue></journal><misc/></lib>",
    )
    .unwrap();
    let title = doc.nodes_with_label("title")[0];
    let issue = doc.nodes_with_label("issue")[0];
    let misc = doc.nodes_with_label("misc")[0];
    let mut set = ExampleSet::new();
    let d = set.add_document(doc);
    set.add_positive(d, title);
    set.add_positive(d, issue);
    set.add_negative(d, misc);
    let union = learn_union(&set).expect("positives exist");
    assert!(union.consistent_with(&set));
    assert!(
        union.len() >= 2,
        "a single twig cannot separate these examples exactly"
    );
}

#[test]
fn pac_learning_reaches_low_error_on_xmark() {
    let docs: Vec<XmlTree> = (0..3).map(xmark_doc).collect();
    let goal = parse_xpath("//person/name").unwrap();
    let outcome = pac_learn(&goal, &docs, 0.1, 0.1, 17);
    assert!(outcome.training_examples > 0);
    assert!(
        outcome.evaluation.error() <= 0.1,
        "PAC error {} exceeds epsilon",
        outcome.evaluation.error()
    );
}

#[test]
fn xpathmark_coverage_matches_the_papers_15_percent_claim() {
    // The paper reports that the positive-only learner handles 15% of XPathMark. Our suite has
    // 20 queries; the twig-expressible ones learnable from examples should be a small but
    // non-zero fraction in the same ballpark (we accept 10%–40%).
    let suite = qbe_core::twig::xpathmark::suite();
    assert_eq!(suite.len(), 20);
    let doc = xmark_doc(5);
    let mut learnable = 0usize;
    for q in &suite {
        let Some(goal) = q.as_twig() else { continue };
        let nodes: Vec<_> = select(&goal, &doc).into_iter().collect();
        if nodes.len() < 2 {
            continue;
        }
        let examples: Vec<_> = nodes.iter().take(2).map(|&n| (&doc, n)).collect();
        if let Ok(learned) = learn_from_positives(&examples) {
            if equivalent(&learned, &goal) || select(&learned, &doc) == select(&goal, &doc) {
                learnable += 1;
            }
        }
    }
    let fraction = learnable as f64 / suite.len() as f64;
    assert!(
        (0.10..=0.40).contains(&fraction),
        "learnable fraction {fraction} out of the expected band"
    );
}
