//! Integration tests for the four cross-model exchange scenarios of Figure 1, with both the
//! expert-query and learned-query variants.

use qbe_core::exchange::{
    learned_publish_relational_to_xml, learned_shred_xml_to_relational, publish_graph_to_xml,
    publish_relational_to_xml, shred_xml_to_graph, shred_xml_to_relational, DataModel, Scenario,
};
use qbe_core::graph::{
    generate_geo_graph, interactive_path_learn, GeoConfig, PathConstraint, PathStrategy,
};
use qbe_core::relational::{customers_orders_database, JoinPredicate};
use qbe_core::twig::{parse_xpath, select};
use qbe_core::xml::xmark::{generate, XmarkConfig};

#[test]
fn figure_one_lists_exactly_four_scenarios() {
    let all = Scenario::all();
    assert_eq!(all.len(), 4);
    assert_eq!(all.iter().filter(|s| s.kind() == "publishing").count(), 2);
    assert_eq!(all.iter().filter(|s| s.kind() == "shredding").count(), 2);
    // XML is the intermediate model: every scenario touches it on one side.
    for s in all {
        assert!(s.source() == DataModel::Xml || s.target() == DataModel::Xml);
    }
}

#[test]
fn scenario_1_publishing_preserves_the_join_cardinality() {
    let db = customers_orders_database(18, 2, 2);
    let customers = db.relation("customers").unwrap();
    let orders = db.relation("orders").unwrap();
    let predicate =
        JoinPredicate::from_names(customers.schema(), orders.schema(), &[("cid", "cid")]).unwrap();
    let (doc, report) = publish_relational_to_xml(customers, orders, &predicate, "sales");
    assert_eq!(report.scenario, Scenario::RelationalToXml);
    assert_eq!(report.extracted_items, report.produced_items);
    assert_eq!(doc.nodes_with_label("row").len(), report.produced_items);
    assert!(report.produced_items > 0);

    // The learned variant produces the same number of rows because the learned predicate is
    // semantically equal to the goal on the instance.
    let (learned_doc, learned_report) =
        learned_publish_relational_to_xml(customers, orders, &predicate, "sales", 5);
    assert_eq!(
        learned_doc.nodes_with_label("row").len(),
        doc.nodes_with_label("row").len()
    );
    assert_eq!(learned_report.produced_items, report.produced_items);
}

#[test]
fn scenario_2_shredding_extracts_one_tuple_per_selected_node() {
    let doc = generate(&XmarkConfig::new(0.05, 21));
    let query = parse_xpath("//person/name").unwrap();
    let expected = select(&query, &doc).len();
    let (relation, report) = shred_xml_to_relational(&doc, &query, "names");
    assert_eq!(report.scenario, Scenario::XmlToRelational);
    assert_eq!(relation.len(), expected);
    assert_eq!(report.extracted_items, expected);
    assert_eq!(relation.schema().arity(), 3);

    // Learned variant from two annotated nodes extracts at least the annotated nodes and never
    // more than the goal query selects.
    let names = doc.nodes_with_label("name");
    let annotated: Vec<_> = names
        .iter()
        .copied()
        .filter(|&n| select(&query, &doc).contains(&n))
        .take(2)
        .collect();
    let (learned_rel, _) = learned_shred_xml_to_relational(&doc, &annotated, "names").unwrap();
    assert!(learned_rel.len() >= annotated.len());
    assert!(learned_rel.len() <= relation.len());
}

#[test]
fn scenario_3_shredding_builds_a_graph_linked_like_the_document() {
    let doc = generate(&XmarkConfig::new(0.05, 22));
    let query = parse_xpath("//item").unwrap();
    let (graph, report) = shred_xml_to_graph(&doc, &query);
    assert_eq!(report.scenario, Scenario::XmlToGraph);
    assert_eq!(graph.node_count(), report.extracted_items);
    // Selected items are siblings in the document, so no child_of edges appear between them;
    // selecting nested labels does produce edges (checked with a containing query).
    let nested = parse_xpath("//*").unwrap();
    let (nested_graph, _) = shred_xml_to_graph(&doc, &nested);
    assert!(nested_graph.edge_count() > 0);
    assert_eq!(nested_graph.node_count(), doc.size());
}

#[test]
fn scenario_4_publishing_writes_one_path_element_per_itinerary() {
    let graph = generate_geo_graph(&GeoConfig {
        cities: 20,
        ..Default::default()
    });
    let from = graph.find_node_by_property("name", "city0").unwrap();
    let to = graph.find_node_by_property("name", "city6").unwrap();
    let goal = PathConstraint {
        road_type: Some("highway".to_string()),
        max_distance: None,
        via: None,
    };
    let outcome = interactive_path_learn(
        &graph,
        from,
        to,
        &goal,
        PathStrategy::Halving,
        Vec::new(),
        2,
    );
    let (doc, report) = publish_graph_to_xml(&graph, &outcome.accepted_paths, &outcome.learned);
    assert_eq!(report.scenario, Scenario::GraphToXml);
    assert_eq!(
        doc.nodes_with_label("path").len(),
        outcome.accepted_paths.len()
    );
    assert_eq!(report.extracted_items, outcome.accepted_paths.len());
    // Every published path element records its endpoints when the path is non-empty.
    for p in doc.nodes_with_label("path") {
        if !doc.children(p).is_empty() {
            assert!(doc.attribute(p, "from").is_some());
            assert!(doc.attribute(p, "to").is_some());
        }
    }
}
