//! Regression pins: exact oracle question counts for the interactive learners on fixed seeds.
//!
//! The indexed-evaluation rewrite must not change *what* the learners do, only how fast they do
//! it — and future evaluator or session rewrites must uphold the same invariant. These tests pin
//! the number of questions each learner asks on fixed scenarios (XMark documents for twig,
//! generated join/chain instances for relational, the geographical graph for paths), so any
//! rewrite that silently alters learner behaviour fails loudly here with the old and new counts.
//!
//! If a deliberate strategy change moves these numbers, update the pins in the same commit and
//! say why in its message.

use qbe_core::graph::interactive::{interactive_path_learn, PathConstraint, PathStrategy};
use qbe_core::graph::{generate_geo_graph, GeoConfig};
use qbe_core::relational::chain::{
    generate_chain_instance, interactive_chain_learn, ChainInstanceConfig,
};
use qbe_core::relational::{
    generate_join_instance, interactive_learn, JoinInstanceConfig, Strategy,
};
use qbe_core::twig::{interactive_twig_learn, parse_xpath, NodeStrategy};
use qbe_core::xml::xmark::{generate, XmarkConfig};
use qbe_core::xml::XmlTree;

fn xmark() -> XmlTree {
    generate(&XmarkConfig::new(0.01, 3))
}

#[test]
fn xmark_document_shape_is_stable() {
    // All twig pins below assume this exact document.
    assert_eq!(xmark().size(), 266);
}

#[test]
fn twig_session_question_counts_are_pinned() {
    let doc = xmark();
    let cases: [(&str, NodeStrategy, u64, usize); 4] = [
        ("//person/name", NodeStrategy::LabelAffinity, 7, 51),
        ("//person/name", NodeStrategy::DocumentOrder, 7, 187),
        ("//item/name", NodeStrategy::LabelAffinity, 7, 115),
        ("//open_auction", NodeStrategy::ShallowFirst, 7, 19),
    ];
    for (goal, strategy, seed, expected) in cases {
        let outcome = interactive_twig_learn(
            std::slice::from_ref(&doc),
            &parse_xpath(goal).unwrap(),
            strategy,
            seed,
        );
        assert!(outcome.consistent, "{goal} {strategy:?}");
        assert!(outcome.query.is_some(), "{goal} {strategy:?}");
        assert_eq!(
            outcome.interactions, expected,
            "{goal} with {strategy:?} (seed {seed}) changed its question count"
        );
        assert_eq!(outcome.interactions + outcome.pruned, outcome.total_nodes);
    }
}

#[test]
fn join_session_question_counts_are_pinned() {
    let (left, right, goal) = generate_join_instance(&JoinInstanceConfig {
        left_rows: 20,
        right_rows: 20,
        extra_attributes: 2,
        domain_size: 6,
        seed: 1,
    });
    let cases: [(Strategy, usize); 3] = [
        (Strategy::Random, 6),
        (Strategy::MostSpecificFirst, 4),
        (Strategy::HalveLattice, 5),
    ];
    for (strategy, expected) in cases {
        let outcome = interactive_learn(&left, &right, &goal, strategy, 1);
        assert!(outcome.consistent, "{strategy:?}");
        assert_eq!(
            outcome.interactions, expected,
            "join learning with {strategy:?} changed its question count"
        );
        assert_eq!(outcome.interactions + outcome.inferred, 400);
    }
}

#[test]
fn chain_session_question_counts_are_pinned() {
    let (relations, goal) = generate_chain_instance(&ChainInstanceConfig::default());
    let outcome = interactive_chain_learn(&relations, &goal, Strategy::HalveLattice, 5);
    assert_eq!(
        outcome.interactions, 7,
        "chain learning changed its question count"
    );
    assert_eq!(outcome.inferred, 1793);
}

#[test]
fn path_session_question_counts_are_pinned() {
    let graph = generate_geo_graph(&GeoConfig {
        cities: 12,
        connectivity: 3,
        ..Default::default()
    });
    let from = graph.find_node_by_property("name", "city0").unwrap();
    let to = graph.find_node_by_property("name", "city6").unwrap();
    let goal = PathConstraint {
        road_type: Some("highway".to_string()),
        max_distance: None,
        via: None,
    };
    let cases: [(PathStrategy, usize); 2] = [
        (PathStrategy::ShortestFirst, 13),
        (PathStrategy::Halving, 16),
    ];
    for (strategy, expected) in cases {
        let outcome = interactive_path_learn(&graph, from, to, &goal, strategy, vec![], 5);
        assert_eq!(
            outcome.interactions, expected,
            "path learning with {strategy:?} changed its question count"
        );
        // The learned constraint still classifies every candidate like the goal.
        for p in &outcome.candidates {
            assert_eq!(outcome.learned.accepts(&graph, p), goal.accepts(&graph, p));
        }
    }
}
