//! Regression pins: exact oracle question counts for the interactive learners on fixed seeds.
//!
//! The indexed-evaluation rewrite must not change *what* the learners do, only how fast they do
//! it — and future evaluator or session rewrites must uphold the same invariant. These tests pin
//! the number of questions each learner asks on fixed scenarios (XMark documents for twig,
//! generated join/chain instances for relational, the geographical graph for paths), so any
//! rewrite that silently alters learner behaviour fails loudly here with the old and new counts.
//!
//! If a deliberate strategy change moves these numbers, update the pins in the same commit and
//! say why in its message.

use qbe_core::graph::interactive::{
    interactive_path_learn, GoalPathOracle, PathConstraint, PathSession, PathStrategy,
};
use qbe_core::graph::{generate_geo_graph, GeoConfig};
use qbe_core::relational::chain::{
    generate_chain_instance, interactive_chain_learn, ChainInstanceConfig,
};
use qbe_core::relational::interactive::{GoalOracle, InteractiveSession};
use qbe_core::relational::{
    generate_join_instance, interactive_learn, JoinInstanceConfig, Strategy,
};
use qbe_core::twig::{
    interactive_twig_learn, interactive_twig_learn_config, parse_xpath, NodeStrategy,
};
use qbe_core::xml::xmark::{generate, XmarkConfig};
use qbe_core::xml::XmlTree;
use qbe_core::SessionConfig;

fn named(strategy: &str, seed: u64) -> SessionConfig {
    SessionConfig::new()
        .seed(seed)
        .strategy_named(strategy)
        .expect("shipped strategy names resolve")
}

fn xmark() -> XmlTree {
    generate(&XmarkConfig::new(0.01, 3))
}

#[test]
fn xmark_document_shape_is_stable() {
    // All twig pins below assume this exact document.
    assert_eq!(xmark().size(), 266);
}

#[test]
fn twig_session_question_counts_are_pinned() {
    let doc = xmark();
    let cases: [(&str, NodeStrategy, u64, usize); 4] = [
        ("//person/name", NodeStrategy::LabelAffinity, 7, 51),
        ("//person/name", NodeStrategy::DocumentOrder, 7, 187),
        ("//item/name", NodeStrategy::LabelAffinity, 7, 115),
        ("//open_auction", NodeStrategy::ShallowFirst, 7, 19),
    ];
    for (goal, strategy, seed, expected) in cases {
        let outcome = interactive_twig_learn(
            std::slice::from_ref(&doc),
            &parse_xpath(goal).unwrap(),
            strategy,
            seed,
        );
        assert!(outcome.consistent, "{goal} {strategy:?}");
        assert!(outcome.query.is_some(), "{goal} {strategy:?}");
        assert_eq!(
            outcome.interactions, expected,
            "{goal} with {strategy:?} (seed {seed}) changed its question count"
        );
        assert_eq!(outcome.interactions + outcome.pruned, outcome.total_nodes);
    }
}

/// The model-agnostic strategies, pinned on the same instances as the model presets above.
///
/// `paper-order` is the executable spec of the pre-API behaviour: on twigs it must stay
/// byte-identical to the `DocumentOrder` pin (187) and `cheapest-first` to the path
/// `ShortestFirst` pin (13) — those equalities are asserted, not just the raw numbers. The
/// remaining counts were pinned when the strategies shipped (PR 4).
#[test]
fn generic_strategy_question_counts_are_pinned() {
    // Twig: //person/name on the pinned XMark document, seed 7 (as above).
    let doc = xmark();
    let goal = parse_xpath("//person/name").unwrap();
    let twig_cases: [(&str, usize); 4] = [
        ("paper-order", 187),
        ("random", 53),
        ("max-coverage", 164),
        ("cheapest-first", 36),
    ];
    for (strategy, expected) in twig_cases {
        let outcome =
            interactive_twig_learn_config(std::slice::from_ref(&doc), &goal, named(strategy, 7));
        assert!(outcome.consistent && outcome.query.is_some(), "{strategy}");
        assert_eq!(
            outcome.interactions, expected,
            "twig learning with {strategy} changed its question count"
        );
    }
    let paper_order =
        interactive_twig_learn_config(std::slice::from_ref(&doc), &goal, named("paper-order", 7));
    let document_order = interactive_twig_learn(
        std::slice::from_ref(&doc),
        &goal,
        NodeStrategy::DocumentOrder,
        7,
    );
    assert_eq!(
        paper_order.interactions, document_order.interactions,
        "paper-order is the executable spec of the pre-API document-order behaviour"
    );

    // Join: the pinned generated instance, seed 1 (as above). `random` must stay
    // byte-identical to the legacy `Strategy::Random` pin (6): same stream, same questions.
    let (left, right, join_goal) = generate_join_instance(&JoinInstanceConfig {
        left_rows: 20,
        right_rows: 20,
        extra_attributes: 2,
        domain_size: 6,
        seed: 1,
    });
    let join_cases: [(&str, usize); 4] = [
        ("paper-order", 16),
        ("random", 6),
        ("max-coverage", 9),
        ("cheapest-first", 9),
    ];
    for (strategy, expected) in join_cases {
        let session = InteractiveSession::with_config(&left, &right, named(strategy, 1));
        let mut oracle = GoalOracle::new(&left, &right, join_goal.clone());
        let outcome = session.run(&mut oracle);
        assert!(outcome.consistent, "{strategy}");
        assert_eq!(
            outcome.interactions, expected,
            "join learning with {strategy} changed its question count"
        );
    }

    // Path: the pinned geographical instance, seed 5, max_edges 8 (as above).
    // `cheapest-first` must stay byte-identical to the `ShortestFirst` pin (13).
    let graph = generate_geo_graph(&GeoConfig {
        cities: 12,
        connectivity: 3,
        ..Default::default()
    });
    let from = graph.find_node_by_property("name", "city0").unwrap();
    let to = graph.find_node_by_property("name", "city6").unwrap();
    let path_goal = PathConstraint {
        road_type: Some("highway".to_string()),
        max_distance: None,
        via: None,
    };
    let path_cases: [(&str, usize); 4] = [
        ("paper-order", 13),
        ("random", 34),
        ("max-coverage", 16),
        ("cheapest-first", 13),
    ];
    for (strategy, expected) in path_cases {
        let session = PathSession::with_config(&graph, from, to, 8, named(strategy, 5));
        let mut oracle = GoalPathOracle::new(path_goal.clone());
        let outcome = session.run(&mut oracle);
        assert_eq!(
            outcome.interactions, expected,
            "path learning with {strategy} changed its question count"
        );
        for p in &outcome.candidates {
            assert_eq!(
                outcome.learned.accepts(&graph, p),
                path_goal.accepts(&graph, p),
                "{strategy} misclassifies a candidate path"
            );
        }
    }
}

#[test]
fn join_session_question_counts_are_pinned() {
    let (left, right, goal) = generate_join_instance(&JoinInstanceConfig {
        left_rows: 20,
        right_rows: 20,
        extra_attributes: 2,
        domain_size: 6,
        seed: 1,
    });
    let cases: [(Strategy, usize); 3] = [
        (Strategy::Random, 6),
        (Strategy::MostSpecificFirst, 4),
        (Strategy::HalveLattice, 5),
    ];
    for (strategy, expected) in cases {
        let outcome = interactive_learn(&left, &right, &goal, strategy, 1);
        assert!(outcome.consistent, "{strategy:?}");
        assert_eq!(
            outcome.interactions, expected,
            "join learning with {strategy:?} changed its question count"
        );
        assert_eq!(outcome.interactions + outcome.inferred, 400);
    }
}

#[test]
fn chain_session_question_counts_are_pinned() {
    let (relations, goal) = generate_chain_instance(&ChainInstanceConfig::default());
    let outcome = interactive_chain_learn(&relations, &goal, Strategy::HalveLattice, 5);
    assert_eq!(
        outcome.interactions, 7,
        "chain learning changed its question count"
    );
    assert_eq!(outcome.inferred, 1793);
}

#[test]
fn path_session_question_counts_are_pinned() {
    let graph = generate_geo_graph(&GeoConfig {
        cities: 12,
        connectivity: 3,
        ..Default::default()
    });
    let from = graph.find_node_by_property("name", "city0").unwrap();
    let to = graph.find_node_by_property("name", "city6").unwrap();
    let goal = PathConstraint {
        road_type: Some("highway".to_string()),
        max_distance: None,
        via: None,
    };
    let cases: [(PathStrategy, usize); 2] = [
        (PathStrategy::ShortestFirst, 13),
        (PathStrategy::Halving, 16),
    ];
    for (strategy, expected) in cases {
        let outcome = interactive_path_learn(&graph, from, to, &goal, strategy, vec![], 5);
        assert_eq!(
            outcome.interactions, expected,
            "path learning with {strategy:?} changed its question count"
        );
        // The learned constraint still classifies every candidate like the goal.
        for p in &outcome.candidates {
            assert_eq!(outcome.learned.accepts(&graph, p), goal.accepts(&graph, p));
        }
    }
}
