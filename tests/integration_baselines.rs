//! Integration tests spanning the related-work baselines (query by output, view synthesis, CFD
//! discovery, BP-expressibility), the SPARQL-style pattern algebra, the interactive twig
//! protocol, and the direct relational↔graph exchange scenarios — i.e. the parts of the
//! reproduction that sit *around* the paper's own learners.

use qbe_core::exchange::{
    learned_publish_relational_to_graph, learned_shred_graph_to_relational, Scenario,
};
use qbe_core::graph::{
    evaluate_pattern, generate_geo_graph, is_well_designed, select_nodes, Constraint, GeoConfig,
    GraphPattern, PathConstraint, PredTerm, Term,
};
use qbe_core::relational::bp::single_relation_instance;
use qbe_core::relational::{
    bp_expressible, customers_orders_database, discover_constant_cfds, interactive_learn,
    query_by_output, synthesize_view, Condition, Instance, JoinPredicate, SpjQuery, Strategy,
    Value,
};
use qbe_core::twig::{interactive_twig_learn, parse_xpath, NodeStrategy};
use qbe_core::xml::xmark::{generate, XmarkConfig};

/// Query by output and view synthesis must agree with the interactive learner on what the goal
/// selection is, each starting from its own kind of input (full output vs labelled pairs).
#[test]
fn baselines_and_interactive_learner_agree_on_a_selection_goal() {
    let db = customers_orders_database(6, 3, 21);
    let goal = SpjQuery::scan("orders")
        .select(vec![Condition::AttrConst("cid".into(), Value::Int(2))])
        .project(&["oid"]);
    let output = goal.evaluate(&db).expect("goal evaluates");
    assert!(!output.is_empty());

    // Query by output reconstructs an instance-equivalent query from the output alone.
    let learned = query_by_output(&db, &output).expect("query by output succeeds");
    let reproduced = learned.evaluate(&db).expect("learned query evaluates");
    assert_eq!(reproduced.len(), output.len());

    // View synthesis finds an exact, succinct definition of the same output.
    let synthesis = synthesize_view(&db, &output).expect("view synthesis succeeds");
    assert!(synthesis.accuracy.is_exact());
    assert!(synthesis.definition.size() <= learned.condition_count().max(1));
}

/// The decision-tree baseline handles disjunctive goals that no single conjunction captures.
#[test]
fn query_by_output_handles_disjunctive_goals() {
    let db = customers_orders_database(6, 2, 4);
    let union_goal_a = SpjQuery::scan("orders")
        .select(vec![Condition::AttrConst("cid".into(), Value::Int(0))])
        .project(&["oid"]);
    let union_goal_b = SpjQuery::scan("orders")
        .select(vec![Condition::AttrConst("cid".into(), Value::Int(5))])
        .project(&["oid"]);
    let mut output = union_goal_a.evaluate(&db).expect("goal a evaluates");
    for t in union_goal_b
        .evaluate(&db)
        .expect("goal b evaluates")
        .tuples()
    {
        output.insert(t.clone());
    }
    let learned = query_by_output(&db, &output).expect("union goal is recoverable");
    assert!(
        learned.branches.len() >= 2,
        "a disjunction needs at least two branches"
    );
    let reproduced = learned.evaluate(&db).expect("learned query evaluates");
    assert_eq!(reproduced.distinct().len(), output.distinct().len());
}

/// CFD discovery on the generated customers/orders data: every reported dependency holds, and
/// the foreign-key-like dependency from order id to customer id is found.
#[test]
fn cfd_discovery_reports_only_valid_dependencies() {
    let db = customers_orders_database(5, 3, 9);
    let orders = db.relation("orders").expect("orders relation exists");
    for cfd in discover_constant_cfds(orders, 2, 2) {
        assert!(cfd.holds(orders), "{} must hold", cfd.describe(orders));
    }
}

/// BP-expressibility agrees with evaluability: outputs computed by an SPJ query over the
/// instance are always expressible, outputs with foreign constants never are.
#[test]
fn bp_criterion_is_consistent_with_actual_queries() {
    let db = customers_orders_database(4, 2, 13);
    let orders = db
        .relation("orders")
        .expect("orders relation exists")
        .clone();
    let single = single_relation_instance(orders);
    for query in [
        SpjQuery::scan("orders").project(&["cid"]),
        SpjQuery::scan("orders")
            .select(vec![Condition::AttrConst("cid".into(), Value::Int(1))])
            .project(&["oid", "cid"]),
    ] {
        let output = query.evaluate(&single).expect("query evaluates");
        if output.is_empty() {
            continue;
        }
        let verdict = bp_expressible(&single, &output);
        assert!(
            verdict.expressible,
            "output of `{query}` must be BP-expressible"
        );
    }
}

/// The SPARQL-style pattern algebra is strictly more expressive but agrees with a plain BGP on
/// the conjunctive fragment, and the well-designedness check separates the two regimes.
#[test]
fn graph_patterns_evaluate_and_classify_well_designedness() {
    let graph = generate_geo_graph(&GeoConfig {
        cities: 12,
        ..Default::default()
    });
    let bgp = GraphPattern::Bgp(vec![
        qbe_core::graph::TriplePattern::new(
            Term::var("x"),
            PredTerm::label("road"),
            Term::var("y"),
        ),
        qbe_core::graph::TriplePattern::new(
            Term::var("y"),
            PredTerm::label("road"),
            Term::var("z"),
        ),
    ]);
    let solutions = evaluate_pattern(&graph, &bgp);
    // Every solution's endpoints are connected by two road edges — cross-check on the graph.
    for m in &solutions {
        let x = select_nodes(std::slice::from_ref(m), "x");
        assert_eq!(x.len(), 1);
    }
    assert!(is_well_designed(&bgp));

    let opt = GraphPattern::triple(Term::var("x"), PredTerm::label("road"), Term::var("y"))
        .optional(GraphPattern::triple(
            Term::var("y"),
            PredTerm::label("road"),
            Term::var("z"),
        ))
        .filter(Constraint::Bound("x".into()));
    assert!(is_well_designed(&opt));
    assert!(evaluate_pattern(&graph, &opt).len() >= solutions.len());

    let broken = GraphPattern::triple(Term::var("x"), PredTerm::label("road"), Term::var("y"))
        .optional(GraphPattern::triple(
            Term::var("x"),
            PredTerm::label("road"),
            Term::var("z"),
        ))
        .and(GraphPattern::triple(
            Term::var("z"),
            PredTerm::label("road"),
            Term::var("w"),
        ));
    assert!(!is_well_designed(&broken));
}

/// The interactive twig protocol learns a goal query over an XMark-like document with far fewer
/// questions than exhaustively labelling every node.
#[test]
fn interactive_twig_learning_on_xmark_documents() {
    let doc = generate(&XmarkConfig::new(0.01, 3));
    let total_nodes = doc.size();
    let goal = parse_xpath("//person/name").expect("goal parses");
    let outcome = interactive_twig_learn(&[doc], &goal, NodeStrategy::LabelAffinity, 5);
    assert!(outcome.consistent);
    assert!(outcome.query.is_some());
    assert!(
        outcome.interactions < total_nodes,
        "interactive labelling ({}) must beat exhaustive labelling ({})",
        outcome.interactions,
        total_nodes
    );
}

/// The direct relational→graph and graph→relational scenarios run end to end with learned
/// source queries and report the extended scenario variants.
#[test]
fn direct_relational_graph_exchange_round_trip() {
    let db = customers_orders_database(5, 2, 8);
    let customers = db.relation("customers").expect("customers exists");
    let orders = db.relation("orders").expect("orders exists");
    let goal = JoinPredicate::from_names(customers.schema(), orders.schema(), &[("cid", "cid")])
        .expect("cid is shared");

    let (graph, publish_report) = learned_publish_relational_to_graph(customers, orders, &goal, 3);
    assert_eq!(publish_report.scenario, Scenario::RelationalToGraph);
    assert_eq!(graph.edge_count(), 10, "5 customers × 2 orders each");
    assert!(graph.node_count() > 0);

    // And back: learn a path constraint over a geographical graph and shred it to tuples.
    let geo = generate_geo_graph(&GeoConfig {
        cities: 12,
        ..Default::default()
    });
    let from = geo
        .find_node_by_property("name", "city0")
        .expect("city0 exists");
    let to = geo
        .find_node_by_property("name", "city4")
        .expect("city4 exists");
    let (steps, shred_report) =
        learned_shred_graph_to_relational(&geo, from, to, &PathConstraint::any(), "steps", 2);
    assert_eq!(shred_report.scenario, Scenario::GraphToRelational);
    assert_eq!(
        shred_report.scenario.source(),
        qbe_core::exchange::DataModel::Graph
    );
    assert_eq!(steps.schema().arity(), 6);
}

/// Cross-check: interactive join learning and query-by-output reach instance-equivalent answers
/// for the same join goal, one from labelled pairs and one from the materialised join output.
#[test]
fn interactive_and_output_driven_join_discovery_are_equivalent() {
    let db = customers_orders_database(4, 2, 5);
    let customers = db.relation("customers").expect("customers exists");
    let orders = db.relation("orders").expect("orders exists");
    let goal = JoinPredicate::from_names(customers.schema(), orders.schema(), &[("cid", "cid")])
        .expect("cid is shared");
    let outcome = interactive_learn(customers, orders, &goal, Strategy::HalveLattice, 19);
    assert!(outcome.consistent);
    // The learned predicate selects exactly the goal's pairs.
    let learned_pairs =
        qbe_core::relational::interactive::selected_pairs(customers, orders, &outcome.predicate);
    let goal_pairs = qbe_core::relational::interactive::selected_pairs(customers, orders, &goal);
    assert_eq!(learned_pairs, goal_pairs);

    // Query by output, given the materialised projection of the join, also reproduces it.
    let mut single = Instance::new();
    single.add(orders.clone());
    let goal_output = SpjQuery::scan("orders")
        .project(&["cid"])
        .evaluate(&single)
        .unwrap();
    let qbo = query_by_output(&single, &goal_output).expect("projection is recoverable");
    assert_eq!(qbo.evaluate(&single).unwrap().len(), goal_output.len());
}
