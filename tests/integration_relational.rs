//! Integration tests for the relational substrate and the join/semijoin learners: operator
//! algebra laws, batch learning, the interactive protocol across strategies, and the
//! crowdsourcing cost model.

use qbe_core::relational::interactive::selected_pairs;
use qbe_core::relational::{
    cartesian_product, crowdsourced_learn, customers_orders_database, equi_join,
    generate_join_instance, interactive_learn, join_consistent, natural_join, semijoin,
    semijoin_consistent_exact, semijoin_learn_greedy, HitPricing, JoinInstanceConfig,
    JoinPredicate, LabelledPair, LabelledTuple, Strategy,
};

#[test]
fn natural_join_equals_equi_join_on_common_attributes() {
    let db = customers_orders_database(15, 2, 1);
    let customers = db.relation("customers").unwrap();
    let orders = db.relation("orders").unwrap();
    let natural = natural_join(customers, orders);
    let predicate = JoinPredicate::natural(customers.schema(), orders.schema());
    let equi = equi_join(customers, orders, &predicate);
    assert_eq!(natural.len(), equi.len());
}

#[test]
fn semijoin_projects_the_join_onto_the_left_relation() {
    let db = customers_orders_database(12, 2, 5);
    let customers = db.relation("customers").unwrap();
    let orders = db.relation("orders").unwrap();
    let predicate =
        JoinPredicate::from_names(customers.schema(), orders.schema(), &[("cid", "cid")]).unwrap();
    let semi = semijoin(customers, orders, &predicate);
    let full = equi_join(customers, orders, &predicate);
    // Every semijoin tuple comes from the left relation and participates in the join.
    assert!(semi.len() <= customers.len());
    assert!(semi.len() <= full.len());
    for t in semi.tuples() {
        assert!(customers.tuples().contains(t));
    }
    // The cartesian product has exactly |L|·|R| tuples.
    assert_eq!(
        cartesian_product(customers, orders).len(),
        customers.len() * orders.len()
    );
}

#[test]
fn join_consistency_is_decided_correctly_in_both_directions() {
    let (left, right, goal) = generate_join_instance(&JoinInstanceConfig {
        left_rows: 20,
        right_rows: 20,
        seed: 3,
        ..Default::default()
    });
    // Labels produced by the goal itself are always consistent.
    let labels: Vec<LabelledPair> = (0..left.len().min(right.len()))
        .map(|i| {
            LabelledPair::new(
                i,
                i,
                goal.satisfied_by(&left.tuples()[i], &right.tuples()[i]),
            )
        })
        .collect();
    assert!(join_consistent(&left, &right, &labels)
        .unwrap()
        .is_consistent());

    // Labelling the same pair both positive and negative is inconsistent.
    let contradictory = vec![
        LabelledPair::new(0, 0, true),
        LabelledPair::new(0, 0, false),
    ];
    assert!(!join_consistent(&left, &right, &contradictory)
        .unwrap()
        .is_consistent());
}

#[test]
fn interactive_learning_recovers_goal_semantics_under_every_strategy() {
    for seed in [1_u64, 7, 23] {
        let (left, right, goal) = generate_join_instance(&JoinInstanceConfig {
            left_rows: 12,
            right_rows: 12,
            seed,
            ..Default::default()
        });
        let goal_selection = selected_pairs(&left, &right, &goal);
        for strategy in [
            Strategy::Random,
            Strategy::MostSpecificFirst,
            Strategy::HalveLattice,
        ] {
            let outcome = interactive_learn(&left, &right, &goal, strategy, seed);
            assert!(outcome.consistent);
            assert_eq!(
                selected_pairs(&left, &right, &outcome.predicate),
                goal_selection,
                "strategy {strategy:?} learned a semantically different join"
            );
        }
    }
}

#[test]
fn informed_strategies_never_need_more_interactions_than_the_pair_count() {
    let (left, right, goal) = generate_join_instance(&JoinInstanceConfig {
        left_rows: 15,
        right_rows: 15,
        seed: 11,
        ..Default::default()
    });
    let total_pairs = left.len() * right.len();
    for strategy in [
        Strategy::Random,
        Strategy::MostSpecificFirst,
        Strategy::HalveLattice,
    ] {
        let outcome = interactive_learn(&left, &right, &goal, strategy, 11);
        assert!(outcome.interactions + outcome.inferred <= total_pairs);
        assert!(
            outcome.interactions < total_pairs,
            "the protocol must prune at least some uninformative pairs"
        );
    }
}

#[test]
fn semijoin_consistency_exact_and_greedy_agree_on_separable_instances() {
    let db = customers_orders_database(10, 2, 9);
    let customers = db.relation("customers").unwrap();
    let orders = db.relation("orders").unwrap();
    let goal =
        JoinPredicate::from_names(customers.schema(), orders.schema(), &[("cid", "cid")]).unwrap();
    let labels: Vec<LabelledTuple> = (0..customers.len())
        .map(|i| {
            let selected = orders
                .tuples()
                .iter()
                .any(|o| goal.satisfied_by(&customers.tuples()[i], o));
            LabelledTuple::new(i, selected)
        })
        .collect();
    let exact = semijoin_consistent_exact(customers, orders, &labels);
    assert!(exact.is_some(), "the goal itself witnesses consistency");
    if let Some(greedy) = semijoin_learn_greedy(customers, orders, &labels) {
        // The greedy predicate must also be consistent with every label.
        for l in &labels {
            let selected = orders
                .tuples()
                .iter()
                .any(|o| greedy.satisfied_by(&customers.tuples()[l.index], o));
            assert_eq!(selected, l.positive);
        }
    }
}

#[test]
fn crowdsourcing_cost_is_interactions_times_hit_price() {
    let (left, right, goal) = generate_join_instance(&JoinInstanceConfig {
        left_rows: 10,
        right_rows: 10,
        seed: 4,
        ..Default::default()
    });
    let pricing = HitPricing {
        label_price: 0.10,
        feature_price: 0.02,
    };
    let outcome = crowdsourced_learn(&left, &right, &goal, Strategy::HalveLattice, pricing, 4);
    let expected = outcome.session.interactions as f64 * pricing.label_price;
    assert!((outcome.total_cost - expected).abs() < 1e-9);
    assert_eq!(outcome.feature_hits, 0);
}
