//! Differential property suite for the dense-bitset engine (PR 5).
//!
//! Two families of properties, ≥256 random instances per model:
//!
//! * **DenseSet eval ≡ BTreeSet eval** — the bitset evaluators must be extensionally equal to
//!   the naive `BTreeSet`-producing executable specifications (`twig::eval`, `graph::rpq::
//!   evaluate`, the relational status sweep), and [`DenseSet`] itself must behave exactly like
//!   a `BTreeSet` under random operation sequences;
//! * **incremental pools ≡ from-scratch pools** — each interactive session's incremental
//!   candidate pool (maintained by word-level set difference across rounds) must equal the
//!   from-scratch recomputation after every single proposal, for twig, path and join sessions.

use proptest::prelude::*;
use qbe_core::graph::interactive::{PathConstraint, PathSession, PathStrategy};
use qbe_core::graph::{generate_geo_graph, GeoConfig};
use qbe_core::relational::interactive::{InteractiveSession, Strategy};
use qbe_core::relational::{generate_join_instance, JoinInstanceConfig};
use qbe_core::twig::query::{Axis, NodeTest, TwigQuery};
use qbe_core::twig::{eval, eval_indexed, NodeStrategy, TwigSession};
use qbe_core::xml::random::{RandomTreeConfig, RandomTreeGenerator};
use qbe_core::xml::{NodeId, NodeIndex, XmlTree};
use qbe_core::DenseSet;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

fn random_tree(seed: u64) -> XmlTree {
    let cfg = RandomTreeConfig {
        alphabet: ('a'..='e').map(|c| c.to_string()).collect(),
        max_depth: 4,
        max_children: 3,
        ..Default::default()
    };
    RandomTreeGenerator::new(cfg, seed).generate()
}

/// A random anchored-ish goal: `//label` over a label the document may or may not carry.
fn random_goal(seed: u64, doc: &XmlTree) -> TwigQuery {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A);
    let mut labels = doc.alphabet();
    labels.push("zz_absent".to_string());
    TwigQuery::new(
        Axis::Descendant,
        NodeTest::label(labels.choose(&mut rng).expect("non-empty")),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// [`DenseSet`] behaves exactly like a `BTreeSet<usize>` under random operation sequences
    /// (insert/remove/and/or/and-not), including iteration order.
    #[test]
    fn dense_set_matches_btreeset_model(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let universe = rng.gen_range(1usize..200);
        let mut dense: DenseSet = DenseSet::new(universe);
        let mut model: BTreeSet<usize> = BTreeSet::new();
        for _ in 0..64 {
            let id = rng.gen_range(0..universe);
            match rng.gen_range(0u32..5) {
                0 | 1 => {
                    prop_assert_eq!(dense.insert(id), model.insert(id));
                }
                2 => {
                    prop_assert_eq!(dense.remove(id), model.remove(&id));
                }
                3 => {
                    let other_ids: Vec<usize> =
                        (0..universe).filter(|_| rng.gen_bool(0.3)).collect();
                    let other: DenseSet = DenseSet::from_ids(universe, other_ids.iter().copied());
                    let other_model: BTreeSet<usize> = other_ids.into_iter().collect();
                    if rng.gen_bool(0.5) {
                        dense.and_with(&other);
                        model = model.intersection(&other_model).copied().collect();
                    } else {
                        dense.and_not_with(&other);
                        model = model.difference(&other_model).copied().collect();
                    }
                    prop_assert_eq!(dense.intersection_len(&other),
                        model.intersection(&other_model).count());
                }
                _ => {
                    let other_ids: Vec<usize> =
                        (0..universe).filter(|_| rng.gen_bool(0.1)).collect();
                    let other: DenseSet = DenseSet::from_ids(universe, other_ids.iter().copied());
                    dense.or_with(&other);
                    model.extend(other_ids);
                }
            }
            prop_assert_eq!(dense.len(), model.len());
            prop_assert_eq!(dense.iter().collect::<Vec<_>>(),
                model.iter().copied().collect::<Vec<_>>());
        }
    }

    /// Twig: the bitset evaluator's answer equals the naive `BTreeSet` evaluator's on random
    /// documents and goals (set contents *and* ascending iteration order).
    #[test]
    fn twig_dense_eval_equals_btreeset_eval(seed in 0u64..1_000_000) {
        let doc = random_tree(seed);
        let goal = random_goal(seed, &doc);
        let index = NodeIndex::build(&doc);
        let naive: BTreeSet<NodeId> = eval::select(&goal, &doc);
        let mut cache = eval_indexed::EvalCache::new();
        let bits = eval_indexed::select_bits_with(&goal, &doc, &index, &mut cache);
        prop_assert_eq!(bits.iter().collect::<BTreeSet<_>>(), naive.clone());
        prop_assert_eq!(
            bits.iter().collect::<Vec<_>>(),
            naive.iter().copied().collect::<Vec<_>>(),
            "bitset iteration must be ascending like the sorted spec"
        );
    }

    /// Twig sessions: the incremental pool equals the from-scratch recomputation
    /// (`informative_nodes() ∖ proven determined negatives`) after every proposal.
    #[test]
    fn twig_incremental_pool_equals_from_scratch(seed in 0u64..1_000_000) {
        let doc = random_tree(seed);
        let goal = random_goal(seed.wrapping_mul(31), &doc);
        let selected = eval::select(&goal, &doc);
        let mut session = TwigSession::new(vec![doc], NodeStrategy::LabelAffinity, seed);
        let mut rounds = 0usize;
        while let Some((d, n)) = session.propose() {
            let determined: BTreeSet<(usize, NodeId)> =
                session.determined_negative_nodes().into_iter().collect();
            let mut spec = session.informative_nodes();
            spec.retain(|key| !determined.contains(key));
            prop_assert_eq!(
                session.informative_pool(), spec,
                "incremental pool diverged from the from-scratch pool at round {}", rounds
            );
            session.record(d, n, selected.contains(&n));
            rounds += 1;
            prop_assert!(rounds <= 4096, "session failed to terminate");
        }
    }

    /// Path sessions: the incremental pool equals the from-scratch
    /// [`PathSession::informative_paths`] specification after every proposal.
    #[test]
    fn path_incremental_pool_equals_from_scratch(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = generate_geo_graph(&GeoConfig {
            cities: rng.gen_range(5usize..10),
            connectivity: rng.gen_range(2usize..4),
            seed,
            ..Default::default()
        });
        let nodes: Vec<_> = graph.node_ids().collect();
        let from = *nodes.choose(&mut rng).expect("non-empty graph");
        let to = *nodes.choose(&mut rng).expect("non-empty graph");
        let goal = PathConstraint {
            road_type: if rng.gen_bool(0.5) { Some("highway".into()) } else { None },
            max_distance: if rng.gen_bool(0.3) { Some(rng.gen_range(50.0..500.0)) } else { None },
            via: None,
        };
        let mut session = PathSession::new(&graph, from, to, 5, PathStrategy::Halving, seed);
        let mut rounds = 0usize;
        while let Some(ix) = session.propose() {
            prop_assert_eq!(
                session.informative_pool(),
                session.informative_paths(),
                "incremental pool diverged from the from-scratch pool at round {}", rounds
            );
            let accepts = goal.accepts(&graph, session.path(ix));
            session.record(ix, accepts);
            rounds += 1;
            prop_assert!(rounds <= 4096, "session failed to terminate");
        }
    }

    /// Join sessions: the incremental `PairSet` pool equals the from-scratch status sweep
    /// ([`InteractiveSession::informative_pairs`], the `BTreeSet`-predicate specification)
    /// after every proposal — which simultaneously pins the `u64` agreement masks against the
    /// `JoinPredicate` agreement sets they encode.
    #[test]
    fn join_incremental_pool_equals_from_scratch(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (left, right, goal) = generate_join_instance(&JoinInstanceConfig {
            left_rows: rng.gen_range(3usize..9),
            right_rows: rng.gen_range(3usize..9),
            extra_attributes: rng.gen_range(0usize..3),
            domain_size: rng.gen_range(2usize..5),
            seed,
        });
        let mut session = InteractiveSession::new(&left, &right, Strategy::HalveLattice, seed);
        let mut rounds = 0usize;
        while let Some((l, r)) = session.propose() {
            prop_assert_eq!(
                session.informative_pool(),
                session.informative_pairs(),
                "incremental pool diverged from the from-scratch pool at round {}", rounds
            );
            let positive = goal.satisfied_by(&left.tuples()[l], &right.tuples()[r]);
            session.record(l, r, positive);
            rounds += 1;
            prop_assert!(rounds <= 4096, "session failed to terminate");
        }
        prop_assert!(session.is_consistent());
    }
}
