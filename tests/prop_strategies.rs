//! Differential property suite for the pluggable question-selection strategies: on random
//! instances of all three models, every shipped strategy — driven by a consistent goal oracle
//! and capped by a question budget the instance size bounds — converges to a query
//! semantically equivalent to the hidden goal.
//!
//! Strategies only reorder the questions; the sessions' version-space/pruning logic owns
//! correctness. These properties pin that contract: a strategy (shipped or future) can change
//! *how many* questions a session asks, never *what* it learns.

use proptest::prelude::*;
use std::sync::Arc;

use qbe_core::graph::interactive::{GoalPathOracle, PathConstraint, PathSession};
use qbe_core::graph::{generate_geo_graph, GeoConfig};
use qbe_core::relational::interactive::{selected_pairs, GoalOracle, InteractiveSession};
use qbe_core::relational::{generate_join_instance, JoinInstanceConfig};
use qbe_core::twig::interactive::{GoalNodeOracle, TwigSession};
use qbe_core::twig::{eval, learn_from_positives};
use qbe_core::xml::random::{RandomTreeConfig, RandomTreeGenerator};
use qbe_core::xml::{NodeIndex, XmlTree};
use qbe_core::{SessionConfig, STRATEGY_NAMES};

fn config(strategy: &str, seed: u64, budget: usize) -> SessionConfig {
    SessionConfig::new()
        .seed(seed)
        .budget(budget)
        .strategy_named(strategy)
        .expect("shipped strategy names resolve")
}

fn random_tree(seed: u64) -> XmlTree {
    let cfg = RandomTreeConfig {
        alphabet: ('a'..='e').map(|c| c.to_string()).collect(),
        max_depth: 4,
        max_children: 3,
        ..Default::default()
    };
    let mut t = RandomTreeGenerator::new(cfg, seed).generate();
    t.set_label(XmlTree::ROOT, "root");
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Twig: whatever the strategy, the session recovers a query selecting exactly the goal's
    /// answer set, within a budget of one question per node (the exhaustive-labelling bound).
    #[test]
    fn every_strategy_recovers_twig_goals(seed in 0u64..500, pick in 0usize..50) {
        let doc = random_tree(seed);
        let nodes: Vec<_> = doc.node_ids().collect();
        // The goal is the most specific query of a random node: in the learner's hypothesis
        // class by construction, so the oracle's answers are always jointly consistent.
        let goal = learn_from_positives(&[(&doc, nodes[pick % nodes.len()])]).unwrap();
        let goal_answers = eval::select(&goal, &doc);
        let docs = Arc::new(vec![doc.clone()]);
        let indexes = Arc::new(docs.iter().map(NodeIndex::build).collect::<Vec<_>>());
        let budget = doc.size();
        for &strategy in STRATEGY_NAMES {
            let session = TwigSession::with_config(
                docs.clone(),
                indexes.clone(),
                config(strategy, seed, budget),
            );
            let mut oracle = GoalNodeOracle::new(std::slice::from_ref(&doc), goal.clone());
            let outcome = session.run(&mut oracle);
            prop_assert!(outcome.consistent, "{strategy}: labels stayed consistent");
            prop_assert!(outcome.interactions <= budget, "{strategy}: within budget");
            let learned = outcome.query.expect("the goal has at least one answer");
            prop_assert_eq!(
                eval::select(&learned, &doc),
                goal_answers.clone(),
                "{} learned a semantically different query",
                strategy
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Join: whatever the strategy, the learned predicate selects exactly the goal's pairs,
    /// within a budget of one question per candidate pair.
    #[test]
    fn every_strategy_recovers_join_goals(seed in 0u64..500, rows in 4usize..14) {
        let (left, right, goal) = generate_join_instance(&JoinInstanceConfig {
            left_rows: rows,
            right_rows: rows,
            seed,
            ..Default::default()
        });
        let reference = selected_pairs(&left, &right, &goal);
        let budget = left.len() * right.len();
        for &strategy in STRATEGY_NAMES {
            let session = InteractiveSession::with_config(
                &left,
                &right,
                config(strategy, seed, budget),
            );
            let mut oracle = GoalOracle::new(&left, &right, goal.clone());
            let outcome = session.run(&mut oracle);
            prop_assert!(outcome.consistent, "{strategy}: labels stayed consistent");
            prop_assert!(outcome.interactions <= budget, "{strategy}: within budget");
            prop_assert_eq!(
                selected_pairs(&left, &right, &outcome.predicate),
                reference.clone(),
                "{} learned a semantically different join",
                strategy
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Path: whatever the strategy, the learned constraint classifies every candidate
    /// itinerary exactly as the goal does, within a budget of one question per candidate.
    #[test]
    fn every_strategy_recovers_path_goals(
        graph_seed in 0u64..200,
        cities in 8usize..14,
        goal_kind in 0usize..3,
    ) {
        let graph = generate_geo_graph(&GeoConfig {
            cities,
            connectivity: 3,
            seed: graph_seed,
            ..Default::default()
        });
        let from = graph.find_node_by_property("name", "city0").unwrap();
        let to = graph
            .find_node_by_property("name", &format!("city{}", cities / 2))
            .unwrap();
        let goal = match goal_kind {
            0 => PathConstraint::any(),
            1 => PathConstraint {
                road_type: Some("highway".to_string()),
                max_distance: None,
                via: None,
            },
            _ => PathConstraint {
                road_type: None,
                max_distance: Some(600.0),
                via: None,
            },
        };
        for &strategy in STRATEGY_NAMES {
            let probe = PathSession::with_config(
                &graph,
                from,
                to,
                6,
                config(strategy, graph_seed, usize::MAX),
            );
            let budget = probe.candidate_count();
            let session = PathSession::with_config(
                &graph,
                from,
                to,
                6,
                config(strategy, graph_seed, budget),
            );
            let mut oracle = GoalPathOracle::new(goal.clone());
            let outcome = session.run(&mut oracle);
            prop_assert!(outcome.interactions <= budget, "{strategy}: within budget");
            for (path, accepted) in outcome
                .candidates
                .iter()
                .map(|p| (p, outcome.learned.accepts(&graph, p)))
            {
                prop_assert_eq!(
                    accepted,
                    goal.accepts(&graph, path),
                    "{} misclassifies a candidate path",
                    strategy
                );
            }
        }
    }
}
