//! Integration tests for the graph substrate and the path-query learners: RPQ evaluation on the
//! geographical database, block-query learning from labelled itineraries, and the interactive
//! path-labelling protocol with workload priors.

use qbe_core::graph::{
    evaluate, evaluate_from, generate_geo_graph, interactive_path_learn, learn_path_query,
    learn_path_query_with_negatives, simple_paths, GeoConfig, PathConstraint, PathRegex,
    PathStrategy,
};

fn geo(cities: usize, seed: u64) -> qbe_core::graph::PropertyGraph {
    generate_geo_graph(&GeoConfig {
        cities,
        connectivity: 3,
        highway_fraction: 0.3,
        seed,
    })
}

#[test]
fn geo_generator_produces_a_connected_labelled_road_network() {
    let g = geo(25, 3);
    assert_eq!(g.node_count(), 25);
    assert!(g.edge_count() > 0);
    // Every edge carries a road type and a positive distance.
    for e in g.edge_ids() {
        let kind = g
            .edge_property(e, "type")
            .and_then(|p| p.as_text().map(str::to_string));
        assert!(kind.is_some());
        let d = g
            .edge_property(e, "distance")
            .and_then(|p| p.as_number())
            .unwrap();
        assert!(d > 0.0);
    }
    // The triple view exposes one triple per edge.
    assert_eq!(g.triples().len(), g.edge_count());
}

#[test]
fn rpq_evaluation_agrees_with_path_enumeration() {
    let g = geo(15, 5);
    let regex = PathRegex::Star(Box::new(PathRegex::label("road")));
    let reachable_pairs = evaluate(&g, &regex);
    // For a handful of sources, every target found by path enumeration must be RPQ-reachable.
    for source in g.node_ids().take(4) {
        let targets = evaluate_from(&g, &regex, source);
        for path in g
            .node_ids()
            .take(6)
            .flat_map(|t| simple_paths(&g, source, t, 4))
        {
            if let Some((from, to)) = path.endpoints(&g) {
                assert_eq!(from, source);
                let word = path.word(&g);
                let refs: Vec<&str> = word.iter().map(String::as_str).collect();
                if regex.accepts(&refs) {
                    assert!(targets.contains(&to));
                    assert!(reachable_pairs.contains(&(from, to)));
                }
            }
        }
    }
}

#[test]
fn path_query_learning_generalises_and_respects_negatives() {
    let positives = vec![
        vec!["highway".to_string(), "highway".to_string()],
        vec![
            "highway".to_string(),
            "highway".to_string(),
            "highway".to_string(),
        ],
    ];
    let q = learn_path_query(&positives).unwrap();
    // Accepts the training words and the natural generalisation to more repetitions.
    assert!(q.accepts(&["highway", "highway"]));
    assert!(q.accepts(&["highway", "highway", "highway", "highway"]));

    let negatives = vec![vec!["highway".to_string(), "local".to_string()]];
    let separated = learn_path_query_with_negatives(&positives, &negatives)
        .unwrap()
        .expect("the samples are separable");
    assert!(separated.accepts(&["highway", "highway"]));
    assert!(!separated.accepts(&["highway", "local"]));

    // Non-separable samples are reported as such, not silently mislearned.
    let impossible = learn_path_query_with_negatives(&positives, &positives).unwrap();
    assert!(impossible.is_none());
}

#[test]
fn block_query_and_its_regex_translation_agree() {
    let positives = vec![
        vec!["highway".to_string(), "national".to_string()],
        vec![
            "highway".to_string(),
            "highway".to_string(),
            "national".to_string(),
        ],
    ];
    let q = learn_path_query(&positives).unwrap();
    let regex = q.to_regex();
    for word in [
        vec!["highway", "national"],
        vec!["highway", "highway", "national"],
        vec!["national"],
        vec!["local"],
        vec![],
    ] {
        assert_eq!(
            q.accepts(&word),
            regex.accepts(&word),
            "disagreement on {word:?}"
        );
    }
}

#[test]
fn interactive_path_learning_recovers_the_hidden_constraint() {
    let g = geo(15, 7);
    let from = g.find_node_by_property("name", "city0").unwrap();
    let to = g.find_node_by_property("name", "city5").unwrap();
    let goal = PathConstraint {
        road_type: Some("highway".to_string()),
        max_distance: None,
        via: None,
    };
    if simple_paths(&g, from, to, 8).is_empty() {
        return; // disconnected seed — nothing to learn, covered by other seeds
    }
    for strategy in [
        PathStrategy::Random,
        PathStrategy::ShortestFirst,
        PathStrategy::Halving,
        PathStrategy::WorkloadPrior,
    ] {
        let outcome = interactive_path_learn(&g, from, to, &goal, strategy, Vec::new(), 3);
        // The learned constraint classifies every candidate path exactly like the goal.
        assert!(!outcome.candidates.is_empty());
        for path in &outcome.candidates {
            assert_eq!(
                outcome.learned.accepts(&g, path),
                goal.accepts(&g, path),
                "strategy {strategy:?} disagrees with the goal on a candidate path"
            );
        }
        assert!(outcome.interactions <= outcome.candidates.len());
    }
}

#[test]
fn workload_prior_never_asks_more_questions_than_random_on_matching_workloads() {
    // When previous users had the same intention, the workload prior should help (or at least
    // not hurt) the number of interactions, which is the quantity the paper wants to minimise.
    let g = geo(16, 13);
    let from = g.find_node_by_property("name", "city1").unwrap();
    let to = g.find_node_by_property("name", "city8").unwrap();
    let goal = PathConstraint {
        road_type: Some("highway".to_string()),
        max_distance: None,
        via: None,
    };
    if simple_paths(&g, from, to, 8).is_empty() {
        return;
    }
    let workload = vec![goal.clone(), goal.clone()];
    let mut random_total = 0usize;
    let mut prior_total = 0usize;
    for seed in 0..5 {
        random_total +=
            interactive_path_learn(&g, from, to, &goal, PathStrategy::Random, Vec::new(), seed)
                .interactions;
        prior_total += interactive_path_learn(
            &g,
            from,
            to,
            &goal,
            PathStrategy::WorkloadPrior,
            workload.clone(),
            seed,
        )
        .interactions;
    }
    assert!(
        prior_total <= random_total + 2,
        "workload prior asked {prior_total} vs random {random_total}"
    );
}
