//! End-to-end tests exercising the cross-model learning framework of `qbe-core`: the same
//! generic interactive protocol instantiated for all three data models, quality metrics against
//! hidden goals, and a full pipeline chaining two exchanges.

use qbe_core::relational::{customers_orders_database, JoinPredicate};
use qbe_core::twig::{parse_xpath, select};
use qbe_core::xml::xmark::{generate, XmarkConfig};
use qbe_core::{
    compare_hypotheses, run_interactive, BoundJoinQuery, BoundTwigQuery, GoalOracle, JoinLearner,
    Learner, Oracle, PairItem, PathItem, PathLearner, TwigLearner, XmlItem,
};

#[test]
fn generic_interactive_protocol_learns_a_twig_query() {
    let docs = vec![generate(&XmarkConfig::new(0.03, 1))];
    let goal_query = parse_xpath("//person/name").unwrap();
    let goal = BoundTwigQuery {
        documents: &docs,
        query: goal_query.clone(),
    };

    // Pool: a sample of nodes of the document (every 5th node keeps the pool small).
    let pool: Vec<XmlItem> = docs[0]
        .node_ids()
        .enumerate()
        .filter(|(i, _)| i % 5 == 0)
        .map(|(_, node)| XmlItem { doc: 0, node })
        .collect();

    let learner = TwigLearner { documents: &docs };
    let mut oracle = GoalOracle::new(goal.clone());
    let outcome = run_interactive(&learner, &pool, &mut oracle);
    let learned = outcome
        .hypothesis
        .expect("labels from a goal are always consistent");

    // The learned query agrees with the goal on the whole pool.
    let matrix = compare_hypotheses(&goal, &learned, pool.iter().copied());
    assert!(matrix.is_exact(), "confusion matrix not exact: {matrix:?}");
    // The driver asked for strictly fewer labels than the pool size (pruning happened).
    assert!(outcome.interactions < pool.len());
    assert_eq!(outcome.interactions, oracle.questions());
}

#[test]
fn generic_interactive_protocol_learns_a_join_query() {
    let db = customers_orders_database(8, 2, 6);
    let customers = db.relation("customers").unwrap();
    let orders = db.relation("orders").unwrap();
    let goal_predicate =
        JoinPredicate::from_names(customers.schema(), orders.schema(), &[("cid", "cid")]).unwrap();
    let goal = BoundJoinQuery {
        left: customers,
        right: orders,
        predicate: goal_predicate.clone(),
    };

    let pool: Vec<PairItem> = (0..customers.len())
        .flat_map(|l| (0..orders.len()).map(move |r| PairItem { left: l, right: r }))
        .collect();
    let learner = JoinLearner {
        left: customers,
        right: orders,
    };
    let mut oracle = GoalOracle::new(goal.clone());
    let outcome = run_interactive(&learner, &pool, &mut oracle);
    let learned = outcome.hypothesis.expect("consistent");
    let matrix = compare_hypotheses(&goal, &learned, pool.iter().copied());
    assert!(matrix.is_exact());
    assert!(outcome.interactions < pool.len(), "no pruning happened");
}

#[test]
fn generic_interactive_protocol_learns_a_path_query() {
    let learner = PathLearner;
    let goal = learner
        .learn(
            &[
                PathItem {
                    word: vec!["highway".into()],
                },
                PathItem {
                    word: vec!["highway".into(), "highway".into()],
                },
            ],
            &[PathItem {
                word: vec!["local".into()],
            }],
        )
        .expect("separable");

    let pool: Vec<PathItem> = vec![
        PathItem {
            word: vec!["highway".into()],
        },
        PathItem {
            word: vec!["highway".into(), "highway".into()],
        },
        PathItem {
            word: vec!["highway".into(), "highway".into(), "highway".into()],
        },
        PathItem {
            word: vec!["local".into()],
        },
        PathItem {
            word: vec!["local".into(), "highway".into()],
        },
        PathItem { word: vec![] },
    ];
    let mut oracle = GoalOracle::new(goal.clone());
    let outcome = run_interactive(&learner, &pool, &mut oracle);
    let learned = outcome.hypothesis.expect("consistent");
    for item in &pool {
        use qbe_core::Hypothesis;
        assert_eq!(goal.selects(item), learned.selects(item));
    }
}

#[test]
fn learned_shredding_feeds_a_learned_join() {
    // Full pipeline: XML → relational with a learned twig query, then the produced relation is
    // joined (with a learned predicate) against a lookup table — i.e. two learning steps chained
    // across data models, the thesis's end goal.
    use qbe_core::exchange::shred_xml_to_relational;
    use qbe_core::relational::{
        interactive_learn, Relation, RelationSchema, Strategy, Tuple, Value,
    };
    use qbe_core::twig::learn_from_positives;

    let doc = generate(&XmarkConfig::new(0.05, 8));
    let names = doc.nodes_with_label("name");
    let goal_query = parse_xpath("//person/name").unwrap();
    let person_names: Vec<_> = names
        .iter()
        .copied()
        .filter(|&n| select(&goal_query, &doc).contains(&n))
        .collect();
    assert!(person_names.len() >= 2);

    // Learn the extraction query from a handful of clicks and shred. (Two clicks usually
    // suffice; a few more guard against the most-specific learner keeping optional filters
    // both sampled persons happened to share.)
    let examples: Vec<_> = person_names.iter().take(5).map(|&n| (&doc, n)).collect();
    let learned_query = learn_from_positives(&examples).unwrap();
    let (shredded, _) = shred_xml_to_relational(&doc, &learned_query, "person_names");
    assert!(shredded.len() >= examples.len());
    assert!(shredded.len() <= person_names.len());

    // Build a lookup relation keyed by the same node index and learn the join interactively.
    let lookup_schema = RelationSchema::new("lookup", &["node", "category"]);
    let lookup = Relation::with_tuples(
        lookup_schema,
        shredded
            .tuples()
            .iter()
            .map(|t| Tuple::new(vec![t.get(0).clone(), Value::text("person")]))
            .collect(),
    );
    let goal_join =
        JoinPredicate::from_names(shredded.schema(), lookup.schema(), &[("node", "node")]).unwrap();
    let outcome = interactive_learn(
        &shredded,
        &lookup,
        &goal_join,
        Strategy::MostSpecificFirst,
        3,
    );
    assert!(outcome.consistent);
    // The learned join links every shredded tuple to its lookup row.
    let joined = qbe_core::relational::equi_join(&shredded, &lookup, &outcome.predicate);
    assert_eq!(joined.len(), shredded.len());
}
