//! Smoke test: every example in `examples/` must run to completion.
//!
//! Each example is a self-contained walkthrough of one learning scenario; this
//! harness runs them all through `cargo run --example` so a broken example
//! fails `cargo test` instead of silently rotting.

use std::process::Command;

/// The examples registered in `crates/core/Cargo.toml`, kept in sync by the
/// `all_examples_are_listed` test below.
const EXAMPLES: &[&str] = &[
    "quickstart",
    "xpath_by_example",
    "join_discovery",
    "trip_planner",
    "cross_model_exchange",
    "query_reverse_engineering",
    "workload",
];

#[test]
fn every_example_runs_to_completion() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    for example in EXAMPLES {
        let output = Command::new(&cargo)
            .args(["run", "--quiet", "-p", "qbe-core", "--example", example])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example `{example}`: {e}"));
        assert!(
            output.status.success(),
            "example `{example}` exited with {}:\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}

#[test]
fn all_examples_are_listed() {
    let manifest_dir = std::env::var("CARGO_MANIFEST_DIR").expect("cargo sets CARGO_MANIFEST_DIR");
    let examples_dir = std::path::Path::new(&manifest_dir).join("../../examples");
    let mut on_disk: Vec<String> = std::fs::read_dir(examples_dir)
        .expect("examples/ directory exists")
        .filter_map(|entry| {
            let name = entry.expect("readable dir entry").file_name();
            let name = name.to_string_lossy();
            name.strip_suffix(".rs").map(str::to_string)
        })
        .collect();
    on_disk.sort();
    let mut listed: Vec<String> = EXAMPLES.iter().map(|s| s.to_string()).collect();
    listed.sort();
    assert_eq!(
        on_disk, listed,
        "examples/ on disk and the EXAMPLES list (+ crates/core/Cargo.toml) are out of sync"
    );
}
