//! Quickstart: learn queries by example in all three data models.
//!
//! Run with `cargo run --example quickstart`.
//!
//! The program walks through the three learners of the workspace on tiny instances:
//! a twig (XPath) query learned from two annotated XML nodes, a join predicate learned
//! interactively from tuple labels, and a path query learned from approved/rejected paths.

use qbe_core::graph::{learn_path_query_with_negatives, PathRegex};
use qbe_core::relational::{
    interactive_learn, JoinPredicate, Relation, RelationSchema, Strategy, Tuple,
};
use qbe_core::twig::{learn_from_positives, select};
use qbe_core::xml::parse_xml;

fn main() {
    semi_structured();
    relational();
    graph();
}

fn semi_structured() {
    println!("== 1. Semi-structured: learn an XPath-like twig query from two clicks ==");
    let doc = parse_xml(
        "<site><people>\
            <person><name>Ada Lovelace</name><emailaddress>ada@example.org</emailaddress></person>\
            <person><name>Grace Hopper</name><emailaddress>grace@example.org</emailaddress></person>\
            <person><name>Anonymous</name></person>\
         </people></site>",
    )
    .expect("well-formed document");

    // The (non-expert) user clicks the two email addresses she wants to extract.
    let emails = doc.nodes_with_label("emailaddress");
    let examples: Vec<_> = emails.iter().map(|&n| (&doc, n)).collect();
    let query = learn_from_positives(&examples).expect("at least one example");

    println!("  learned query: {}", query.to_xpath());
    println!("  selected nodes: {}", select(&query, &doc).len());
    println!();
}

fn relational() {
    println!("== 2. Relational: learn a join predicate interactively ==");
    let customers = Relation::with_tuples(
        RelationSchema::new("customers", &["cid", "city"]),
        vec![
            Tuple::new(vec![1.into(), "Lille".into()]),
            Tuple::new(vec![2.into(), "Paris".into()]),
            Tuple::new(vec![3.into(), "Lyon".into()]),
        ],
    );
    let orders = Relation::with_tuples(
        RelationSchema::new("orders", &["oid", "cid", "city"]),
        vec![
            Tuple::new(vec![10.into(), 1.into(), "Lille".into()]),
            Tuple::new(vec![11.into(), 2.into(), "Lille".into()]),
            Tuple::new(vec![12.into(), 9.into(), "Paris".into()]),
        ],
    );
    // The hidden intention of the user: join on the customer id.
    let goal =
        JoinPredicate::from_names(customers.schema(), orders.schema(), &[("cid", "cid")]).unwrap();
    let outcome = interactive_learn(&customers, &orders, &goal, Strategy::MostSpecificFirst, 7);
    println!(
        "  learned predicate: {}",
        outcome
            .predicate
            .describe(customers.schema(), orders.schema())
    );
    println!(
        "  user interactions: {} (labels inferred automatically: {})",
        outcome.interactions, outcome.inferred
    );
    println!();
}

fn graph() {
    println!("== 3. Graph: learn a path query from approved and rejected itineraries ==");
    let accepted = vec![
        vec!["highway".to_string(), "highway".to_string()],
        vec!["highway".to_string()],
    ];
    let rejected = vec![vec!["highway".to_string(), "local".to_string()]];
    let query = learn_path_query_with_negatives(&accepted, &rejected)
        .expect("non-empty positives")
        .expect("the examples are separable");
    println!("  learned path query: {query}");
    let as_regex: PathRegex = query.to_regex();
    println!("  as a regular path query: {as_regex}");
    println!(
        "  accepts highway/highway/highway: {}",
        as_regex.accepts(&["highway", "highway", "highway"])
    );
    println!(
        "  accepts highway/local: {}",
        as_regex.accepts(&["highway", "local"])
    );
}
