//! Serving many users at once: a pool of interactive learning sessions over one shared index.
//!
//! Each simulated user wants a different XPath query learned from their labels over the same
//! auction document. The document and its `NodeIndex` are built once and shared (`Arc`) by all
//! sessions; `SessionPool` runs the sessions on worker threads, cheapest expected session
//! first, and reports aggregate throughput and question percentiles.
//!
//! Run with `cargo run -p qbe-core --example workload`.

use qbe_core::twig::{parse_xpath, NodeStrategy};
use qbe_core::workload::SessionPool;
use qbe_core::xml::xmark::{generate, XmarkConfig};
use qbe_core::xml::NodeIndex;
use qbe_core::TwigInteractive;
use std::sync::Arc;

fn main() {
    // One corpus, one index — every session shares both.
    let docs = Arc::new(vec![generate(&XmarkConfig::new(0.01, 42))]);
    let indexes = Arc::new(docs.iter().map(NodeIndex::build).collect::<Vec<_>>());
    println!(
        "corpus: 1 XMark document, {} nodes, indexed once\n",
        docs[0].size()
    );

    // Four users with four different goals in mind. Each session is an `InteractiveLearner`
    // driven by the pool's generic loop against its embedded goal oracle.
    let goals = [
        "//person/name",
        "//open_auction",
        "//item/name",
        "//closed_auction",
    ];
    let mut pool = SessionPool::new();
    for (user, goal) in goals.into_iter().enumerate() {
        let docs = docs.clone();
        let indexes = indexes.clone();
        let goal_query = parse_xpath(goal).expect("goal parses");
        // The expected-questions estimate orders the queue; rough is fine.
        pool.push_learner(format!("user{user}: {goal}"), 10 + 10 * user, move || {
            Box::new(
                TwigInteractive::with_shared(
                    docs,
                    indexes,
                    NodeStrategy::LabelAffinity,
                    user as u64,
                )
                .with_goal(goal_query),
            )
        });
    }

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    let metrics = pool.run(workers);

    for report in &metrics.reports {
        println!(
            "{:<28} {:>3} questions, {:>3} labels inferred, {}",
            report.label,
            report.questions,
            report.inferred,
            if report.success { "learned" } else { "FAILED" }
        );
    }
    println!("\n{metrics}");
    assert_eq!(
        metrics.successes(),
        goals.len(),
        "every user must be served"
    );
}
