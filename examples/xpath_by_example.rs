//! XPath-by-example on XMark data, with and without schema knowledge.
//!
//! Run with `cargo run --example xpath_by_example`.
//!
//! Reproduces the workflow of the paper's §2 on a generated XMark-like document: a goal XPath
//! query is fixed (hidden from the learner), a handful of its answers are annotated as positive
//! examples, the twig learner infers a query, and the schema-aware variant then removes the
//! overspecialised (schema-implied) filters. The program reports the number of examples needed
//! to reach a query equivalent to the goal on the document, and the size reduction obtained by
//! involving the schema — the two effects the paper highlights.

use qbe_core::schema::dms_from_dtd;
use qbe_core::twig::{
    equivalent_on, learn_from_positives, parse_xpath, prune_implied_filters, select,
};
use qbe_core::xml::xmark::{generate, xmark_dtd, XmarkConfig};

fn main() {
    let doc = generate(&XmarkConfig::new(0.05, 2024));
    let schema = dms_from_dtd(&xmark_dtd()).expect("the XMark DTD is DMS-expressible");
    println!(
        "document: {} nodes; schema: {} rules",
        doc.size(),
        schema.len()
    );
    println!();

    let goals = [
        "/site/people/person/emailaddress",
        "/site/open_auctions/open_auction/current",
        "//closed_auction/annotation/description/text",
        "//item[incategory]/name",
    ];

    for goal_xpath in goals {
        let goal = parse_xpath(goal_xpath).expect("goal queries are twig-expressible");
        let answers: Vec<_> = select(&goal, &doc).into_iter().collect();
        println!("goal query: {goal_xpath} ({} answers)", answers.len());
        if answers.is_empty() {
            println!("  (no answers on this document — skipped)\n");
            continue;
        }

        // Feed positive examples one by one until the learned query is equivalent to the goal.
        let mut used = 0;
        let mut learned = None;
        for k in 1..=answers.len().min(6) {
            let examples: Vec<_> = answers.iter().take(k).map(|&n| (&doc, n)).collect();
            let candidate = learn_from_positives(&examples).expect("non-empty examples");
            used = k;
            let done = equivalent_on(&candidate, &goal, std::slice::from_ref(&doc));
            learned = Some(candidate);
            if done {
                break;
            }
        }
        let learned = learned.expect("at least one learning round ran");
        println!("  examples needed: {used}");
        println!(
            "  learned (no schema):   {}  [size {}]",
            learned.to_xpath(),
            learned.size()
        );

        let report = prune_implied_filters(&schema, &learned);
        println!(
            "  learned (with schema): {}  [size {}]  (-{:.0}%)",
            report.query.to_xpath(),
            report.size_after,
            report.reduction_percent()
        );
        println!();
    }
}
