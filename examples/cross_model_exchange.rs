//! Cross-model data exchange: the four scenarios of Figure 1, end to end.
//!
//! Run with `cargo run --example cross_model_exchange`.
//!
//! Each scenario extracts data from a source database with a query that is *learned from
//! examples* rather than written by an expert, then materialises the extracted data in the
//! target model:
//!
//! 1. relational → XML   (publishing, learned join predicate)
//! 2. XML → relational   (shredding, learned twig query)
//! 3. XML → graph/RDF    (shredding, learned twig query)
//! 4. graph → XML        (publishing, learned path constraint)

use qbe_core::exchange::{
    learned_publish_relational_to_xml, learned_shred_xml_to_relational, publish_graph_to_xml,
    shred_xml_to_graph,
};
use qbe_core::graph::{
    generate_geo_graph, interactive_path_learn, GeoConfig, PathConstraint, PathStrategy,
};
use qbe_core::relational::{customers_orders_database, JoinPredicate};
use qbe_core::twig::learn_from_positives;
use qbe_core::xml::xmark::{generate, XmarkConfig};

fn main() {
    scenario_1_relational_to_xml();
    scenario_2_xml_to_relational();
    scenario_3_xml_to_graph();
    scenario_4_graph_to_xml();
}

/// Scenario 1: a relational application publishes the customers⋈orders join as XML. The join
/// predicate is learned interactively from a simulated non-expert user.
fn scenario_1_relational_to_xml() {
    println!("== Scenario 1: relational → XML (publishing) ==");
    let db = customers_orders_database(20, 3, 3);
    let customers = db.relation("customers").expect("customers relation");
    let orders = db.relation("orders").expect("orders relation");
    let goal = JoinPredicate::from_names(customers.schema(), orders.schema(), &[("cid", "cid")])
        .expect("attributes exist");
    let (doc, report) = learned_publish_relational_to_xml(customers, orders, &goal, "sales", 5);
    println!("  {report}");
    println!("  published document has {} nodes\n", doc.size());
}

/// Scenario 2: an XML application (an XMark-like auction site) shreds the person names into a
/// relation. The twig query is learned from two nodes the user annotates.
fn scenario_2_xml_to_relational() {
    println!("== Scenario 2: XML → relational (shredding) ==");
    let doc = generate(&XmarkConfig::new(0.05, 42));
    let names = doc.nodes_with_label("name");
    let annotated = &names[..2.min(names.len())];
    let (relation, report) =
        learned_shred_xml_to_relational(&doc, annotated, "person_names").expect("examples given");
    println!("  {report}");
    println!(
        "  relation `{}` with {} tuples over ({})\n",
        relation.schema().name(),
        relation.len(),
        relation.schema().attributes().join(", ")
    );
}

/// Scenario 3: the same XML document is shredded into an RDF-style graph; the extraction query
/// is again learned from annotated nodes (here: auction items).
fn scenario_3_xml_to_graph() {
    println!("== Scenario 3: XML → graph (shredding) ==");
    let doc = generate(&XmarkConfig::new(0.05, 42));
    let items = doc.nodes_with_label("item");
    let examples: Vec<_> = items.iter().take(2).map(|&n| (&doc, n)).collect();
    let query = learn_from_positives(&examples).expect("examples given");
    let (graph, report) = shred_xml_to_graph(&doc, &query);
    println!("  learned query: {}", query.to_xpath());
    println!("  {report}");
    println!(
        "  graph: {} resources, {} triples\n",
        graph.node_count(),
        graph.triples().len()
    );
}

/// Scenario 4: itineraries extracted from a geographical graph database with a learned path
/// constraint are published as XML.
fn scenario_4_graph_to_xml() {
    println!("== Scenario 4: graph → XML (publishing) ==");
    let graph = generate_geo_graph(&GeoConfig {
        cities: 24,
        ..Default::default()
    });
    let from = graph.find_node_by_property("name", "city0").expect("city0");
    let to = graph.find_node_by_property("name", "city7").expect("city7");
    let goal = PathConstraint {
        road_type: Some("highway".to_string()),
        max_distance: None,
        via: None,
    };
    let outcome = interactive_path_learn(
        &graph,
        from,
        to,
        &goal,
        PathStrategy::Halving,
        Vec::new(),
        13,
    );
    let (doc, report) = publish_graph_to_xml(&graph, &outcome.accepted_paths, &outcome.learned);
    println!("  questions asked: {}", outcome.interactions);
    println!("  {report}");
    println!("  published document has {} nodes", doc.size());
}
