//! Trip planner: the geographical-database use case of the paper's Section 3.
//!
//! Run with `cargo run --example trip_planner`.
//!
//! A geographical database is modelled as a property graph whose vertices are cities and whose
//! edges are roads carrying a `type` (highway / national / local) and a `distance`. A user picks
//! two cities and wants *some* of the paths between them — but not all of them, because she has
//! an unstated constraint in mind (here: highways only). The interactive learner proposes paths,
//! the user labels them, uninformative candidates are pruned, and the surviving constraint is
//! used to extract the itineraries, which are finally published as XML (Figure 1, scenario 4).

use qbe_core::exchange::publish_graph_to_xml;
use qbe_core::graph::{
    generate_geo_graph, interactive_path_learn, simple_paths, GeoConfig, PathConstraint,
    PathStrategy,
};
use qbe_core::xml::to_pretty_xml_string;

fn main() {
    // A small country: 30 cities, highway backbone over roughly a third of them.
    let graph = generate_geo_graph(&GeoConfig {
        cities: 30,
        connectivity: 3,
        highway_fraction: 0.35,
        seed: 11,
    });
    println!(
        "geographical database: {} cities, {} directed road segments",
        graph.node_count(),
        graph.edge_count()
    );

    // The user selects the two extremity cities of the trip.
    let from = graph
        .find_node_by_property("name", "city0")
        .expect("city0 exists");
    let to = graph
        .find_node_by_property("name", "city9")
        .expect("city9 exists");
    println!(
        "planning a trip from {} to {}",
        graph.display_name(from),
        graph.display_name(to)
    );
    let all_candidates = simple_paths(&graph, from, to, 8);
    println!("candidate itineraries (≤ 8 hops): {}", all_candidates.len());

    // Her hidden intention: highway-only itineraries. The learner does not know this; it only
    // sees the labels she gives to the paths it proposes.
    let goal = PathConstraint {
        road_type: Some("highway".to_string()),
        max_distance: None,
        via: None,
    };

    // Previous users of the system mostly asked for highway itineraries too; that workload is
    // used as a prior so the learner asks about the most plausible constraint first.
    let workload = vec![
        PathConstraint {
            road_type: Some("highway".to_string()),
            max_distance: None,
            via: None,
        },
        PathConstraint {
            road_type: Some("highway".to_string()),
            max_distance: Some(900.0),
            via: None,
        },
    ];

    for strategy in [
        PathStrategy::Random,
        PathStrategy::ShortestFirst,
        PathStrategy::Halving,
        PathStrategy::WorkloadPrior,
    ] {
        let outcome =
            interactive_path_learn(&graph, from, to, &goal, strategy, workload.clone(), 7);
        println!(
            "  strategy {strategy:?}: {} questions asked, {} labels inferred, learned \"{}\", {} itineraries kept",
            outcome.interactions,
            outcome.inferred,
            outcome.learned.describe(&graph),
            outcome.accepted_paths.len()
        );
    }

    // Use the workload-prior session's result to actually extract and publish the data.
    let outcome = interactive_path_learn(
        &graph,
        from,
        to,
        &goal,
        PathStrategy::WorkloadPrior,
        workload,
        7,
    );
    let (doc, report) = publish_graph_to_xml(&graph, &outcome.accepted_paths, &outcome.learned);
    println!("\n{report}");
    let xml = to_pretty_xml_string(&doc);
    let preview: String = xml.lines().take(12).collect::<Vec<_>>().join("\n");
    println!("published XML (first lines):\n{preview}");
}
