//! Interactive join discovery on a large synthetic instance, comparing labelling strategies.
//!
//! Run with `cargo run --example join_discovery`.
//!
//! A simulated non-expert user has a join in mind over a generated two-relation instance. The
//! interactive learner proposes tuple pairs to label; after every answer it prunes the pairs
//! whose label has become uninformative. The program compares the number of user interactions
//! (and the equivalent crowdsourcing cost) required by the different proposal strategies —
//! the quantity the paper's §3 sets out to minimise.

use qbe_core::relational::{
    crowdsourced_learn, generate_join_instance, interactive_learn, HitPricing, JoinInstanceConfig,
    Strategy,
};

fn main() {
    let config = JoinInstanceConfig {
        left_rows: 60,
        right_rows: 60,
        extra_attributes: 3,
        domain_size: 6,
        seed: 7,
    };
    let (left, right, goal) = generate_join_instance(&config);
    let total_pairs = left.len() * right.len();
    println!(
        "instance: {} × {} tuples = {} candidate pairs; hidden goal: {}",
        left.len(),
        right.len(),
        total_pairs,
        goal.describe(left.schema(), right.schema())
    );
    println!();
    println!(
        "{:<22} {:>14} {:>14} {:>12}",
        "strategy", "interactions", "inferred", "HIT cost $"
    );

    let pricing = HitPricing::default();
    for strategy in [
        Strategy::Random,
        Strategy::MostSpecificFirst,
        Strategy::HalveLattice,
    ] {
        // Average over a few seeds to smooth the randomised strategy.
        let mut interactions = 0;
        let mut inferred = 0;
        let runs = 3;
        for seed in 0..runs {
            let outcome = interactive_learn(&left, &right, &goal, strategy, seed);
            assert!(
                outcome.consistent,
                "noise-free oracle labels must stay consistent"
            );
            interactions += outcome.interactions;
            inferred += outcome.inferred;
        }
        let crowd = crowdsourced_learn(&left, &right, &goal, strategy, pricing, 0);
        println!(
            "{:<22} {:>14.1} {:>14.1} {:>12.2}",
            format!("{strategy:?}"),
            interactions as f64 / runs as f64,
            inferred as f64 / runs as f64,
            crowd.total_cost
        );
    }
    println!();
    println!(
        "every strategy labels only a tiny fraction of the {} pairs explicitly; the rest are inferred",
        total_pairs
    );
}
