//! Reverse-engineering relational queries from instances and outputs — the baselines the paper
//! compares its interactive framework against.
//!
//! Run with `cargo run --example query_reverse_engineering`.
//!
//! A small human-resources database is built; a hidden goal query produces an output/view; then
//! the four related-work baselines of the paper's §3 are applied:
//!
//! 1. **query by output** (Tran et al.) reconstructs an instance-equivalent query from the
//!    output alone;
//! 2. **view definition synthesis** (Das Sarma et al.) finds the most succinct exact view
//!    definition;
//! 3. **conditional functional dependency discovery** (Fan et al.) mines the CFDs the instance
//!    satisfies;
//! 4. **BP-expressibility** (Bancilhon, Paredaens) decides whether *any* relational algebra
//!    expression could map the instance to a given output.
//!
//! The closing section contrasts these whole-output approaches with the paper's interactive join
//! learner, which reaches a goal query from a handful of labelled tuples.

use qbe_core::relational::bp::single_relation_instance;
use qbe_core::relational::query_by_output::distinct_constants;
use qbe_core::relational::{
    bp_expressible, discover_constant_cfds, discover_fds, interactive_learn, query_by_output,
    synthesize_view, Condition, Instance, JoinPredicate, Relation, RelationSchema, SpjQuery,
    Strategy, Tuple, Value,
};

fn employees() -> Relation {
    let rows = [
        (1, "Ana", "engineering", "Lille", true, 64),
        (2, "Bob", "engineering", "Paris", false, 55),
        (3, "Chloe", "engineering", "Lille", true, 71),
        (4, "Dan", "sales", "Paris", false, 48),
        (5, "Eve", "sales", "Lille", true, 59),
        (6, "Femi", "marketing", "Paris", false, 51),
        (7, "Gus", "marketing", "Lille", false, 45),
        (8, "Hana", "engineering", "Paris", true, 68),
    ];
    Relation::with_tuples(
        RelationSchema::new(
            "employees",
            &["eid", "name", "dept", "city", "senior", "salary"],
        ),
        rows.iter()
            .map(|(eid, name, dept, city, senior, salary)| {
                Tuple::new(vec![
                    Value::Int(*eid),
                    Value::text(*name),
                    Value::text(*dept),
                    Value::text(*city),
                    Value::Bool(*senior),
                    Value::Int(*salary),
                ])
            })
            .collect(),
    )
}

fn departments() -> Relation {
    Relation::with_tuples(
        RelationSchema::new("departments", &["dname", "floor"]),
        vec![
            Tuple::new(vec![Value::text("engineering"), Value::Int(3)]),
            Tuple::new(vec![Value::text("sales"), Value::Int(1)]),
            Tuple::new(vec![Value::text("marketing"), Value::Int(2)]),
        ],
    )
}

fn main() {
    let mut db = Instance::new();
    db.add(employees());
    db.add(departments());
    println!(
        "database: {} relations, {} tuples\n",
        db.len(),
        db.total_tuples()
    );

    // ---------------------------------------------------------------- query by output
    let goal = SpjQuery::scan("employees")
        .select(vec![
            Condition::AttrConst("dept".into(), Value::text("engineering")),
            Condition::AttrConst("senior".into(), Value::Bool(true)),
        ])
        .project(&["name"]);
    let output = goal.evaluate(&db).expect("the goal query evaluates");
    println!("hidden goal query: {goal}");
    println!(
        "its output ({} tuples) is all the user provides.\n",
        output.len()
    );

    match query_by_output(&db, &output) {
        Ok(learned) => {
            println!("query by output reconstructed: {learned}");
            println!(
                "  {} branch(es), {} condition(s), {} distinct constant(s)",
                learned.branches.len(),
                learned.condition_count(),
                distinct_constants(&learned)
            );
            let reproduced = learned.evaluate(&db).expect("the learned query evaluates");
            println!(
                "  instance-equivalent: {}\n",
                reproduced.len() == output.len()
            );
        }
        Err(e) => println!("query by output failed: {e}\n"),
    }

    // ---------------------------------------------------------------- view synthesis
    let view = SpjQuery::scan("employees")
        .select(vec![Condition::AttrConst(
            "city".into(),
            Value::text("Lille"),
        )])
        .project(&["eid"])
        .evaluate(&db)
        .expect("the view query evaluates");
    match synthesize_view(&db, &view) {
        Ok(outcome) => {
            println!(
                "view instance with {} rows is exactly defined by:",
                view.len()
            );
            println!("  {}", outcome.definition);
            println!(
                "  succinctness: {} condition(s); exact: {}\n",
                outcome.definition.size(),
                outcome.accuracy.is_exact()
            );
        }
        Err(e) => println!("view synthesis failed: {e}\n"),
    }

    // ---------------------------------------------------------------- CFD discovery
    let emp = employees();
    let fds = discover_fds(&emp, 2);
    let cfds = discover_constant_cfds(&emp, 1, 2);
    println!("functional dependencies (|lhs| ≤ 2): {}", fds.len());
    for fd in fds.iter().take(5) {
        println!("  {fd}");
    }
    println!(
        "constant conditional functional dependencies (support ≥ 2): {}",
        cfds.len()
    );
    for cfd in cfds.iter().take(5) {
        println!("  {}", cfd.describe(&emp));
    }
    println!();

    // ---------------------------------------------------------------- BP-expressibility
    let single = single_relation_instance(employees());
    let expressible_output = SpjQuery::scan("employees")
        .project(&["dept"])
        .evaluate(&single)
        .expect("projection evaluates");
    let foreign_output = Relation::with_tuples(
        RelationSchema::new("out", &["x"]),
        vec![Tuple::new(vec![Value::text("legal")])],
    );
    for (label, output) in [
        ("π[dept]", &expressible_output),
        ("{legal}", &foreign_output),
    ] {
        let verdict = bp_expressible(&single, output);
        println!(
            "is some algebra expression mapping employees to {label}? {} ({} automorphisms examined)",
            verdict.expressible, verdict.automorphism_count
        );
        if let Some(obstruction) = verdict.obstruction {
            println!("  obstruction: {obstruction}");
        }
    }
    println!();

    // ---------------------------------------------------------------- the paper's contrast
    let employees_rel = employees();
    let departments_rel = departments();
    let join_goal = JoinPredicate::from_names(
        employees_rel.schema(),
        departments_rel.schema(),
        &[("dept", "dname")],
    )
    .expect("attributes exist");
    let outcome = interactive_learn(
        &employees_rel,
        &departments_rel,
        &join_goal,
        Strategy::MostSpecificFirst,
        11,
    );
    println!(
        "for contrast, the paper's interactive join learner recovered `{}` after only {} labelled \
         pair(s) out of {} candidate pairs — no materialised output required.",
        outcome
            .predicate
            .describe(employees_rel.schema(), departments_rel.schema()),
        outcome.interactions,
        employees_rel.len() * departments_rel.len()
    );
}
